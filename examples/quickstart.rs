//! Quickstart: generate a small Google-like trace, run SRPTMS+C on a
//! simulated cluster, and print the flowtime summary.
//!
//! ```text
//! cargo run --release -p mapreduce-experiments --example quickstart
//! ```

use mapreduce_metrics::FlowtimeSummary;
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{SimConfig, Simulation};
use mapreduce_workload::GoogleTraceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A scaled-down version of the paper's workload: 300 jobs with the
    //    Table II marginals (heavy-tailed sizes and durations, priorities
    //    0–11 as weights).
    let trace = GoogleTraceProfile::scaled(300).generate(42);
    println!(
        "generated {} jobs / {} tasks",
        trace.len(),
        trace.total_tasks()
    );
    println!("{}", trace.stats());

    // 2. A 600-machine cluster (same jobs-per-machine ratio as the paper's
    //    12 000-machine cluster) running the paper's headline configuration:
    //    SRPTMS+C with epsilon = 0.6 and r = 3.
    let config = SimConfig::new(600).with_seed(42);
    let mut scheduler = SrptMsC::new(0.6, 3.0);
    let outcome = Simulation::new(config, &trace).run(&mut scheduler)?;

    // 3. Report the metrics the paper reports.
    let summary = FlowtimeSummary::from_outcome(&outcome);
    println!("scheduler                  : {}", summary.scheduler);
    println!("jobs completed             : {}", summary.jobs);
    println!("average flowtime           : {:.1} s", summary.mean);
    println!(
        "weighted average flowtime  : {:.1} s",
        summary.weighted_mean
    );
    println!(
        "median / p95 flowtime      : {:.1} / {:.1} s",
        summary.median, summary.p95
    );
    println!(
        "copies launched per task   : {:.2}",
        summary.mean_copies_per_task
    );
    println!(
        "cluster utilisation        : {:.1} %",
        outcome.utilization() * 100.0
    );
    Ok(())
}
