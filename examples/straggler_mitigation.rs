//! Straggler mitigation showdown: inject machine-level stragglers and compare
//! how much each mitigation strategy recovers.
//!
//! The workload is the scaled Google-like trace; on top of the workload-level
//! heavy tail, every launched copy independently lands on a "struggling"
//! machine with 10 % probability and runs 5× slower. We compare:
//!
//! * Fair scheduling with no speculation (lower bound on mitigation),
//! * Mantri (detection-based speculative execution),
//! * LATE (detection-based, longest-approximate-time-to-end),
//! * SCA (upfront cloning),
//! * SRPTMS+C (the paper's algorithm).
//!
//! ```text
//! cargo run --release -p mapreduce-experiments --example straggler_mitigation
//! ```

use mapreduce_baselines::{FairScheduler, Late, Mantri, Sca};
use mapreduce_metrics::ComparisonReport;
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{Scheduler, SimConfig, Simulation, StragglerModel};
use mapreduce_workload::GoogleTraceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = GoogleTraceProfile::scaled(300).generate(7);
    let base =
        SimConfig::new(600)
            .with_seed(7)
            .with_straggler_model(StragglerModel::MachineSlowdown {
                probability: 0.10,
                factor: 5.0,
            });

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FairScheduler::new()),
        Box::new(Mantri::new()),
        Box::new(Late::new()),
        Box::new(Sca::new()),
        Box::new(SrptMsC::new(0.6, 3.0)),
    ];

    let mut outcomes = Vec::new();
    for scheduler in schedulers.iter_mut() {
        let outcome = Simulation::new(base.clone(), &trace).run(scheduler.as_mut())?;
        println!(
            "{:<28} mean flowtime {:>8.1} s   weighted {:>8.1} s   copies/task {:>5.2}",
            outcome.scheduler,
            outcome.mean_flowtime(),
            outcome.weighted_mean_flowtime(),
            outcome.mean_copies_per_task()
        );
        outcomes.push(outcome);
    }

    println!();
    let report = ComparisonReport::from_outcomes(outcomes.iter());
    println!("{report}");
    if let Some(improvement) = report.weighted_improvement("srptms+c(eps=0.6,r=3)", "mantri") {
        println!(
            "SRPTMS+C improves the weighted average flowtime over Mantri by {:.1} % under machine stragglers",
            improvement * 100.0
        );
    }
    Ok(())
}
