//! Epsilon tuning: reproduce the shape of Fig. 1 at laptop scale.
//!
//! Sweeps the sharing fraction ε of SRPTMS+C from 0.1 to 1.0 (r = 0) on a
//! scaled-down Google-like workload and prints the weighted/unweighted
//! average flowtime for each value, plus the best ε found — the paper finds
//! the sweet spot around ε = 0.6 (ε = 1 is Hadoop fair scheduling, ε → 0 is
//! pure SRPT).
//!
//! ```text
//! cargo run --release -p mapreduce-experiments --example epsilon_tuning
//! ```

use mapreduce_experiments::{fig1, Scenario};

fn main() {
    let scenario = Scenario::scaled(400, 2);
    println!(
        "sweeping epsilon on {} jobs / {} machines / {} seeds\n",
        scenario.profile.num_jobs,
        scenario.machines,
        scenario.seeds.len()
    );
    let rows = fig1::run(&scenario, &fig1::paper_epsilons());
    println!("{}", fig1::render(&rows));
    if let Some(best) = fig1::best_epsilon(&rows) {
        println!("best epsilon on this workload: {best:.1} (paper: 0.6)");
    }
}
