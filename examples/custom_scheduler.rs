//! Writing a custom scheduler against the simulator's `Scheduler` trait.
//!
//! The example implements a "shortest job first with a fixed clone budget"
//! policy from scratch — about thirty lines — and benchmarks it against the
//! paper's SRPTMS+C on the same workload. Use this as the template for
//! experimenting with your own policies.
//!
//! ```text
//! cargo run --release -p mapreduce-experiments --example custom_scheduler
//! ```

use mapreduce_sched::SrptMsC;
use mapreduce_sim::{Action, ClusterState, Scheduler, SimConfig, Simulation};
use mapreduce_workload::{GoogleTraceProfile, Phase};

/// Shortest-job-first: jobs with the fewest remaining unscheduled tasks go
/// first; every task of a small job (< `clone_threshold` tasks) is launched
/// with two copies.
struct SjfWithClones {
    clone_threshold: usize,
}

impl Scheduler for SjfWithClones {
    fn name(&self) -> &str {
        "sjf-with-clones"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut budget = state.available_machines();
        let mut actions = Vec::new();
        let mut jobs: Vec<_> = state
            .alive_jobs()
            .filter(|j| j.total_unscheduled() > 0)
            .collect();
        jobs.sort_by_key(|j| (j.total_unscheduled(), j.id()));
        for job in jobs {
            let copies = if job.spec().num_tasks() < self.clone_threshold {
                2
            } else {
                1
            };
            for phase in [Phase::Map, Phase::Reduce] {
                if phase == Phase::Reduce && !job.map_phase_complete() {
                    continue;
                }
                for task in job.unscheduled_tasks(phase) {
                    if budget == 0 {
                        return actions;
                    }
                    let n = copies.min(budget);
                    actions.push(Action::Launch {
                        task: task.id(),
                        copies: n,
                    });
                    budget -= n;
                }
            }
        }
        actions
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = GoogleTraceProfile::scaled(250).generate(11);
    let config = SimConfig::new(500).with_seed(11);

    let mut custom = SjfWithClones { clone_threshold: 8 };
    let custom_outcome = Simulation::new(config.clone(), &trace).run(&mut custom)?;

    let mut reference = SrptMsC::new(0.6, 3.0);
    let reference_outcome = Simulation::new(config, &trace).run(&mut reference)?;

    println!(
        "{:<20} mean flowtime {:>8.1} s   weighted {:>8.1} s   copies/task {:.2}",
        custom_outcome.scheduler,
        custom_outcome.mean_flowtime(),
        custom_outcome.weighted_mean_flowtime(),
        custom_outcome.mean_copies_per_task()
    );
    println!(
        "{:<20} mean flowtime {:>8.1} s   weighted {:>8.1} s   copies/task {:.2}",
        reference_outcome.scheduler,
        reference_outcome.mean_flowtime(),
        reference_outcome.weighted_mean_flowtime(),
        reference_outcome.mean_copies_per_task()
    );
    Ok(())
}
