//! Trace replay: export a synthetic trace to JSON, load it back (the same
//! path you would use for a real, converted Google/production trace), verify
//! its Table II statistics and replay it under two schedulers.
//!
//! ```text
//! cargo run --release -p mapreduce-experiments --example trace_replay
//! ```

use mapreduce_baselines::Mantri;
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{SimConfig, Simulation};
use mapreduce_workload::{GoogleTraceProfile, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate and export.
    let trace = GoogleTraceProfile::scaled(200).generate(2015);
    let path = std::env::temp_dir().join("mapreduce-task-cloning-trace.json");
    trace.save_to_file(&path)?;
    println!("exported trace to {}", path.display());

    // 2. Load it back, exactly as an external trace would be loaded.
    let loaded = Trace::load_from_file(&path)?;
    assert_eq!(loaded, trace);
    println!("re-loaded {} jobs, statistics:", loaded.len());
    println!("{}", loaded.stats());

    // 3. Replay under SRPTMS+C and Mantri on the same cluster.
    let config = SimConfig::new(400).with_seed(1);
    let srptms = Simulation::new(config.clone(), &loaded).run(&mut SrptMsC::new(0.6, 3.0))?;
    let mantri = Simulation::new(config, &loaded).run(&mut Mantri::new())?;
    println!(
        "SRPTMS+C : mean {:.1} s, weighted {:.1} s",
        srptms.mean_flowtime(),
        srptms.weighted_mean_flowtime()
    );
    println!(
        "Mantri   : mean {:.1} s, weighted {:.1} s",
        mantri.mean_flowtime(),
        mantri.weighted_mean_flowtime()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
