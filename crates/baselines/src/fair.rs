//! Hadoop-style weighted fair scheduling.
//!
//! The fair scheduler divides the cluster among all alive jobs in proportion
//! to their weights, launching one copy per task and never speculating. The
//! paper points out that SRPTMS+C with `ε = 1` reduces to exactly this
//! policy; having an independent implementation lets the experiments check
//! that equivalence and gives the detection-based baselines (Mantri, LATE) a
//! realistic job-level allocator to sit on.

use mapreduce_sim::{Action, ClusterState, JobState, Scheduler};
use mapreduce_workload::{Phase, TaskId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Launches up to `budget` copies of unscheduled tasks, spreading machines
/// across the given jobs in weighted max-min fashion.
///
/// Jobs repeatedly receive one machine each, picked as the job with the
/// smallest `occupied / weight` ratio among those that still have a
/// launchable task (map tasks first; reduce tasks only once the job's Map
/// phase completed). Work-conserving: if some jobs cannot use their share the
/// machines go to the others.
///
/// Returns the launch actions; used by [`FairScheduler`]. The detection-based
/// baselines ([`Mantri`](crate::Mantri), [`Late`](crate::Late)) use
/// [`fair_fill_unweighted`] instead, because those systems have no notion of
/// per-job weights.
pub fn fair_fill(jobs: &[&JobState], budget: usize) -> Vec<Action> {
    let mut actions = Vec::new();
    fill(jobs, budget, true, &mut actions);
    actions
}

/// Same as [`fair_fill`] but ignoring job weights (every alive job gets an
/// equal share), which is how Hadoop/Dryad schedule jobs underneath Mantri
/// and LATE.
pub fn fair_fill_unweighted(jobs: &[&JobState], budget: usize) -> Vec<Action> {
    let mut actions = Vec::new();
    fill(jobs, budget, false, &mut actions);
    actions
}

/// Allocation-free variant of [`fair_fill`]: appends into a caller-owned
/// buffer (the scheduler-owned action buffer the engine recycles).
pub fn fair_fill_into(jobs: &[&JobState], budget: usize, actions: &mut Vec<Action>) {
    fill(jobs, budget, true, actions);
}

/// Allocation-free variant of [`fair_fill_unweighted`].
pub fn fair_fill_unweighted_into(jobs: &[&JobState], budget: usize, actions: &mut Vec<Action>) {
    fill(jobs, budget, false, actions);
}

/// Fully pooled fill over the snapshot's alive set: no `Vec<&JobState>`
/// collection and no per-call slot/heap allocation — every buffer lives in
/// the caller-owned [`FairFillScratch`] and is reused across decisions.
/// Produces bit-identical actions to [`fair_fill_into`] /
/// [`fair_fill_unweighted_into`] over `state.alive_jobs()`.
pub fn fair_fill_alive_into(
    state: &ClusterState<'_>,
    budget: usize,
    weighted: bool,
    scratch: &mut FairFillScratch,
    actions: &mut Vec<Action>,
) {
    fill_with(
        scratch,
        state.num_alive_jobs(),
        |i| state.alive_job_at(i),
        budget,
        weighted,
        actions,
    );
}

/// An `occupied / weight` ratio ordered with `f64::total_cmp`, so the heap
/// order is total and deterministic. All four comparison traits go through
/// `total_cmp` — deriving `PartialEq` (IEEE `==`) would disagree with `Ord`
/// on `±0.0` and `NaN`, which std documents as a logic error.
#[derive(Debug, Clone, Copy)]
struct Ratio(f64);

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Ratio {}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Per-job launch cursors over the engine-maintained unscheduled free-lists,
/// stored without borrows so the table can be pooled across decisions. The
/// free-list *contents* are re-resolved through the job reference at grant
/// time; they cannot change mid-fill (the fill only collects actions, the
/// engine applies them afterwards).
#[derive(Debug, Clone, Copy, Default)]
struct JobFill {
    occupied: usize,
    /// `job.weight()` under weighted fills, `1.0` otherwise.
    weight: f64,
    map_len: usize,
    /// Zero while the job's Map phase is incomplete (reduces are gated).
    reduce_len: usize,
    map_cursor: usize,
    reduce_cursor: usize,
}

impl JobFill {
    fn has_work(&self) -> bool {
        self.map_cursor < self.map_len || self.reduce_cursor < self.reduce_len
    }
}

/// Reusable buffers for the fair fill. Holding one of these in the scheduler
/// makes every steady-state decision allocation-free: the slot table and the
/// heap storage retain their capacity across calls.
#[derive(Debug, Clone, Default)]
pub struct FairFillScratch {
    slots: Vec<JobFill>,
    heap: Vec<Reverse<(Ratio, usize)>>,
}

fn fill(jobs: &[&JobState], budget: usize, weighted: bool, actions: &mut Vec<Action>) {
    let mut scratch = FairFillScratch::default();
    fill_with(
        &mut scratch,
        jobs.len(),
        |i| jobs[i],
        budget,
        weighted,
        actions,
    );
}

fn fill_with<'a>(
    scratch: &mut FairFillScratch,
    num_jobs: usize,
    job_at: impl Fn(usize) -> &'a JobState,
    mut budget: usize,
    weighted: bool,
    actions: &mut Vec<Action>,
) {
    if budget == 0 || num_jobs == 0 {
        return;
    }
    let slots = &mut scratch.slots;
    slots.clear();
    slots.reserve(num_jobs);
    for i in 0..num_jobs {
        let job = job_at(i);
        slots.push(JobFill {
            occupied: job.active_copies(),
            weight: if weighted { job.weight() } else { 1.0 },
            map_len: job.unscheduled_indices(Phase::Map).len(),
            reduce_len: if job.map_phase_complete() {
                job.unscheduled_indices(Phase::Reduce).len()
            } else {
                0
            },
            map_cursor: 0,
            reduce_cursor: 0,
        });
    }

    // Min-heap over (occupied/weight, position): repeatedly grant one machine
    // to the least-served job that still has launchable work. Only the
    // granted job's ratio changes, so popping and re-pushing that single
    // entry keeps the heap exact — `O(log jobs)` per machine instead of the
    // previous full scan (`O(jobs)` per machine, `O(budget · jobs)` total).
    // Ties on the ratio break towards the smaller position, matching the
    // scan's first-strictly-smaller rule. The heap's backing storage is
    // pooled: seeding a Vec and heapifying with `BinaryHeap::from` is exactly
    // what collecting into a `BinaryHeap` does, so the heap layout — and
    // therefore the pop order — is unchanged.
    scratch.heap.clear();
    scratch.heap.extend(
        slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.has_work())
            .map(|(idx, slot)| Reverse((Ratio(slot.occupied as f64 / slot.weight), idx))),
    );
    let mut heap = BinaryHeap::from(std::mem::take(&mut scratch.heap));

    while budget > 0 {
        let Some(Reverse((_, idx))) = heap.pop() else {
            break;
        };
        let slot = &mut slots[idx];
        let job = job_at(idx);
        let (phase, index) = if slot.map_cursor < slot.map_len {
            let i = job.unscheduled_indices(Phase::Map)[slot.map_cursor];
            slot.map_cursor += 1;
            (Phase::Map, i)
        } else {
            let i = job.unscheduled_indices(Phase::Reduce)[slot.reduce_cursor];
            slot.reduce_cursor += 1;
            (Phase::Reduce, i)
        };
        actions.push(Action::Launch {
            task: TaskId::new(job.id(), phase, index),
            copies: 1,
        });
        slot.occupied += 1;
        budget -= 1;
        if slot.has_work() {
            heap.push(Reverse((Ratio(slot.occupied as f64 / slot.weight), idx)));
        }
    }

    // Hand the heap's storage back to the scratch for the next decision.
    scratch.heap = heap.into_vec();
}

/// Hadoop's weighted fair scheduler: no speculation, no cloning.
#[derive(Debug, Default, Clone)]
pub struct FairScheduler {
    scratch: FairFillScratch,
}

impl FairScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FairScheduler::default()
    }
}

impl Scheduler for FairScheduler {
    fn name(&self) -> &str {
        "fair"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        // O(1) early-out on the engine aggregate: no unscheduled task means
        // the fill cannot launch anything, so skip the alive-set collection.
        if state.available_machines() == 0 || state.total_unscheduled_tasks() == 0 {
            return;
        }
        fair_fill_alive_into(
            state,
            state.available_machines(),
            true,
            &mut self.scratch,
            actions,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{JobId, JobSpecBuilder, Trace, WorkloadBuilder};

    #[test]
    fn completes_every_job() {
        let trace = WorkloadBuilder::new()
            .num_jobs(30)
            .map_tasks_per_job(1, 5)
            .reduce_tasks_per_job(0, 2)
            .weights(&[1.0, 3.0])
            .build(1);
        let outcome = Simulation::new(SimConfig::new(8), &trace)
            .run(&mut FairScheduler::new())
            .unwrap();
        assert_eq!(outcome.records().len(), 30);
        // No speculation: exactly one copy per task.
        let tasks: usize = outcome.records().iter().map(|r| r.num_tasks()).sum();
        assert_eq!(outcome.total_copies, tasks);
    }

    #[test]
    fn weights_bias_the_allocation() {
        // Two identical jobs, one with 4× the weight, one machine-starved
        // cluster: the heavy job should finish first.
        let heavy = JobSpecBuilder::new(JobId::new(0))
            .weight(4.0)
            .map_tasks_from_workloads(&[50.0; 8])
            .build();
        let light = JobSpecBuilder::new(JobId::new(1))
            .weight(1.0)
            .map_tasks_from_workloads(&[50.0; 8])
            .build();
        let trace = Trace::new(vec![heavy, light]).unwrap();
        let outcome = Simulation::new(SimConfig::new(5), &trace)
            .run(&mut FairScheduler::new())
            .unwrap();
        let heavy_rec = outcome.record(JobId::new(0)).unwrap();
        let light_rec = outcome.record(JobId::new(1)).unwrap();
        assert!(heavy_rec.completion < light_rec.completion);
    }

    #[test]
    fn fair_fill_respects_budget() {
        let specs: Vec<_> = (0..3)
            .map(|i| {
                JobSpecBuilder::new(JobId::new(i))
                    .map_tasks_from_workloads(&[10.0, 10.0, 10.0])
                    .build()
            })
            .collect();
        let mut states: Vec<JobState> = specs.into_iter().map(JobState::new).collect();
        for s in &mut states {
            // mark arrived through the public API: JobState::new starts
            // un-arrived but fair_fill does not check arrival, only tasks.
            let _ = s;
        }
        let refs: Vec<&JobState> = states.iter().collect();
        let actions = fair_fill(&refs, 5);
        assert_eq!(actions.len(), 5);
        // The 5 launches are spread across the three jobs (2/2/1).
        let mut per_job = [0usize; 3];
        for a in &actions {
            if let Action::Launch { task, .. } = a {
                per_job[task.job.as_usize()] += 1;
            }
        }
        per_job.sort_unstable();
        assert_eq!(per_job, [1, 2, 2]);
    }

    #[test]
    fn fair_fill_empty_inputs() {
        assert!(fair_fill(&[], 10).is_empty());
        let spec = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[1.0])
            .build();
        let state = JobState::new(spec);
        assert!(fair_fill(&[&state], 0).is_empty());
    }
}
