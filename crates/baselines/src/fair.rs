//! Hadoop-style weighted fair scheduling.
//!
//! The fair scheduler divides the cluster among all alive jobs in proportion
//! to their weights, launching one copy per task and never speculating. The
//! paper points out that SRPTMS+C with `ε = 1` reduces to exactly this
//! policy; having an independent implementation lets the experiments check
//! that equivalence and gives the detection-based baselines (Mantri, LATE) a
//! realistic job-level allocator to sit on.

use mapreduce_sim::{Action, ClusterState, JobState, Scheduler};
use mapreduce_workload::Phase;

/// Launches up to `budget` copies of unscheduled tasks, spreading machines
/// across the given jobs in weighted max-min fashion.
///
/// Jobs repeatedly receive one machine each, picked as the job with the
/// smallest `occupied / weight` ratio among those that still have a
/// launchable task (map tasks first; reduce tasks only once the job's Map
/// phase completed). Work-conserving: if some jobs cannot use their share the
/// machines go to the others.
///
/// Returns the launch actions; used by [`FairScheduler`]. The detection-based
/// baselines ([`Mantri`](crate::Mantri), [`Late`](crate::Late)) use
/// [`fair_fill_unweighted`] instead, because those systems have no notion of
/// per-job weights.
pub fn fair_fill(jobs: &[&JobState], budget: usize) -> Vec<Action> {
    fill(jobs, budget, true)
}

/// Same as [`fair_fill`] but ignoring job weights (every alive job gets an
/// equal share), which is how Hadoop/Dryad schedule jobs underneath Mantri
/// and LATE.
pub fn fair_fill_unweighted(jobs: &[&JobState], budget: usize) -> Vec<Action> {
    fill(jobs, budget, false)
}

fn fill(jobs: &[&JobState], mut budget: usize, weighted: bool) -> Vec<Action> {
    let mut actions = Vec::new();
    if budget == 0 || jobs.is_empty() {
        return actions;
    }
    // Per-job launch cursors and dynamic occupancy.
    struct Slot<'a> {
        job: &'a JobState,
        occupied: usize,
        map_cursor: usize,
        reduce_cursor: usize,
    }
    let mut slots: Vec<Slot<'_>> = jobs
        .iter()
        .map(|j| Slot {
            job: j,
            occupied: j.active_copies(),
            map_cursor: 0,
            reduce_cursor: 0,
        })
        .collect();

    // Pre-collect unscheduled task ids per job so the cursors are stable.
    let unscheduled: Vec<(Vec<_>, Vec<_>)> = jobs
        .iter()
        .map(|j| {
            let maps: Vec<_> = j.unscheduled_tasks(Phase::Map).map(|t| t.id()).collect();
            let reduces: Vec<_> = if j.map_phase_complete() {
                j.unscheduled_tasks(Phase::Reduce).map(|t| t.id()).collect()
            } else {
                Vec::new()
            };
            (maps, reduces)
        })
        .collect();

    while budget > 0 {
        // Pick the job with the smallest occupied/weight that can still
        // launch something.
        let mut best: Option<(f64, usize)> = None;
        for (idx, slot) in slots.iter().enumerate() {
            let (maps, reduces) = &unscheduled[idx];
            let has_work = slot.map_cursor < maps.len() || slot.reduce_cursor < reduces.len();
            if !has_work {
                continue;
            }
            let weight = if weighted { slot.job.weight() } else { 1.0 };
            let ratio = slot.occupied as f64 / weight;
            match best {
                Some((best_ratio, _)) if ratio >= best_ratio => {}
                _ => best = Some((ratio, idx)),
            }
        }
        let Some((_, idx)) = best else { break };
        let (maps, reduces) = &unscheduled[idx];
        let slot = &mut slots[idx];
        let task = if slot.map_cursor < maps.len() {
            let t = maps[slot.map_cursor];
            slot.map_cursor += 1;
            t
        } else {
            let t = reduces[slot.reduce_cursor];
            slot.reduce_cursor += 1;
            t
        };
        actions.push(Action::Launch { task, copies: 1 });
        slot.occupied += 1;
        budget -= 1;
    }
    actions
}

/// Hadoop's weighted fair scheduler: no speculation, no cloning.
#[derive(Debug, Default, Clone)]
pub struct FairScheduler {
    _private: (),
}

impl FairScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FairScheduler::default()
    }
}

impl Scheduler for FairScheduler {
    fn name(&self) -> &str {
        "fair"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let jobs: Vec<&JobState> = state.alive_jobs().collect();
        fair_fill(&jobs, state.available_machines())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{JobId, JobSpecBuilder, Trace, WorkloadBuilder};

    #[test]
    fn completes_every_job() {
        let trace = WorkloadBuilder::new()
            .num_jobs(30)
            .map_tasks_per_job(1, 5)
            .reduce_tasks_per_job(0, 2)
            .weights(&[1.0, 3.0])
            .build(1);
        let outcome = Simulation::new(SimConfig::new(8), &trace)
            .run(&mut FairScheduler::new())
            .unwrap();
        assert_eq!(outcome.records().len(), 30);
        // No speculation: exactly one copy per task.
        let tasks: usize = outcome.records().iter().map(|r| r.num_tasks()).sum();
        assert_eq!(outcome.total_copies, tasks);
    }

    #[test]
    fn weights_bias_the_allocation() {
        // Two identical jobs, one with 4× the weight, one machine-starved
        // cluster: the heavy job should finish first.
        let heavy = JobSpecBuilder::new(JobId::new(0))
            .weight(4.0)
            .map_tasks_from_workloads(&[50.0; 8])
            .build();
        let light = JobSpecBuilder::new(JobId::new(1))
            .weight(1.0)
            .map_tasks_from_workloads(&[50.0; 8])
            .build();
        let trace = Trace::new(vec![heavy, light]).unwrap();
        let outcome = Simulation::new(SimConfig::new(5), &trace)
            .run(&mut FairScheduler::new())
            .unwrap();
        let heavy_rec = outcome.record(JobId::new(0)).unwrap();
        let light_rec = outcome.record(JobId::new(1)).unwrap();
        assert!(heavy_rec.completion < light_rec.completion);
    }

    #[test]
    fn fair_fill_respects_budget() {
        let specs: Vec<_> = (0..3)
            .map(|i| {
                JobSpecBuilder::new(JobId::new(i))
                    .map_tasks_from_workloads(&[10.0, 10.0, 10.0])
                    .build()
            })
            .collect();
        let mut states: Vec<JobState> = specs.into_iter().map(JobState::new).collect();
        for s in &mut states {
            // mark arrived through the public API: JobState::new starts
            // un-arrived but fair_fill does not check arrival, only tasks.
            let _ = s;
        }
        let refs: Vec<&JobState> = states.iter().collect();
        let actions = fair_fill(&refs, 5);
        assert_eq!(actions.len(), 5);
        // The 5 launches are spread across the three jobs (2/2/1).
        let mut per_job = [0usize; 3];
        for a in &actions {
            if let Action::Launch { task, .. } = a {
                per_job[task.job.as_usize()] += 1;
            }
        }
        per_job.sort_unstable();
        assert_eq!(per_job, [1, 2, 2]);
    }

    #[test]
    fn fair_fill_empty_inputs() {
        assert!(fair_fill(&[], 10).is_empty());
        let spec = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[1.0])
            .build();
        let state = JobState::new(spec);
        assert!(fair_fill(&[&state], 0).is_empty());
    }
}
