//! LATE — Longest Approximate Time to End ([28] in the paper).
//!
//! LATE speculates on the running task whose *estimated time to completion*
//! is the longest, but only if its progress rate is below a slow-task
//! threshold, and only while the number of outstanding speculative copies
//! stays below a cap proportional to the cluster size. It is not part of the
//! paper's evaluation line-up but is the other canonical detection-based
//! scheme, so it is included as an extra reference point for the comparison
//! figures and ablations.

use crate::fair::{fair_fill_alive_into, FairFillScratch};
use mapreduce_sim::{Action, ClusterState, IndexDemands, Scheduler, Slot};
use mapreduce_workload::Phase;

/// Configuration of the [`Late`] baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LateConfig {
    /// Only tasks whose progress rate is in the slowest `slow_task_quantile`
    /// of running tasks are eligible for speculation (LATE's
    /// SlowTaskThreshold, 25 % by default).
    pub slow_task_quantile: f64,
    /// Maximum fraction of the cluster that may run speculative copies at any
    /// time (LATE's SpeculativeCap, 10 % by default).
    pub speculative_cap: f64,
    /// Minimum elapsed running time (slots) before a task is considered.
    pub min_elapsed_for_detection: Slot,
    /// How often (in slots) the detector re-examines running tasks.
    pub detection_interval: Slot,
}

impl Default for LateConfig {
    fn default() -> Self {
        LateConfig {
            slow_task_quantile: 0.25,
            speculative_cap: 0.1,
            // LATE (like Hadoop's stock speculation) only considers tasks
            // that have run for a while, so progress rates are meaningful.
            min_elapsed_for_detection: 30,
            detection_interval: 5,
        }
    }
}

impl LateConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if the quantile or cap are outside `(0, 1]` or the detection
    /// interval is zero.
    pub fn validate(&self) {
        assert!(
            self.slow_task_quantile > 0.0 && self.slow_task_quantile <= 1.0,
            "slow task quantile must be in (0, 1]"
        );
        assert!(
            self.speculative_cap > 0.0 && self.speculative_cap <= 1.0,
            "speculative cap must be in (0, 1]"
        );
        assert!(
            self.detection_interval >= 1,
            "detection interval must be >= 1"
        );
    }
}

/// The LATE speculative-execution baseline.
#[derive(Debug, Clone)]
pub struct Late {
    config: LateConfig,
    /// Pooled fair-fill buffers (LATE wakes every `detection_interval`).
    fill_scratch: FairFillScratch,
    /// Pooled detection buffers: `(rate, est_time_left, action)` candidates,
    /// the sorted rate sample, and the eligible slow tasks.
    candidates: Vec<(f64, f64, Action)>,
    rates: Vec<f64>,
    eligible: Vec<(f64, Action)>,
}

impl Late {
    /// Creates LATE with its published default thresholds.
    pub fn new() -> Self {
        Self::with_config(LateConfig::default())
    }

    /// Creates LATE with a custom configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn with_config(config: LateConfig) -> Self {
        config.validate();
        Late {
            config,
            fill_scratch: FairFillScratch::default(),
            candidates: Vec::new(),
            rates: Vec::new(),
            eligible: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LateConfig {
        &self.config
    }
}

impl Default for Late {
    fn default() -> Self {
        Late::new()
    }
}

impl Scheduler for Late {
    fn name(&self) -> &str {
        "late"
    }

    fn wakeup_interval(&self) -> Option<Slot> {
        Some(self.config.detection_interval)
    }

    fn index_demands(&self) -> IndexDemands {
        // The detection pass walks the per-phase running free-lists.
        IndexDemands {
            running_list: true,
            ..IndexDemands::default()
        }
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut budget = state.available_machines();
        if budget == 0 {
            return;
        }

        // Regular work first, via equal-share fair scheduling (LATE, like
        // Mantri, has no notion of per-job weights). Skipped via the O(1)
        // aggregate when nothing is launchable.
        let start = actions.len();
        if state.total_unscheduled_tasks() > 0 {
            fair_fill_alive_into(state, budget, false, &mut self.fill_scratch, actions);
        }
        budget -= (actions.len() - start).min(budget);
        if budget == 0 {
            return;
        }

        // Speculative copies, LATE-style, with the leftover machines. The
        // running-task iteration below is backed by the engine's per-phase
        // free-lists, so the detection pass costs O(running tasks), not
        // O(all tasks of all alive jobs). All detection buffers are pooled
        // in `self`.
        let now = state.now();
        let copies = state.copies();
        let mut speculative_running = 0usize;
        let candidates = &mut self.candidates;
        candidates.clear();
        for job in state.alive_jobs() {
            for phase in [Phase::Map, Phase::Reduce] {
                for task in job.running_tasks(phase) {
                    if task.active_copies() >= 2 {
                        speculative_running += 1;
                        continue;
                    }
                    let elapsed = task.oldest_active_elapsed(copies, now);
                    if elapsed < self.config.min_elapsed_for_detection {
                        continue;
                    }
                    let progress = task.best_progress(copies, now);
                    let rate = progress / elapsed.max(1) as f64;
                    let est_left = if rate > 0.0 {
                        (1.0 - progress) / rate
                    } else {
                        f64::INFINITY
                    };
                    candidates.push((
                        rate,
                        est_left,
                        Action::Launch {
                            task: task.id(),
                            copies: 1,
                        },
                    ));
                }
            }
        }
        if candidates.is_empty() {
            return;
        }

        // SlowTaskThreshold: rate must be in the slowest quantile.
        let rates = &mut self.rates;
        rates.clear();
        rates.extend(candidates.iter().map(|(rate, _, _)| *rate));
        rates.sort_by(|a, b| a.total_cmp(b));
        let idx = ((rates.len() as f64 * self.config.slow_task_quantile).ceil() as usize)
            .clamp(1, rates.len())
            - 1;
        let threshold = rates[idx];

        // SpeculativeCap: bound on outstanding duplicates.
        let cap =
            ((state.total_machines() as f64 * self.config.speculative_cap).floor() as usize).max(1);
        let allowance = cap.saturating_sub(speculative_running).min(budget);

        let eligible = &mut self.eligible;
        eligible.clear();
        eligible.extend(
            candidates
                .iter()
                .filter(|(rate, _, _)| *rate <= threshold)
                .map(|&(_, est, action)| (est, action)),
        );
        // Longest approximate time to end first; `total_cmp` keeps the order
        // total (the estimates can be infinite). Stable sort: ties keep the
        // detection (job-id) order.
        eligible.sort_by(|a, b| b.0.total_cmp(&a.0));
        for &(_, action) in eligible.iter().take(allowance) {
            actions.push(action);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation, StragglerModel};
    use mapreduce_workload::{
        DurationDistribution, JobId, JobSpecBuilder, PhaseStats, Trace, WorkloadBuilder,
    };

    #[test]
    fn completes_ordinary_workloads() {
        let trace = WorkloadBuilder::new()
            .num_jobs(20)
            .map_tasks_per_job(1, 4)
            .reduce_tasks_per_job(0, 1)
            .build(3);
        let outcome = Simulation::new(SimConfig::new(8).with_seed(1), &trace)
            .run(&mut Late::new())
            .unwrap();
        assert_eq!(outcome.records().len(), 20);
    }

    #[test]
    fn speculates_on_the_slowest_task() {
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[20.0, 20.0, 600.0])
            .map_stats(PhaseStats::new(20.0, 5.0))
            .map_distribution(DurationDistribution::Deterministic { value: 20.0 })
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(10).with_seed(2), &trace)
            .run(&mut Late::new())
            .unwrap();
        let record = outcome.record(JobId::new(0)).unwrap();
        assert!(
            record.completion < 300,
            "LATE should have rescued the straggler, completion {}",
            record.completion
        );
        assert!(record.copies_launched > record.num_tasks());
    }

    #[test]
    fn speculation_helps_under_machine_stragglers() {
        let trace = WorkloadBuilder::new()
            .num_jobs(20)
            .map_tasks_per_job(2, 5)
            .map_duration(DurationDistribution::TruncatedNormal {
                mean: 50.0,
                std_dev: 10.0,
                min: 10.0,
            })
            .build(9);
        let straggling = StragglerModel::MachineSlowdown {
            probability: 0.15,
            factor: 6.0,
        };
        let cfg = SimConfig::new(16)
            .with_seed(11)
            .with_straggler_model(straggling);
        let fifo = Simulation::new(cfg.clone(), &trace)
            .run(&mut crate::Fifo::new())
            .unwrap();
        let late = Simulation::new(cfg, &trace).run(&mut Late::new()).unwrap();
        assert!(
            late.mean_flowtime() <= fifo.mean_flowtime(),
            "LATE {} should not lose to FIFO {} with machine stragglers",
            late.mean_flowtime(),
            fifo.mean_flowtime()
        );
    }

    #[test]
    fn config_validation() {
        assert!(std::panic::catch_unwind(|| Late::with_config(LateConfig {
            slow_task_quantile: 0.0,
            ..LateConfig::default()
        }))
        .is_err());
        assert!(std::panic::catch_unwind(|| Late::with_config(LateConfig {
            speculative_cap: 1.5,
            ..LateConfig::default()
        }))
        .is_err());
        assert_eq!(Late::new().name(), "late");
        assert_eq!(Late::default().wakeup_interval(), Some(5));
    }
}
