//! SCA — the Smart Cloning Algorithm ([26], "Optimization for speculative
//! execution in a MapReduce-like cluster").
//!
//! SCA decides, for every arriving job, how many clones each of its tasks
//! should get by solving a convex program that minimises the total expected
//! job flowtime subject to the machine budget, exploiting the concavity of
//! the cloning speedup function `s(x)`. Because the utility is concave and
//! separable, the optimal allocation equalises marginal gains — which is
//! exactly what a greedy water-filling achieves up to integer rounding. This
//! implementation therefore performs the greedy equivalent:
//!
//! 1. every unscheduled task of every alive job first receives one copy
//!    (highest `w/U` jobs first, map phase before reduce phase), then
//! 2. leftover machines are handed out one *increment* at a time to the job
//!    whose next clone level yields the largest reduction in expected
//!    weighted phase duration per machine spent,
//!    `w_i · E_i · (1/s(x) − 1/s(x+1)) / n_i`.
//!
//! The net effect matches the published behaviour: small jobs get cloned
//! aggressively the moment they arrive, large jobs barely at all. The
//! substitution (greedy water-filling instead of an external convex solver)
//! is recorded in DESIGN.md.

use mapreduce_sim::{Action, ClusterState, JobState, ParetoSpeedup, Scheduler, SpeedupFunction};
use mapreduce_workload::Phase;

/// Configuration of the [`Sca`] baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaConfig {
    /// Pessimism factor applied to the effective workload when ordering jobs.
    pub r: f64,
    /// Pareto shape parameter of the speedup model `s(x)` used inside the
    /// (greedy) convex program.
    pub speedup_alpha: f64,
    /// Maximum number of copies per task the program may assign.
    pub max_copies_per_task: usize,
}

impl Default for ScaConfig {
    fn default() -> Self {
        ScaConfig {
            r: 0.0,
            speedup_alpha: 2.0,
            max_copies_per_task: 8,
        }
    }
}

impl ScaConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if `r` is negative, `speedup_alpha ≤ 1`, or the copy cap is 0.
    pub fn validate(&self) {
        assert!(
            self.r >= 0.0 && self.r.is_finite(),
            "r must be non-negative"
        );
        assert!(self.speedup_alpha > 1.0, "speedup alpha must exceed 1");
        assert!(self.max_copies_per_task >= 1, "copy cap must be at least 1");
    }
}

/// The Smart Cloning Algorithm baseline.
#[derive(Debug, Clone)]
pub struct Sca {
    config: ScaConfig,
    speedup: ParetoSpeedup,
}

impl Sca {
    /// Creates SCA with default parameters.
    pub fn new() -> Self {
        Self::with_config(ScaConfig::default())
    }

    /// Creates SCA with a custom configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn with_config(config: ScaConfig) -> Self {
        config.validate();
        Sca {
            speedup: ParetoSpeedup::new(config.speedup_alpha),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScaConfig {
        &self.config
    }

    /// The marginal reduction in expected weighted phase duration obtained by
    /// raising a job's per-task clone level from `x` to `x + 1`, normalised
    /// per machine spent (one extra machine per unscheduled task).
    fn marginal_gain(&self, weight: f64, phase_mean: f64, x: usize) -> f64 {
        let s_now = self.speedup.speedup(x as f64);
        let s_next = self.speedup.speedup((x + 1) as f64);
        weight * phase_mean * (1.0 / s_now - 1.0 / s_next)
    }
}

impl Default for Sca {
    fn default() -> Self {
        Sca::new()
    }
}

/// Per-job working state used while the greedy allocation runs.
struct Allocation<'a> {
    job: &'a JobState,
    phase: Phase,
    tasks: Vec<mapreduce_workload::TaskId>,
    copies_per_task: usize,
}

impl Scheduler for Sca {
    fn name(&self) -> &str {
        "sca"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut budget = state.available_machines();
        if budget == 0 {
            return;
        }

        // Jobs with launchable work, ordered by w / U (small jobs first).
        let mut jobs: Vec<&JobState> = state
            .alive_jobs()
            .filter(|j| j.total_unscheduled() > 0)
            .collect();
        jobs.sort_by(|a, b| {
            let pa = a.weight()
                / a.remaining_effective_workload(self.config.r)
                    .max(f64::MIN_POSITIVE);
            let pb = b.weight()
                / b.remaining_effective_workload(self.config.r)
                    .max(f64::MIN_POSITIVE);
            pb.total_cmp(&pa).then_with(|| a.id().cmp(&b.id()))
        });

        // Pass 1: one copy per launchable task, in priority order.
        let mut allocations: Vec<Allocation<'_>> = Vec::new();
        for job in jobs {
            if budget == 0 {
                break;
            }
            let phase = if job.num_unscheduled(Phase::Map) > 0 {
                Phase::Map
            } else if job.map_phase_complete() && job.num_unscheduled(Phase::Reduce) > 0 {
                Phase::Reduce
            } else {
                continue;
            };
            // The unscheduled free-list gives the launchable tasks directly;
            // no scan over the full task vector.
            let tasks: Vec<_> = job
                .unscheduled_indices(phase)
                .iter()
                .map(|&i| mapreduce_workload::TaskId::new(job.id(), phase, i))
                .take(budget)
                .collect();
            if tasks.is_empty() {
                continue;
            }
            budget -= tasks.len();
            allocations.push(Allocation {
                job,
                phase,
                tasks,
                copies_per_task: 1,
            });
        }

        // Pass 2: greedy water-filling of the leftover machines, one clone
        // level at a time, to the allocation with the best marginal gain per
        // machine.
        loop {
            if budget == 0 {
                break;
            }
            let mut best: Option<(f64, usize)> = None;
            for (idx, alloc) in allocations.iter().enumerate() {
                if alloc.copies_per_task >= self.config.max_copies_per_task {
                    continue;
                }
                let cost = alloc.tasks.len();
                if cost == 0 || cost > budget {
                    continue;
                }
                let mean = alloc.job.spec().stats(alloc.phase).mean;
                let gain = self.marginal_gain(alloc.job.weight(), mean, alloc.copies_per_task)
                    / cost as f64;
                if gain <= 0.0 {
                    continue;
                }
                match best {
                    Some((best_gain, _)) if gain <= best_gain => {}
                    _ => best = Some((gain, idx)),
                }
            }
            let Some((_, idx)) = best else { break };
            budget -= allocations[idx].tasks.len();
            allocations[idx].copies_per_task += 1;
        }

        actions.extend(allocations.into_iter().flat_map(|alloc| {
            alloc.tasks.into_iter().map(move |task| Action::Launch {
                task,
                copies: alloc.copies_per_task,
            })
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{
        DurationDistribution, JobId, JobSpecBuilder, PhaseStats, Trace, WorkloadBuilder,
    };

    #[test]
    fn completes_ordinary_workloads() {
        let trace = WorkloadBuilder::new()
            .num_jobs(25)
            .map_tasks_per_job(1, 5)
            .reduce_tasks_per_job(0, 2)
            .build(4);
        let outcome = Simulation::new(SimConfig::new(10).with_seed(4), &trace)
            .run(&mut Sca::new())
            .unwrap();
        assert_eq!(outcome.records().len(), 25);
    }

    #[test]
    fn clones_small_jobs_when_machines_are_spare() {
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[60.0, 60.0])
            .map_stats(PhaseStats::new(60.0, 20.0))
            .map_distribution(DurationDistribution::lognormal_from_moments(60.0, 20.0).unwrap())
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(12).with_seed(5), &trace)
            .run(&mut Sca::new())
            .unwrap();
        assert!(
            outcome.mean_copies_per_task() > 1.5,
            "expected aggressive cloning, got {} copies/task",
            outcome.mean_copies_per_task()
        );
    }

    #[test]
    fn small_jobs_get_more_clones_than_large_jobs() {
        // A small and a large job arrive together into a modest cluster: the
        // greedy program should clone the small one more per task.
        let small = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[30.0, 30.0])
            .build();
        let large = JobSpecBuilder::new(JobId::new(1))
            .map_tasks_from_workloads(&[30.0; 12])
            .build();
        let trace = Trace::new(vec![small, large]).unwrap();
        let outcome = Simulation::new(SimConfig::new(20).with_seed(6), &trace)
            .run(&mut Sca::new())
            .unwrap();
        let small_rec = outcome.record(JobId::new(0)).unwrap();
        let large_rec = outcome.record(JobId::new(1)).unwrap();
        let small_ratio = small_rec.copies_launched as f64 / small_rec.num_tasks() as f64;
        let large_ratio = large_rec.copies_launched as f64 / large_rec.num_tasks() as f64;
        assert!(
            small_ratio >= large_ratio,
            "small job ratio {small_ratio} < large job ratio {large_ratio}"
        );
    }

    #[test]
    fn marginal_gain_is_decreasing_in_x() {
        let sca = Sca::new();
        let g1 = sca.marginal_gain(1.0, 100.0, 1);
        let g2 = sca.marginal_gain(1.0, 100.0, 2);
        let g3 = sca.marginal_gain(1.0, 100.0, 3);
        assert!(g1 > g2 && g2 > g3);
        assert!(g3 > 0.0);
    }

    #[test]
    fn config_validation() {
        assert!(std::panic::catch_unwind(|| Sca::with_config(ScaConfig {
            speedup_alpha: 1.0,
            ..ScaConfig::default()
        }))
        .is_err());
        assert!(std::panic::catch_unwind(|| Sca::with_config(ScaConfig {
            r: -1.0,
            ..ScaConfig::default()
        }))
        .is_err());
        assert_eq!(Sca::new().name(), "sca");
        assert_eq!(Sca::default().config().max_copies_per_task, 8);
    }
}
