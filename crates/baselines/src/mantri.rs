//! Microsoft Mantri's resource-aware speculative execution ([4] in the
//! paper).
//!
//! Mantri monitors the progress of every running task, estimates its
//! remaining time `t_rem` and the time `t_new` a freshly restarted copy would
//! need, and — when a machine is available — launches a duplicate of a task
//! whenever `P(t_rem > 2·t_new) > δ`. The intuition is that a duplicate is
//! only worth its machine if it roughly halves the expected completion of the
//! task.
//!
//! This implementation follows that decision rule with the information the
//! simulator exposes:
//!
//! * `t_rem` comes from the task's progress (the per-copy progress score a
//!   MapReduce system reports; in the simulator the derived estimate is
//!   exact, which if anything *flatters* Mantri),
//! * `t_new` is the average duration of the task's phase observed so far from
//!   the job's completed tasks, falling back to the phase mean from the job's
//!   statistics when nothing has completed yet,
//! * `δ` is folded into a configurable slack factor on the `2×` threshold,
//! * at most one backup copy per task ([4] caps outstanding duplicates), and
//!   backups are only launched when machines are idle (resource awareness).
//!
//! Job-level allocation (which job's tasks get free machines first) uses the
//! same weighted fair sharing as Hadoop's fair scheduler, which is how Mantri
//! is deployed in practice. The fundamental limitation the paper exploits is
//! visible directly in the code: a straggler can only be detected after its
//! task has run long enough to produce progress samples, which is too late
//! for small jobs.

use crate::fair::{fair_fill_alive_into, FairFillScratch};
use mapreduce_sim::{Action, ClusterState, IndexDemands, JobState, Scheduler, Slot};
use mapreduce_workload::Phase;

/// Configuration of the [`Mantri`] baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MantriConfig {
    /// A duplicate is launched when `t_rem > threshold_factor · t_new`.
    /// Mantri's published rule uses 2.0.
    pub threshold_factor: f64,
    /// Minimum elapsed running time (slots) before a task may be judged a
    /// straggler; avoids reacting to tasks that have barely started.
    pub min_elapsed_for_detection: Slot,
    /// Maximum total copies per task (original + duplicates).
    pub max_copies_per_task: usize,
    /// How often (in slots) the detector re-examines running tasks.
    pub detection_interval: Slot,
}

impl Default for MantriConfig {
    fn default() -> Self {
        MantriConfig {
            threshold_factor: 2.0,
            // A task only becomes a speculation candidate after it has run
            // long enough for its progress rate to be trustworthy. Hadoop's
            // speculative execution uses a 60 s lag; Mantri reacts earlier,
            // so we use 30 s. This is exactly the "detection may be too late
            // for helping small jobs" limitation the paper exploits.
            min_elapsed_for_detection: 30,
            max_copies_per_task: 2,
            detection_interval: 5,
        }
    }
}

impl MantriConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if the threshold is not positive, the copy cap is below 2, or
    /// the detection interval is zero.
    pub fn validate(&self) {
        assert!(
            self.threshold_factor > 0.0,
            "threshold factor must be positive"
        );
        assert!(
            self.max_copies_per_task >= 2,
            "Mantri needs at least 2 copies per task to ever speculate"
        );
        assert!(
            self.detection_interval >= 1,
            "detection interval must be >= 1"
        );
    }
}

/// The Mantri speculative-execution baseline.
#[derive(Debug, Clone)]
pub struct Mantri {
    config: MantriConfig,
    /// Pooled fair-fill buffers; Mantri wakes every `detection_interval`
    /// slots, so per-decision allocations here would dominate the run.
    fill_scratch: FairFillScratch,
    /// Pooled straggler-candidate buffer (`Action` is `Copy`, no borrows).
    candidates: Vec<(Slot, Action)>,
}

impl Mantri {
    /// Creates Mantri with the published default parameters.
    pub fn new() -> Self {
        Self::with_config(MantriConfig::default())
    }

    /// Creates Mantri with a custom configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn with_config(config: MantriConfig) -> Self {
        config.validate();
        Mantri {
            config,
            fill_scratch: FairFillScratch::default(),
            candidates: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MantriConfig {
        &self.config
    }

    /// Mantri's estimate of the time a restarted copy of a task in `phase` of
    /// `job` would take: the mean duration of already-completed tasks of that
    /// phase, or the phase's a-priori mean if none completed yet.
    ///
    /// `O(1)`: the engine maintains the completed-duration aggregates
    /// incrementally as tasks finish, so nothing is rescanned per wakeup.
    fn estimate_t_new(job: &JobState, phase: Phase) -> f64 {
        job.mean_completed_duration(phase)
            .unwrap_or_else(|| job.spec().stats(phase).mean)
    }

    /// Collects duplicate launches for running stragglers of one job.
    ///
    /// Incremental detection: the engine keys every running task by its
    /// earliest predicted finish slot ([`JobState::running_by_finish`]), and
    /// `t_rem(now) = finish − now`, so the straggler condition
    /// `t_rem > threshold · t_new` selects exactly the tail of that order.
    /// One `partition_point` per phase finds the cutoff and the scan touches
    /// only the tasks currently judged stragglers — `O(log running +
    /// stragglers)` per job instead of re-deriving `t_rem` for every running
    /// task on every detection wakeup.
    fn straggler_candidates(
        &self,
        job: &JobState,
        copies: &mapreduce_sim::CopyArena,
        now: Slot,
        candidates: &mut Vec<(Slot, Action)>,
    ) {
        for phase in [Phase::Map, Phase::Reduce] {
            let entries = job.running_by_finish(phase);
            if entries.is_empty() {
                continue;
            }
            let t_new = Self::estimate_t_new(job, phase);
            let start = entries.partition_point(|&(finish, _)| {
                finish.saturating_sub(now) as f64 <= self.config.threshold_factor * t_new
            });
            for &(finish, index) in &entries[start..] {
                let Some(task) = job.task(phase, index) else {
                    continue;
                };
                if task.active_copies() >= self.config.max_copies_per_task {
                    continue;
                }
                if task.oldest_active_elapsed(copies, now) < self.config.min_elapsed_for_detection {
                    continue;
                }
                candidates.push((
                    finish - now,
                    Action::Launch {
                        task: task.id(),
                        copies: 1,
                    },
                ));
            }
        }
    }
}

impl Default for Mantri {
    fn default() -> Self {
        Mantri::new()
    }
}

impl Scheduler for Mantri {
    fn name(&self) -> &str {
        "mantri"
    }

    fn wakeup_interval(&self) -> Option<Slot> {
        Some(self.config.detection_interval)
    }

    fn index_demands(&self) -> IndexDemands {
        // Straggler detection partition-points the running-by-finish order.
        IndexDemands {
            finish_index: true,
            ..IndexDemands::default()
        }
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut budget = state.available_machines();
        if budget == 0 {
            return;
        }
        // 1. Regular work first (Mantri only uses *spare* machines for
        //    duplicates): equal-share fair scheduling across alive jobs —
        //    Mantri sits on the cluster's stock job scheduler, which knows
        //    nothing about the trace's priority weights. The fill is skipped
        //    via the O(1) aggregate when nothing is launchable (it could not
        //    have produced an action).
        let start = actions.len();
        if state.total_unscheduled_tasks() > 0 {
            fair_fill_alive_into(state, budget, false, &mut self.fill_scratch, actions);
        }
        let launched = actions.len() - start;
        budget -= launched.min(budget);
        if budget == 0 {
            return;
        }

        // 2. Spend leftover machines on duplicates of detected stragglers,
        //    worst (largest remaining time) first. The candidate buffer is
        //    pooled in `self`; the sort must stay stable so equal `t_rem`
        //    candidates keep job-id order.
        let mut candidates = std::mem::take(&mut self.candidates);
        candidates.clear();
        for job in state.alive_jobs() {
            self.straggler_candidates(job, state.copies(), state.now(), &mut candidates);
        }
        candidates.sort_by_key(|(t_rem, _)| std::cmp::Reverse(*t_rem));
        for &(_, action) in candidates.iter().take(budget) {
            actions.push(action);
        }
        self.candidates = candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation, StragglerModel};
    use mapreduce_workload::{
        DurationDistribution, JobId, JobSpecBuilder, PhaseStats, Trace, WorkloadBuilder,
    };

    #[test]
    fn completes_ordinary_workloads() {
        let trace = WorkloadBuilder::new()
            .num_jobs(25)
            .map_tasks_per_job(1, 6)
            .reduce_tasks_per_job(0, 2)
            .build(8);
        let outcome = Simulation::new(SimConfig::new(8).with_seed(1), &trace)
            .run(&mut Mantri::new())
            .unwrap();
        assert_eq!(outcome.records().len(), 25);
    }

    #[test]
    fn duplicates_a_clear_straggler() {
        // One job, two map tasks: one normal (20 s), one straggling (400 s),
        // with a short-mean resampling distribution so the duplicate rescues
        // it. A second machine is free for the duplicate.
        let dist = DurationDistribution::Deterministic { value: 20.0 };
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[20.0, 400.0])
            .map_stats(PhaseStats::new(20.0, 5.0))
            .map_distribution(dist)
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(3).with_seed(2), &trace)
            .run(&mut Mantri::new())
            .unwrap();
        let record = outcome.record(JobId::new(0)).unwrap();
        // Without speculation the job would take 400 slots; with Mantri the
        // duplicate (20 slots, launched once the straggler is detected)
        // finishes long before that.
        assert!(
            record.completion < 200,
            "straggler not rescued: completion {}",
            record.completion
        );
        assert!(record.copies_launched > record.num_tasks());
    }

    #[test]
    fn speculation_beats_no_speculation_with_machine_stragglers() {
        let trace = WorkloadBuilder::new()
            .num_jobs(20)
            .map_tasks_per_job(2, 5)
            .reduce_tasks_per_job(1, 1)
            .map_duration(DurationDistribution::TruncatedNormal {
                mean: 50.0,
                std_dev: 10.0,
                min: 10.0,
            })
            .build(5);
        let straggling = StragglerModel::MachineSlowdown {
            probability: 0.15,
            factor: 6.0,
        };
        let cfg = SimConfig::new(16)
            .with_seed(7)
            .with_straggler_model(straggling);
        let fair = Simulation::new(cfg.clone(), &trace)
            .run(&mut crate::FairScheduler::new())
            .unwrap();
        let mantri = Simulation::new(cfg, &trace)
            .run(&mut Mantri::new())
            .unwrap();
        assert!(
            mantri.mean_flowtime() < fair.mean_flowtime(),
            "Mantri {} should beat Fair {} when machines straggle",
            mantri.mean_flowtime(),
            fair.mean_flowtime()
        );
    }

    #[test]
    fn respects_copy_cap() {
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[500.0])
            .map_stats(PhaseStats::new(20.0, 5.0))
            .map_distribution(DurationDistribution::Deterministic { value: 500.0 })
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(10).with_seed(3), &trace)
            .run(&mut Mantri::new())
            .unwrap();
        // Cap is 2 copies per task.
        assert!(outcome.total_copies <= 2);
    }

    #[test]
    fn config_validation() {
        assert!(std::panic::catch_unwind(|| {
            Mantri::with_config(MantriConfig {
                threshold_factor: 0.0,
                ..MantriConfig::default()
            })
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            Mantri::with_config(MantriConfig {
                max_copies_per_task: 1,
                ..MantriConfig::default()
            })
        })
        .is_err());
        assert_eq!(Mantri::new().config().threshold_factor, 2.0);
        assert_eq!(Mantri::new().name(), "mantri");
        assert_eq!(Mantri::default().wakeup_interval(), Some(5));
    }
}
