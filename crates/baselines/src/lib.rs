//! Baseline schedulers the paper compares SRPTMS+C against, plus a few extra
//! reference points used by the experiments and ablations.
//!
//! * [`Mantri`] — Microsoft Mantri's resource-aware speculative execution:
//!   straggler *detection* based on the remaining-vs-restart comparison
//!   `t_rem > 2·t_new` ([4] in the paper). This is the main baseline of the
//!   evaluation section.
//! * [`Sca`] — the Smart Cloning Algorithm of the authors' earlier work
//!   ([26]): decides clone counts per job at launch time by (a greedy
//!   water-filling equivalent of) a convex program over the concave speedup
//!   function.
//! * [`FairScheduler`] — Hadoop's weighted fair scheduler, the `ε = 1`
//!   degenerate case of SRPTMS+C; no speculation.
//! * [`Fifo`] — plain FIFO job order without speculation.
//! * [`SrptNoClone`] — SRPT by remaining effective workload without cloning,
//!   the `ε → 0` limit of SRPTMS+C.
//! * [`Late`] — the LATE heuristic (longest approximate time to end), an
//!   extra detection-based baseline beyond the paper's line-up.
//! * [`Restart`] — kill-and-restart speculative execution (the
//!   cancellation-heavy strategy of the restart literature in PAPERS.md):
//!   stragglers are cancelled and relaunched instead of duplicated, which
//!   makes it the adversarial workout for the engine's cancellation path.
//!
//! All of them implement [`mapreduce_sim::Scheduler`] and can be swapped into
//! any experiment or example.
//!
//! The [`reference`] module holds frozen pre-optimization copies of the
//! schedulers, used by the golden-equivalence tests and the benchmark
//! baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fair;
pub mod fifo;
pub mod late;
pub mod mantri;
pub mod reference;
pub mod restart;
pub mod sca;
pub mod srpt_noclone;

pub use fair::{FairFillScratch, FairScheduler};
pub use fifo::Fifo;
pub use late::{Late, LateConfig};
pub use mantri::{Mantri, MantriConfig};
pub use reference::{
    ReferenceFair, ReferenceFifo, ReferenceLate, ReferenceMantri, ReferenceRestart, ReferenceSca,
};
pub use restart::{Restart, RestartConfig};
pub use sca::{Sca, ScaConfig};
pub use srpt_noclone::SrptNoClone;
