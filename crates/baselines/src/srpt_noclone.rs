//! Pure SRPT on remaining effective workload, without cloning.
//!
//! This is the `ε → 0` limit of SRPTMS+C: at every decision point the alive
//! job with the highest `w_i / U_i(l)` gets every machine it can use before
//! the next job is considered. It isolates the contribution of the SRPT
//! ordering from the contribution of cloning, and is the natural ablation for
//! the paper's central claim that *both* are needed.

use mapreduce_sim::{Action, ClusterState, Scheduler};
use mapreduce_workload::Phase;

/// SRPT by remaining effective workload, one copy per task, no cloning.
#[derive(Debug, Clone)]
pub struct SrptNoClone {
    r: f64,
    name: String,
}

impl SrptNoClone {
    /// Creates the scheduler with pessimism factor `r ≥ 0`.
    ///
    /// # Panics
    /// Panics if `r` is negative or not finite.
    pub fn new(r: f64) -> Self {
        assert!(
            r.is_finite() && r >= 0.0,
            "r must be non-negative and finite, got {r}"
        );
        SrptNoClone {
            r,
            name: format!("srpt-noclone(r={r})"),
        }
    }

    /// The pessimism factor `r`.
    pub fn r(&self) -> f64 {
        self.r
    }
}

impl Default for SrptNoClone {
    fn default() -> Self {
        SrptNoClone::new(0.0)
    }
}

impl Scheduler for SrptNoClone {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut budget = state.available_machines();
        if budget == 0 {
            return;
        }
        let mut jobs: Vec<_> = state
            .alive_jobs()
            .filter(|j| j.total_unscheduled() > 0)
            .collect();
        jobs.sort_by(|a, b| {
            let pa = a.weight()
                / a.remaining_effective_workload(self.r)
                    .max(f64::MIN_POSITIVE);
            let pb = b.weight()
                / b.remaining_effective_workload(self.r)
                    .max(f64::MIN_POSITIVE);
            pb.total_cmp(&pa).then_with(|| a.id().cmp(&b.id()))
        });
        for job in jobs {
            for phase in [Phase::Map, Phase::Reduce] {
                if phase == Phase::Reduce && !job.map_phase_complete() {
                    continue;
                }
                for task in job.unscheduled_tasks(phase) {
                    if budget == 0 {
                        return;
                    }
                    actions.push(Action::Launch {
                        task: task.id(),
                        copies: 1,
                    });
                    budget -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{JobId, JobSpecBuilder, Trace, WorkloadBuilder};

    #[test]
    fn prefers_small_jobs() {
        let big = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[40.0; 6])
            .build();
        let small = JobSpecBuilder::new(JobId::new(1))
            .map_tasks_from_workloads(&[10.0])
            .build();
        let trace = Trace::new(vec![big, small]).unwrap();
        let outcome = Simulation::new(SimConfig::new(1), &trace)
            .run(&mut SrptNoClone::new(0.0))
            .unwrap();
        assert_eq!(outcome.record(JobId::new(1)).unwrap().completion, 10);
    }

    #[test]
    fn never_clones() {
        let trace = WorkloadBuilder::new().num_jobs(15).build(2);
        let outcome = Simulation::new(SimConfig::new(32), &trace)
            .run(&mut SrptNoClone::new(3.0))
            .unwrap();
        assert!((outcome.mean_copies_per_task() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_and_name() {
        assert!(std::panic::catch_unwind(|| SrptNoClone::new(-2.0)).is_err());
        assert!(SrptNoClone::new(1.0).name().contains("srpt-noclone"));
        assert_eq!(SrptNoClone::default().r(), 0.0);
    }
}
