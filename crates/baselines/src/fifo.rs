//! FIFO job scheduling without speculation — Hadoop's original default.

use mapreduce_sim::{Action, ClusterState, Scheduler, Slot};
use mapreduce_workload::{JobId, Phase, TaskId};
use std::collections::BTreeSet;

/// First-in-first-out job order, one copy per task, no speculation.
///
/// Jobs are served strictly in arrival order; within a job, map tasks are
/// launched before reduce tasks and reduce tasks only start once the Map
/// phase has completed.
///
/// The decision side is incremental: instead of walking every alive job per
/// wakeup, the scheduler keeps a **ready set** of jobs that may still have
/// launchable work, ordered by `(arrival, id)`. Jobs enter on arrival, when
/// their Map phase completes (unlocking reduce tasks), and when a machine
/// crash returns a task of theirs to the unscheduled pool — the only events
/// that can create launchable work under FIFO — and leave once everything
/// launchable has been launched. A `schedule` call therefore costs
/// `O(launches + ready jobs)` rather than `O(alive jobs)`.
#[derive(Debug, Default, Clone)]
pub struct Fifo {
    /// Alive jobs that may still have launchable work, `(arrival, id)`
    /// ascending — the same order the engine's arrival index yields.
    ready: BTreeSet<(Slot, JobId)>,
    /// Pooled per-decision buffer of ready-set entries proven exhausted.
    exhausted: Vec<(Slot, JobId)>,
}

impl Fifo {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Fifo::default()
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }

    fn on_job_arrival(&mut self, job: JobId, state: &ClusterState<'_>) {
        if let Some(j) = state.job(job) {
            self.ready.insert((j.arrival(), job));
        }
    }

    fn on_task_finished(&mut self, task: TaskId, state: &ClusterState<'_>) {
        // A Map completion may unlock this job's reduce tasks. (A reduce
        // completion never creates launchable work: any still-unscheduled
        // reduce task of that job already kept the job in the ready set.)
        if task.phase != Phase::Map {
            return;
        }
        if let Some(j) = state.job(task.job) {
            if j.is_alive() && j.map_phase_complete() && j.num_unscheduled(Phase::Reduce) > 0 {
                self.ready.insert((j.arrival(), task.job));
            }
        }
    }

    fn on_task_unlaunched(&mut self, task: TaskId, state: &ClusterState<'_>) {
        // A crash returned this task to the unscheduled pool: the job has
        // launchable work again even though no arrival or Map completion
        // occurred, so it must rejoin the ready set (insert is idempotent).
        if let Some(j) = state.job(task.job) {
            if j.is_alive() {
                self.ready.insert((j.arrival(), task.job));
            }
        }
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        let mut budget = state.available_machines();
        if budget == 0 || self.ready.is_empty() {
            return;
        }
        // Launch in ready order; drop jobs proven exhausted. A job is
        // exhausted once every launchable task has been launched — gated
        // reduce tasks don't count, because Map-phase completion re-inserts
        // the job. Jobs cut off by the budget keep their entry. The buffer
        // is pooled across decisions.
        let exhausted = &mut self.exhausted;
        exhausted.clear();
        for &entry in self.ready.iter() {
            if budget == 0 {
                break;
            }
            let (_, id) = entry;
            let job = match state.job(id) {
                Some(job) if job.is_alive() => job,
                _ => {
                    exhausted.push(entry);
                    continue;
                }
            };
            let mut cut_off = false;
            'phases: for phase in [Phase::Map, Phase::Reduce] {
                if phase == Phase::Reduce && !job.map_phase_complete() {
                    continue;
                }
                for &index in job.unscheduled_indices(phase) {
                    if budget == 0 {
                        cut_off = true;
                        break 'phases;
                    }
                    actions.push(Action::Launch {
                        task: TaskId::new(id, phase, index),
                        copies: 1,
                    });
                    budget -= 1;
                }
            }
            if !cut_off {
                exhausted.push(entry);
            }
        }
        for entry in exhausted.iter() {
            self.ready.remove(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{JobId, JobSpecBuilder, Trace, WorkloadBuilder};

    #[test]
    fn earlier_jobs_finish_first_under_contention() {
        let first = JobSpecBuilder::new(JobId::new(0))
            .arrival(0)
            .map_tasks_from_workloads(&[30.0; 4])
            .build();
        let second = JobSpecBuilder::new(JobId::new(1))
            .arrival(1)
            .map_tasks_from_workloads(&[30.0; 4])
            .build();
        let trace = Trace::new(vec![first, second]).unwrap();
        let outcome = Simulation::new(SimConfig::new(2), &trace)
            .run(&mut Fifo::new())
            .unwrap();
        assert!(
            outcome.record(JobId::new(0)).unwrap().completion
                < outcome.record(JobId::new(1)).unwrap().completion
        );
    }

    #[test]
    fn never_speculates() {
        let trace = WorkloadBuilder::new().num_jobs(20).build(4);
        let outcome = Simulation::new(SimConfig::new(6), &trace)
            .run(&mut Fifo::new())
            .unwrap();
        assert!((outcome.mean_copies_per_task() - 1.0).abs() < 1e-12);
        assert_eq!(outcome.records().len(), 20);
    }

    #[test]
    fn reduce_tasks_launch_after_map_completion_under_contention() {
        // One machine: the ready set must re-admit the job when its Map phase
        // completes so the gated reduce task still launches.
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[10.0, 10.0])
            .reduce_tasks_from_workloads(&[5.0])
            .build()])
        .unwrap();
        let outcome = Simulation::new(SimConfig::new(1), &trace)
            .run(&mut Fifo::new())
            .unwrap();
        assert_eq!(outcome.record(JobId::new(0)).unwrap().completion, 25);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Fifo::new().name(), "fifo");
    }
}
