//! FIFO job scheduling without speculation — Hadoop's original default.

use mapreduce_sim::{Action, ClusterState, Scheduler};
use mapreduce_workload::{Phase, TaskId};

/// First-in-first-out job order, one copy per task, no speculation.
///
/// Jobs are served strictly in arrival order; within a job, map tasks are
/// launched before reduce tasks and reduce tasks only start once the Map
/// phase has completed.
#[derive(Debug, Default, Clone)]
pub struct Fifo {
    _private: (),
}

impl Fifo {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Fifo::default()
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut budget = state.available_machines();
        let mut actions = Vec::new();
        if budget == 0 {
            return actions;
        }
        // The engine maintains the alive set in arrival order incrementally;
        // no per-wakeup sort.
        for job in state.alive_jobs_by_arrival() {
            for phase in [Phase::Map, Phase::Reduce] {
                if phase == Phase::Reduce && !job.map_phase_complete() {
                    continue;
                }
                for &index in job.unscheduled_indices(phase) {
                    if budget == 0 {
                        return actions;
                    }
                    actions.push(Action::Launch {
                        task: TaskId::new(job.id(), phase, index),
                        copies: 1,
                    });
                    budget -= 1;
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{JobId, JobSpecBuilder, Trace, WorkloadBuilder};

    #[test]
    fn earlier_jobs_finish_first_under_contention() {
        let first = JobSpecBuilder::new(JobId::new(0))
            .arrival(0)
            .map_tasks_from_workloads(&[30.0; 4])
            .build();
        let second = JobSpecBuilder::new(JobId::new(1))
            .arrival(1)
            .map_tasks_from_workloads(&[30.0; 4])
            .build();
        let trace = Trace::new(vec![first, second]).unwrap();
        let outcome = Simulation::new(SimConfig::new(2), &trace)
            .run(&mut Fifo::new())
            .unwrap();
        assert!(
            outcome.record(JobId::new(0)).unwrap().completion
                < outcome.record(JobId::new(1)).unwrap().completion
        );
    }

    #[test]
    fn never_speculates() {
        let trace = WorkloadBuilder::new().num_jobs(20).build(4);
        let outcome = Simulation::new(SimConfig::new(6), &trace)
            .run(&mut Fifo::new())
            .unwrap();
        assert!((outcome.mean_copies_per_task() - 1.0).abs() < 1e-12);
        assert_eq!(outcome.records().len(), 20);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Fifo::new().name(), "fifo");
    }
}
