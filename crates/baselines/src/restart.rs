//! Kill-and-restart speculative execution — the cancellation-heavy baseline.
//!
//! Where Mantri runs a *duplicate* next to a detected straggler and lets
//! first-copy-wins settle the race, the restart strategy (the classic
//! straggler response analysed by the replication/restart literature in
//! PAPERS.md) **kills** the straggling copy and relaunches the task from
//! scratch: progress is discarded in exchange for a fresh draw from the
//! workload distribution, and no extra machine is ever consumed — each
//! restart is a [`Action::CancelCopies`] immediately followed by an
//! [`Action::Launch`] that reuses the machine the cancellation freed.
//!
//! In this codebase the scheduler doubles as the adversarial workout for the
//! engine's cancellation path: every restart exercises
//! [`mapreduce_sim::EventQueue::retract`] (the queued finish event of the
//! killed copy), the running-by-finish re-keying and the scratch-buffer
//! cancellation pass — under randomized workloads via the golden-equivalence
//! suite, which pins [`Restart`] against the scan-based
//! [`crate::reference::ReferenceRestart`] bit-for-bit.

use crate::fair::{fair_fill_alive_into, FairFillScratch};
use mapreduce_sim::{Action, ClusterState, IndexDemands, JobState, Scheduler, Slot};
use mapreduce_workload::{Phase, TaskId};
use std::collections::HashMap;

/// Configuration of the [`Restart`] baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartConfig {
    /// A task is killed and relaunched when `t_rem > threshold_factor ·
    /// t_new`. Restarting forfeits progress, so the default is more
    /// conservative than Mantri's duplicate threshold.
    pub threshold_factor: f64,
    /// Minimum elapsed running time (slots) before a task may be judged a
    /// straggler.
    pub min_elapsed_for_detection: Slot,
    /// How often (in slots) the detector re-examines running tasks.
    pub detection_interval: Slot,
    /// Maximum restarts per task; prevents kill-loops on tasks whose every
    /// draw is long (or whose job has no resampling distribution).
    pub max_restarts_per_task: u32,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            threshold_factor: 3.0,
            min_elapsed_for_detection: 30,
            detection_interval: 5,
            max_restarts_per_task: 3,
        }
    }
}

impl RestartConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if the threshold is not positive or the detection interval is
    /// zero.
    pub fn validate(&self) {
        assert!(
            self.threshold_factor > 0.0,
            "threshold factor must be positive"
        );
        assert!(
            self.detection_interval >= 1,
            "detection interval must be >= 1"
        );
    }
}

/// The kill-and-restart baseline.
#[derive(Debug, Clone)]
pub struct Restart {
    config: RestartConfig,
    /// Restarts issued per task so far.
    restarts: HashMap<TaskId, u32>,
    /// Pooled fair-fill buffers (the detector wakes every few slots).
    fill_scratch: FairFillScratch,
    /// Pooled straggler-candidate buffer.
    candidates: Vec<(Slot, TaskId)>,
}

impl Restart {
    /// Creates the scheduler with default parameters.
    pub fn new() -> Self {
        Self::with_config(RestartConfig::default())
    }

    /// Creates the scheduler with a custom configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn with_config(config: RestartConfig) -> Self {
        config.validate();
        Restart {
            config,
            restarts: HashMap::new(),
            fill_scratch: FairFillScratch::default(),
            candidates: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RestartConfig {
        &self.config
    }

    /// `t_new` estimate, identical to Mantri's: mean completed duration of
    /// the phase, phase a-priori mean before anything completed. `O(1)` via
    /// the engine aggregates.
    fn estimate_t_new(job: &JobState, phase: Phase) -> f64 {
        job.mean_completed_duration(phase)
            .unwrap_or_else(|| job.spec().stats(phase).mean)
    }

    /// Collects `(t_rem, task)` restart candidates of one job from the tail
    /// of the running-by-finish order (`O(log running + stragglers)`).
    fn straggler_candidates(
        &self,
        job: &JobState,
        copies: &mapreduce_sim::CopyArena,
        now: Slot,
        candidates: &mut Vec<(Slot, TaskId)>,
    ) {
        for phase in [Phase::Map, Phase::Reduce] {
            let entries = job.running_by_finish(phase);
            if entries.is_empty() {
                continue;
            }
            let t_new = Self::estimate_t_new(job, phase);
            let start = entries.partition_point(|&(finish, _)| {
                finish.saturating_sub(now) as f64 <= self.config.threshold_factor * t_new
            });
            for &(finish, index) in &entries[start..] {
                let Some(task) = job.task(phase, index) else {
                    continue;
                };
                if task.oldest_active_elapsed(copies, now) < self.config.min_elapsed_for_detection {
                    continue;
                }
                let id = task.id();
                if self.restarts.get(&id).copied().unwrap_or(0) >= self.config.max_restarts_per_task
                {
                    continue;
                }
                candidates.push((finish - now, id));
            }
        }
    }
}

impl Default for Restart {
    fn default() -> Self {
        Restart::new()
    }
}

impl Scheduler for Restart {
    fn name(&self) -> &str {
        "restart"
    }

    fn wakeup_interval(&self) -> Option<Slot> {
        Some(self.config.detection_interval)
    }

    fn index_demands(&self) -> IndexDemands {
        IndexDemands {
            finish_index: true,
            ..IndexDemands::default()
        }
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        self.schedule_into(state, &mut actions);
        actions
    }

    fn schedule_into(&mut self, state: &ClusterState<'_>, actions: &mut Vec<Action>) {
        // 1. Regular work via equal-share fair scheduling, like the other
        //    detection-based baselines. Fill buffers are pooled in `self`.
        let budget = state.available_machines();
        if budget > 0 && state.total_unscheduled_tasks() > 0 {
            fair_fill_alive_into(state, budget, false, &mut self.fill_scratch, actions);
        }

        // 2. Kill-and-restart detected stragglers, worst (largest remaining
        //    time) first. Restarts are machine-neutral — the launch reuses
        //    the machine its cancellation frees — so they are not limited by
        //    the available-machine budget. The candidate buffer is pooled;
        //    the sort must stay stable (ties keep job-id order).
        let mut candidates = std::mem::take(&mut self.candidates);
        candidates.clear();
        for job in state.alive_jobs() {
            self.straggler_candidates(job, state.copies(), state.now(), &mut candidates);
        }
        candidates.sort_by_key(|&(t_rem, _)| std::cmp::Reverse(t_rem));
        for &(_, task) in &candidates {
            *self.restarts.entry(task).or_insert(0) += 1;
            actions.push(Action::CancelCopies { task, keep: 0 });
            actions.push(Action::Launch { task, copies: 1 });
        }
        self.candidates = candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::{
        DurationDistribution, JobId, JobSpecBuilder, PhaseStats, Trace, WorkloadBuilder,
    };

    #[test]
    fn completes_ordinary_workloads() {
        let trace = WorkloadBuilder::new()
            .num_jobs(25)
            .map_tasks_per_job(1, 6)
            .reduce_tasks_per_job(0, 2)
            .build(8);
        let outcome = Simulation::new(SimConfig::new(8).with_seed(1), &trace)
            .run(&mut Restart::new())
            .unwrap();
        assert_eq!(outcome.records().len(), 25);
    }

    #[test]
    fn restarts_a_clear_straggler_without_extra_machines() {
        // A 1-machine cluster: Mantri-style duplication is impossible (no
        // spare machine), but kill-and-restart still rescues the straggler
        // because the relaunch reuses the freed machine.
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[2000.0])
            .map_stats(PhaseStats::new(20.0, 5.0))
            .map_distribution(DurationDistribution::Deterministic { value: 20.0 })
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(1).with_seed(2), &trace)
            .run(&mut Restart::new())
            .unwrap();
        let record = outcome.record(JobId::new(0)).unwrap();
        assert!(
            record.completion < 200,
            "straggler not restarted: completion {}",
            record.completion
        );
        // The restart shows up as an extra launched copy, but never two
        // active at once on the single machine.
        assert!(record.copies_launched >= 2);
        assert!(outcome.busy_machine_slots <= outcome.makespan);
    }

    #[test]
    fn restart_cap_prevents_kill_loops() {
        // No resampling distribution: every relaunch draws the same long
        // workload, so only the cap lets the task ever finish.
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[500.0])
            .map_stats(PhaseStats::new(20.0, 5.0))
            .build();
        let trace = Trace::new(vec![job]).unwrap();
        let outcome = Simulation::new(SimConfig::new(2).with_seed(3), &trace)
            .run(&mut Restart::new())
            .unwrap();
        let record = outcome.record(JobId::new(0)).unwrap();
        // Original + at most max_restarts_per_task relaunches.
        assert!(record.copies_launched <= 1 + 3);
        // The final attempt ran its full 500 slots.
        assert!(record.completion >= 500);
    }

    #[test]
    fn config_validation() {
        assert!(std::panic::catch_unwind(|| {
            Restart::with_config(RestartConfig {
                threshold_factor: 0.0,
                ..RestartConfig::default()
            })
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            Restart::with_config(RestartConfig {
                detection_interval: 0,
                ..RestartConfig::default()
            })
        })
        .is_err());
        assert_eq!(Restart::new().name(), "restart");
        assert_eq!(Restart::default().wakeup_interval(), Some(5));
        assert!(Restart::new().index_demands().finish_index);
    }
}
