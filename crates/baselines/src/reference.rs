//! Frozen pre-optimization reference implementations of the baselines.
//!
//! These are verbatim copies of Mantri, LATE, Fair, FIFO and SCA as they
//! existed before the incremental-state optimization (PR 2): every decision
//! re-scans the full task vectors, re-sorts the alive jobs, and re-derives
//! every estimate (`t_new`, progress rates, remaining times) from scratch.
//! They deliberately touch **none** of the engine's incremental indices (no
//! free-lists, no running-by-finish order, no completed-duration aggregates),
//! so running one exercises the naive path end to end.
//!
//! Each reference reports the same [`Scheduler::name`] as its optimized
//! counterpart, so the golden-equivalence tests can assert full `SimOutcome`
//! equality on randomized workloads.
//!
//! Do not "improve" this module; its value is that it does not change. (The
//! only edits since freezing are mechanical: the copy-storage refactor moved
//! the per-copy task queries behind a `&CopyArena` parameter. The decision
//! logic is untouched.)

use crate::late::LateConfig;
use crate::mantri::MantriConfig;
use crate::sca::ScaConfig;
use mapreduce_sim::{
    Action, ClusterState, CopyArena, JobState, ParetoSpeedup, Scheduler, Slot, SpeedupFunction,
    TaskState, TaskStatus,
};
use mapreduce_workload::Phase;

/// Unscheduled tasks of a phase by scanning the full task vector, in index
/// order — the pre-free-list enumeration.
fn scan_unscheduled<'a>(
    job: &'a JobState,
    phase: Phase,
) -> impl Iterator<Item = &'a TaskState> + 'a {
    job.tasks(phase).iter().filter(|t| t.is_unscheduled())
}

/// Running (scheduled, unfinished) tasks of a phase by scanning the full task
/// vector, in index order.
fn scan_running<'a>(job: &'a JobState, phase: Phase) -> impl Iterator<Item = &'a TaskState> + 'a {
    job.tasks(phase)
        .iter()
        .filter(|t| t.status() == TaskStatus::Scheduled)
}

/// The pre-optimization scan-based fair fill: picks the least-served job by a
/// full scan per granted machine and collects the unscheduled task ids of
/// every job up front.
fn reference_fill(jobs: &[&JobState], mut budget: usize, weighted: bool) -> Vec<Action> {
    let mut actions = Vec::new();
    if budget == 0 || jobs.is_empty() {
        return actions;
    }
    struct FillSlot<'a> {
        job: &'a JobState,
        occupied: usize,
        map_cursor: usize,
        reduce_cursor: usize,
    }
    let mut slots: Vec<FillSlot<'_>> = jobs
        .iter()
        .map(|j| FillSlot {
            job: j,
            occupied: j.active_copies(),
            map_cursor: 0,
            reduce_cursor: 0,
        })
        .collect();

    let unscheduled: Vec<(Vec<_>, Vec<_>)> = jobs
        .iter()
        .map(|j| {
            let maps: Vec<_> = scan_unscheduled(j, Phase::Map).map(|t| t.id()).collect();
            let reduces: Vec<_> = if j.map_phase_complete() {
                scan_unscheduled(j, Phase::Reduce).map(|t| t.id()).collect()
            } else {
                Vec::new()
            };
            (maps, reduces)
        })
        .collect();

    while budget > 0 {
        let mut best: Option<(f64, usize)> = None;
        for (idx, slot) in slots.iter().enumerate() {
            let (maps, reduces) = &unscheduled[idx];
            let has_work = slot.map_cursor < maps.len() || slot.reduce_cursor < reduces.len();
            if !has_work {
                continue;
            }
            let weight = if weighted { slot.job.weight() } else { 1.0 };
            let ratio = slot.occupied as f64 / weight;
            match best {
                Some((best_ratio, _)) if ratio >= best_ratio => {}
                _ => best = Some((ratio, idx)),
            }
        }
        let Some((_, idx)) = best else { break };
        let (maps, reduces) = &unscheduled[idx];
        let slot = &mut slots[idx];
        let task = if slot.map_cursor < maps.len() {
            let t = maps[slot.map_cursor];
            slot.map_cursor += 1;
            t
        } else {
            let t = reduces[slot.reduce_cursor];
            slot.reduce_cursor += 1;
            t
        };
        actions.push(Action::Launch { task, copies: 1 });
        slot.occupied += 1;
        budget -= 1;
    }
    actions
}

/// Pre-optimization weighted fair scheduler.
#[derive(Debug, Default, Clone)]
pub struct ReferenceFair {
    _private: (),
}

impl ReferenceFair {
    /// Creates the reference scheduler.
    pub fn new() -> Self {
        ReferenceFair::default()
    }
}

impl Scheduler for ReferenceFair {
    fn name(&self) -> &str {
        "fair"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let jobs: Vec<&JobState> = state.alive_jobs().collect();
        reference_fill(&jobs, state.available_machines(), true)
    }
}

/// Pre-optimization FIFO: re-sorts the alive jobs by `(arrival, id)` on every
/// call and scans for unscheduled tasks.
#[derive(Debug, Default, Clone)]
pub struct ReferenceFifo {
    _private: (),
}

impl ReferenceFifo {
    /// Creates the reference scheduler.
    pub fn new() -> Self {
        ReferenceFifo::default()
    }
}

impl Scheduler for ReferenceFifo {
    fn name(&self) -> &str {
        "fifo"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut budget = state.available_machines();
        let mut actions = Vec::new();
        if budget == 0 {
            return actions;
        }
        let mut jobs: Vec<_> = state.alive_jobs().collect();
        jobs.sort_by_key(|j| (j.arrival(), j.id()));
        for job in jobs {
            for phase in [Phase::Map, Phase::Reduce] {
                if phase == Phase::Reduce && !job.map_phase_complete() {
                    continue;
                }
                for task in scan_unscheduled(job, phase) {
                    if budget == 0 {
                        return actions;
                    }
                    actions.push(Action::Launch {
                        task: task.id(),
                        copies: 1,
                    });
                    budget -= 1;
                }
            }
        }
        actions
    }
}

/// Pre-optimization Mantri: per wakeup, re-derives `t_new` by scanning every
/// task of every phase and re-examines every running task of every alive job.
#[derive(Debug, Clone)]
pub struct ReferenceMantri {
    config: MantriConfig,
}

impl ReferenceMantri {
    /// Creates reference Mantri with the published default parameters.
    pub fn new() -> Self {
        Self::with_config(MantriConfig::default())
    }

    /// Creates reference Mantri with a custom configuration.
    pub fn with_config(config: MantriConfig) -> Self {
        config.validate();
        ReferenceMantri { config }
    }

    fn estimate_t_new(job: &JobState, phase: Phase) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for task in job.tasks(phase) {
            if let (Some(first), Some(done)) = (task.first_launched_at(), task.finished_at()) {
                sum += done.saturating_sub(first) as f64;
                count += 1;
            }
        }
        if count > 0 {
            sum / count as f64
        } else {
            job.spec().stats(phase).mean
        }
    }

    fn straggler_candidates(
        &self,
        job: &JobState,
        copies: &CopyArena,
        now: Slot,
    ) -> Vec<(Slot, Action)> {
        let mut candidates = Vec::new();
        for phase in [Phase::Map, Phase::Reduce] {
            let t_new = Self::estimate_t_new(job, phase);
            for task in scan_running(job, phase) {
                if !self.is_straggler(task, copies, t_new, now) {
                    continue;
                }
                let t_rem = task.min_remaining(copies, now).unwrap_or(0);
                candidates.push((
                    t_rem,
                    Action::Launch {
                        task: task.id(),
                        copies: 1,
                    },
                ));
            }
        }
        candidates
    }

    fn is_straggler(&self, task: &TaskState, copies: &CopyArena, t_new: f64, now: Slot) -> bool {
        if task.active_copies() >= self.config.max_copies_per_task {
            return false;
        }
        if task.oldest_active_elapsed(copies, now) < self.config.min_elapsed_for_detection {
            return false;
        }
        let Some(t_rem) = task.min_remaining(copies, now) else {
            return false;
        };
        t_rem as f64 > self.config.threshold_factor * t_new
    }
}

impl Default for ReferenceMantri {
    fn default() -> Self {
        ReferenceMantri::new()
    }
}

impl Scheduler for ReferenceMantri {
    fn name(&self) -> &str {
        "mantri"
    }

    fn wakeup_interval(&self) -> Option<Slot> {
        Some(self.config.detection_interval)
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut budget = state.available_machines();
        if budget == 0 {
            return Vec::new();
        }
        let jobs: Vec<&JobState> = state.alive_jobs().collect();
        let mut actions = reference_fill(&jobs, budget, false);
        let launched = actions.len();
        budget -= launched.min(budget);
        if budget == 0 {
            return actions;
        }

        let mut candidates: Vec<(Slot, Action)> = Vec::new();
        for job in &jobs {
            candidates.extend(self.straggler_candidates(job, state.copies(), state.now()));
        }
        candidates.sort_by_key(|(t_rem, _)| std::cmp::Reverse(*t_rem));
        for (_, action) in candidates.into_iter().take(budget) {
            actions.push(action);
        }
        actions
    }
}

/// Pre-optimization LATE: re-examines every running task of every alive job
/// per wakeup, with `partial_cmp(..).unwrap_or(Equal)` sorts.
#[derive(Debug, Clone)]
pub struct ReferenceLate {
    config: LateConfig,
}

impl ReferenceLate {
    /// Creates reference LATE with its published default thresholds.
    pub fn new() -> Self {
        Self::with_config(LateConfig::default())
    }

    /// Creates reference LATE with a custom configuration.
    pub fn with_config(config: LateConfig) -> Self {
        config.validate();
        ReferenceLate { config }
    }
}

impl Default for ReferenceLate {
    fn default() -> Self {
        ReferenceLate::new()
    }
}

impl Scheduler for ReferenceLate {
    fn name(&self) -> &str {
        "late"
    }

    fn wakeup_interval(&self) -> Option<Slot> {
        Some(self.config.detection_interval)
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut budget = state.available_machines();
        if budget == 0 {
            return Vec::new();
        }
        let jobs: Vec<&JobState> = state.alive_jobs().collect();

        let mut actions = reference_fill(&jobs, budget, false);
        budget -= actions.len().min(budget);
        if budget == 0 {
            return actions;
        }

        let now = state.now();
        let copies = state.copies();
        let mut speculative_running = 0usize;
        let mut candidates: Vec<(f64, f64, Action)> = Vec::new();
        for job in &jobs {
            for phase in [Phase::Map, Phase::Reduce] {
                for task in scan_running(job, phase) {
                    if task.active_copies() >= 2 {
                        speculative_running += 1;
                        continue;
                    }
                    let elapsed = task.oldest_active_elapsed(copies, now);
                    if elapsed < self.config.min_elapsed_for_detection {
                        continue;
                    }
                    let progress = task.best_progress(copies, now);
                    let rate = progress / elapsed.max(1) as f64;
                    let est_left = if rate > 0.0 {
                        (1.0 - progress) / rate
                    } else {
                        f64::INFINITY
                    };
                    candidates.push((
                        rate,
                        est_left,
                        Action::Launch {
                            task: task.id(),
                            copies: 1,
                        },
                    ));
                }
            }
        }
        if candidates.is_empty() {
            return actions;
        }

        let mut rates: Vec<f64> = candidates.iter().map(|(rate, _, _)| *rate).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((rates.len() as f64 * self.config.slow_task_quantile).ceil() as usize)
            .clamp(1, rates.len())
            - 1;
        let threshold = rates[idx];

        let cap =
            ((state.total_machines() as f64 * self.config.speculative_cap).floor() as usize).max(1);
        let allowance = cap.saturating_sub(speculative_running).min(budget);

        let mut eligible: Vec<(f64, Action)> = candidates
            .into_iter()
            .filter(|(rate, _, _)| *rate <= threshold)
            .map(|(_, est, action)| (est, action))
            .collect();
        eligible.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for (_, action) in eligible.into_iter().take(allowance) {
            actions.push(action);
        }
        actions
    }
}

/// Scan-based reference of the kill-and-restart baseline: per wakeup it
/// re-derives `t_new` by scanning every task of the phase and re-examines
/// every running task of every alive job — no running-by-finish index, no
/// completed-duration aggregates. The golden-equivalence suite pins
/// [`crate::Restart`] against this implementation bit-for-bit, which gives
/// the engine's cancellation path (event retraction, scratch-buffer
/// cancellation, running-finish re-keying) adversarial randomized coverage.
#[derive(Debug, Clone)]
pub struct ReferenceRestart {
    config: crate::restart::RestartConfig,
    restarts: std::collections::HashMap<mapreduce_workload::TaskId, u32>,
}

impl ReferenceRestart {
    /// Creates the reference with default parameters.
    pub fn new() -> Self {
        Self::with_config(crate::restart::RestartConfig::default())
    }

    /// Creates the reference with a custom configuration.
    pub fn with_config(config: crate::restart::RestartConfig) -> Self {
        config.validate();
        ReferenceRestart {
            config,
            restarts: std::collections::HashMap::new(),
        }
    }

    fn estimate_t_new(job: &JobState, phase: Phase) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for task in job.tasks(phase) {
            if let (Some(first), Some(done)) = (task.first_launched_at(), task.finished_at()) {
                sum += done.saturating_sub(first) as f64;
                count += 1;
            }
        }
        if count > 0 {
            sum / count as f64
        } else {
            job.spec().stats(phase).mean
        }
    }
}

impl Default for ReferenceRestart {
    fn default() -> Self {
        ReferenceRestart::new()
    }
}

impl Scheduler for ReferenceRestart {
    fn name(&self) -> &str {
        "restart"
    }

    fn wakeup_interval(&self) -> Option<Slot> {
        Some(self.config.detection_interval)
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let copies = state.copies();
        let jobs: Vec<&JobState> = state.alive_jobs().collect();
        let mut actions = reference_fill(&jobs, state.available_machines(), false);

        let now = state.now();
        let mut candidates: Vec<(Slot, mapreduce_workload::TaskId)> = Vec::new();
        for job in &jobs {
            for phase in [Phase::Map, Phase::Reduce] {
                let t_new = Self::estimate_t_new(job, phase);
                for task in scan_running(job, phase) {
                    if task.oldest_active_elapsed(copies, now)
                        < self.config.min_elapsed_for_detection
                    {
                        continue;
                    }
                    let Some(t_rem) = task.min_remaining(copies, now) else {
                        continue;
                    };
                    if t_rem as f64 <= self.config.threshold_factor * t_new {
                        continue;
                    }
                    let id = task.id();
                    if self.restarts.get(&id).copied().unwrap_or(0)
                        >= self.config.max_restarts_per_task
                    {
                        continue;
                    }
                    candidates.push((t_rem, id));
                }
            }
        }
        candidates.sort_by_key(|&(t_rem, _)| std::cmp::Reverse(t_rem));
        for (_, task) in candidates {
            *self.restarts.entry(task).or_insert(0) += 1;
            actions.push(Action::CancelCopies { task, keep: 0 });
            actions.push(Action::Launch { task, copies: 1 });
        }
        actions
    }
}

/// Pre-optimization SCA: `partial_cmp` job ordering and task collection by
/// full scan.
#[derive(Debug, Clone)]
pub struct ReferenceSca {
    config: ScaConfig,
    speedup: ParetoSpeedup,
}

impl ReferenceSca {
    /// Creates reference SCA with default parameters.
    pub fn new() -> Self {
        Self::with_config(ScaConfig::default())
    }

    /// Creates reference SCA with a custom configuration.
    pub fn with_config(config: ScaConfig) -> Self {
        config.validate();
        ReferenceSca {
            speedup: ParetoSpeedup::new(config.speedup_alpha),
            config,
        }
    }

    fn marginal_gain(&self, weight: f64, phase_mean: f64, x: usize) -> f64 {
        let s_now = self.speedup.speedup(x as f64);
        let s_next = self.speedup.speedup((x + 1) as f64);
        weight * phase_mean * (1.0 / s_now - 1.0 / s_next)
    }
}

impl Default for ReferenceSca {
    fn default() -> Self {
        ReferenceSca::new()
    }
}

struct ReferenceAllocation<'a> {
    job: &'a JobState,
    phase: Phase,
    tasks: Vec<mapreduce_workload::TaskId>,
    copies_per_task: usize,
}

impl Scheduler for ReferenceSca {
    fn name(&self) -> &str {
        "sca"
    }

    fn schedule(&mut self, state: &ClusterState<'_>) -> Vec<Action> {
        let mut budget = state.available_machines();
        if budget == 0 {
            return Vec::new();
        }

        let mut jobs: Vec<&JobState> = state
            .alive_jobs()
            .filter(|j| j.total_unscheduled() > 0)
            .collect();
        jobs.sort_by(|a, b| {
            let pa = a.weight()
                / a.remaining_effective_workload(self.config.r)
                    .max(f64::MIN_POSITIVE);
            let pb = b.weight()
                / b.remaining_effective_workload(self.config.r)
                    .max(f64::MIN_POSITIVE);
            pb.partial_cmp(&pa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id().cmp(&b.id()))
        });

        let mut allocations: Vec<ReferenceAllocation<'_>> = Vec::new();
        for job in jobs {
            if budget == 0 {
                break;
            }
            let phase = if job.num_unscheduled(Phase::Map) > 0 {
                Phase::Map
            } else if job.map_phase_complete() && job.num_unscheduled(Phase::Reduce) > 0 {
                Phase::Reduce
            } else {
                continue;
            };
            let tasks: Vec<_> = scan_unscheduled(job, phase)
                .map(|t| t.id())
                .take(budget)
                .collect();
            if tasks.is_empty() {
                continue;
            }
            budget -= tasks.len();
            allocations.push(ReferenceAllocation {
                job,
                phase,
                tasks,
                copies_per_task: 1,
            });
        }

        loop {
            if budget == 0 {
                break;
            }
            let mut best: Option<(f64, usize)> = None;
            for (idx, alloc) in allocations.iter().enumerate() {
                if alloc.copies_per_task >= self.config.max_copies_per_task {
                    continue;
                }
                let cost = alloc.tasks.len();
                if cost == 0 || cost > budget {
                    continue;
                }
                let mean = alloc.job.spec().stats(alloc.phase).mean;
                let gain = self.marginal_gain(alloc.job.weight(), mean, alloc.copies_per_task)
                    / cost as f64;
                if gain <= 0.0 {
                    continue;
                }
                match best {
                    Some((best_gain, _)) if gain <= best_gain => {}
                    _ => best = Some((gain, idx)),
                }
            }
            let Some((_, idx)) = best else { break };
            budget -= allocations[idx].tasks.len();
            allocations[idx].copies_per_task += 1;
        }

        allocations
            .into_iter()
            .flat_map(|alloc| {
                alloc.tasks.into_iter().map(move |task| Action::Launch {
                    task,
                    copies: alloc.copies_per_task,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::WorkloadBuilder;

    #[test]
    fn references_report_the_optimized_names() {
        assert_eq!(
            ReferenceFair::new().name(),
            crate::FairScheduler::new().name()
        );
        assert_eq!(ReferenceFifo::new().name(), crate::Fifo::new().name());
        assert_eq!(ReferenceMantri::new().name(), crate::Mantri::new().name());
        assert_eq!(ReferenceLate::new().name(), crate::Late::new().name());
        assert_eq!(ReferenceSca::new().name(), crate::Sca::new().name());
        assert_eq!(
            ReferenceMantri::new().wakeup_interval(),
            crate::Mantri::new().wakeup_interval()
        );
        assert_eq!(
            ReferenceLate::new().wakeup_interval(),
            crate::Late::new().wakeup_interval()
        );
    }

    #[test]
    fn references_complete_workloads() {
        let trace = WorkloadBuilder::new()
            .num_jobs(15)
            .map_tasks_per_job(1, 4)
            .reduce_tasks_per_job(0, 2)
            .build(3);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(ReferenceFair::new()),
            Box::new(ReferenceFifo::new()),
            Box::new(ReferenceMantri::new()),
            Box::new(ReferenceLate::new()),
            Box::new(ReferenceSca::new()),
        ];
        for scheduler in &mut schedulers {
            let outcome = Simulation::new(SimConfig::new(8).with_seed(2), &trace)
                .run(scheduler.as_mut())
                .unwrap();
            assert_eq!(outcome.records().len(), 15);
        }
    }
}
