//! The persistent result cache: fingerprint → [`SimOutcome`], JSON lines on
//! disk plus an in-memory index.
//!
//! # Store format
//!
//! One entry per line, append-only:
//!
//! ```text
//! {"fingerprint":"4dfab2d8189ae363633735ebce2212c1","outcome":{...}}
//! ```
//!
//! Append-only means a crash mid-write corrupts at most the final line;
//! [`ResultCache::open`] skips lines that fail to parse (counting them in
//! [`ResultCache::skipped_lines`]) and later stores simply recompute and
//! re-append — a damaged cache degrades to a colder cache, never to a
//! panic. Re-stored fingerprints append a fresh line; the in-memory index
//! keeps the latest, and [`ResultCache::compact`] rewrites the file to one
//! line per live entry (dropping duplicates, corrupt lines and evicted
//! entries) — atomically, via a synced temporary file renamed over the
//! store, so a crash mid-compaction never truncates the cache. Deleting
//! the cache file is always safe: it only ever holds recomputable results.
//!
//! # Eviction
//!
//! An optional [`ResultCache::with_max_entries`] cap bounds the in-memory
//! index, evicting the oldest-inserted entries first. Evicted entries stay
//! on disk until the next `compact`, but are treated as misses.

use mapreduce_experiments::cache::{CacheStats, OutcomeCache, StatsCounters};
use mapreduce_sim::SimOutcome;
use mapreduce_support::hash::Fingerprint;
use mapreduce_support::json::{FromJson, JsonValue, ToJson};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// State behind the cache's mutex: the index, the insertion order (for
/// eviction) and the append handle.
#[derive(Debug)]
struct CacheInner {
    index: HashMap<Fingerprint, SimOutcome>,
    /// Insertion order of the live fingerprints; front = oldest.
    order: VecDeque<Fingerprint>,
    /// Append handle of the backing file (`None` for in-memory caches).
    file: Option<File>,
    /// Entries evicted over the lifetime of this handle.
    evicted: u64,
}

/// A persistent, thread-safe [`OutcomeCache`] backed by a JSON-lines file.
///
/// See the [module documentation](self) for the store format and the
/// recovery/eviction semantics.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    path: Option<PathBuf>,
    max_entries: usize,
    skipped_lines: usize,
    stats: StatsCounters,
}

/// Serializes one store line.
fn entry_line(fingerprint: Fingerprint, outcome: &SimOutcome) -> String {
    JsonValue::object([
        ("fingerprint", fingerprint.to_json()),
        ("outcome", outcome.to_json()),
    ])
    .to_compact_string()
}

/// Replaces `path` atomically: the content is written to a sibling
/// temporary file, synced, and renamed over the target. A crash at any
/// point leaves either the old file or the complete new one.
fn write_atomically(path: &Path, content: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(content.as_bytes())?;
        file.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // The store still holds its pre-rewrite content; don't leave
            // the orphaned temp file behind.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Parses one store line; `None` for anything malformed.
fn parse_line(line: &str) -> Option<(Fingerprint, SimOutcome)> {
    let value = JsonValue::parse(line).ok()?;
    let fingerprint = Fingerprint::from_json(value.get("fingerprint")?).ok()?;
    let outcome = SimOutcome::from_json(value.get("outcome")?).ok()?;
    Some((fingerprint, outcome))
}

impl ResultCache {
    /// An unbounded cache with no backing file (a [`MemoryCache`] with the
    /// service's eviction and compaction semantics).
    ///
    /// [`MemoryCache`]: mapreduce_experiments::MemoryCache
    pub fn in_memory() -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner {
                index: HashMap::new(),
                order: VecDeque::new(),
                file: None,
                evicted: 0,
            }),
            path: None,
            max_entries: usize::MAX,
            skipped_lines: 0,
            stats: StatsCounters::default(),
        }
    }

    /// Opens (or creates) a persistent cache at `path`, loading every intact
    /// entry into the index. Parent directories are created as needed.
    ///
    /// # Errors
    /// Returns an error if the file (or a parent directory) cannot be
    /// created or read. Malformed *content* is never an error: corrupt lines
    /// are counted in [`ResultCache::skipped_lines`] and skipped.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut index = HashMap::new();
        let mut order = VecDeque::new();
        let mut skipped = 0usize;
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match parse_line(&line) {
                    Some((fingerprint, outcome)) => {
                        // Later lines win (append-only updates).
                        if index.insert(fingerprint, outcome).is_none() {
                            order.push_back(fingerprint);
                        }
                    }
                    None => skipped += 1,
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(ResultCache {
            inner: Mutex::new(CacheInner {
                index,
                order,
                file: Some(file),
                evicted: 0,
            }),
            path: Some(path),
            max_entries: usize::MAX,
            skipped_lines: skipped,
            stats: StatsCounters::default(),
        })
    }

    /// Caps the in-memory index at `max_entries` live entries (oldest-first
    /// eviction), evicting immediately if already over.
    ///
    /// # Panics
    /// Panics if `max_entries` is zero.
    pub fn with_max_entries(self, max_entries: usize) -> Self {
        assert!(max_entries >= 1, "cache capacity must be at least 1");
        let cache = ResultCache {
            max_entries,
            ..self
        };
        {
            let mut inner = cache.inner.lock().expect("cache poisoned");
            Self::evict_over(&mut inner, max_entries);
        }
        cache
    }

    /// The backing file, if this cache is persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of live entries in the index.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").index.len()
    }

    /// Whether the index holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Corrupt lines skipped while loading the backing file.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Entries evicted by the capacity cap since this handle was opened.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("cache poisoned").evicted
    }

    fn evict_over(inner: &mut CacheInner, max_entries: usize) {
        while inner.index.len() > max_entries {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            if inner.index.remove(&oldest).is_some() {
                inner.evicted += 1;
            }
        }
    }

    /// Rewrites the backing file to exactly the live index (one line per
    /// entry, insertion order): drops duplicate lines from re-stores,
    /// corrupt lines, and entries evicted by the capacity cap. A no-op for
    /// in-memory caches.
    ///
    /// The rewrite is **atomic**: the new content goes to a sibling
    /// temporary file (synced to disk) and replaces the store via
    /// `rename`, so a crash mid-compaction leaves either the old file or
    /// the new one — never a truncated mixture. Appends from [`store`]
    /// remain crash-bounded by the line format instead: a torn final line
    /// is skipped (and recomputed) on the next open.
    ///
    /// [`store`]: OutcomeCache::store
    ///
    /// # Errors
    /// Returns an error if the file cannot be rewritten.
    pub fn compact(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut inner = self.inner.lock().expect("cache poisoned");
        let mut text = String::new();
        for fingerprint in &inner.order {
            if let Some(outcome) = inner.index.get(fingerprint) {
                text.push_str(&entry_line(*fingerprint, outcome));
                text.push('\n');
            }
        }
        // Close the old append handle before the rename so no further
        // appends land in the file being replaced.
        inner.file = None;
        write_atomically(path, &text)?;
        inner.file = Some(OpenOptions::new().append(true).open(path)?);
        Ok(())
    }
}

impl OutcomeCache for ResultCache {
    fn lookup(&self, fingerprint: Fingerprint) -> Option<SimOutcome> {
        let hit = self
            .inner
            .lock()
            .expect("cache poisoned")
            .index
            .get(&fingerprint)
            .cloned();
        self.stats.note_lookup(hit.is_some());
        hit
    }

    fn store(&self, fingerprint: Fingerprint, outcome: &SimOutcome) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(file) = &mut inner.file {
            // A failed append degrades to a colder cache on the next open;
            // the in-memory entry below still serves this process.
            let line = entry_line(fingerprint, outcome);
            if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
                eprintln!("result cache: could not append entry: {e}");
            }
        }
        if inner.index.insert(fingerprint, outcome.clone()).is_none() {
            inner.order.push_back(fingerprint);
        }
        Self::evict_over(&mut inner, self.max_entries);
        self.stats.note_store();
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str, makespan: u64) -> SimOutcome {
        SimOutcome::new(label.to_string(), 4, vec![], makespan, 9, 3, 7, 2, 2)
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mapreduce_result_cache_{tag}_{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn persistent_roundtrip_and_reload() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let fp = Fingerprint::of_bytes(b"cell-a");
        {
            let cache = ResultCache::open(&path).unwrap();
            assert!(cache.is_empty());
            assert!(cache.lookup(fp).is_none());
            cache.store(fp, &outcome("fifo", 11));
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.path(), Some(path.as_path()));
        }
        // A fresh handle reloads the entry from disk.
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.skipped_lines(), 0);
        assert_eq!(cache.lookup(fp), Some(outcome("fifo", 11)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let good = Fingerprint::of_bytes(b"good");
        {
            let cache = ResultCache::open(&path).unwrap();
            cache.store(good, &outcome("fifo", 5));
        }
        // Damage the file: garbage, a truncated JSON line, a wrong-schema
        // line, and a valid JSON line with an invalid fingerprint.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json at all\n");
        text.push_str("{\"fingerprint\":\"00\n");
        text.push_str("{\"something\":1}\n");
        text.push_str("{\"fingerprint\":\"zz\",\"outcome\":{}}\n");
        std::fs::write(&path, text).unwrap();

        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.skipped_lines(), 4);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(good), Some(outcome("fifo", 5)));

        // Compaction rewrites only the live entry; a re-open sees no junk.
        cache.compact().unwrap();
        let clean = ResultCache::open(&path).unwrap();
        assert_eq!(clean.skipped_lines(), 0);
        assert_eq!(clean.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restores_update_in_place_and_latest_line_wins() {
        let path = temp_path("restore");
        let _ = std::fs::remove_file(&path);
        let fp = Fingerprint::of_bytes(b"cell");
        {
            let cache = ResultCache::open(&path).unwrap();
            cache.store(fp, &outcome("v1", 1));
            cache.store(fp, &outcome("v2", 2));
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.lookup(fp), Some(outcome("v2", 2)));
        }
        // Both lines are on disk; the reload keeps the latest.
        let lines = std::fs::read_to_string(&path).unwrap();
        assert_eq!(lines.lines().count(), 2);
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.lookup(fp), Some(outcome("v2", 2)));
        cache.compact().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_recovers_by_skip_and_recompute() {
        // A crash mid-append leaves a torn final line. The reopen must keep
        // every complete entry, count exactly one skipped line, and let the
        // torn cell be recomputed and re-stored as if it were a cold miss.
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        let intact = Fingerprint::of_bytes(b"intact");
        let torn = Fingerprint::of_bytes(b"torn");
        {
            let cache = ResultCache::open(&path).unwrap();
            cache.store(intact, &outcome("fifo", 3));
            cache.store(torn, &outcome("srpt", 8));
        }
        // Chop the file mid-way through the final line.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();

        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.skipped_lines(), 1);
        assert_eq!(cache.lookup(intact), Some(outcome("fifo", 3)));
        assert!(cache.lookup(torn).is_none(), "torn entry reads as a miss");
        // The recompute path: store again, and a clean reopen sees both.
        cache.store(torn, &outcome("srpt", 8));
        cache.compact().unwrap();
        let clean = ResultCache::open(&path).unwrap();
        assert_eq!(clean.skipped_lines(), 0);
        assert_eq!(clean.len(), 2);
        assert_eq!(clean.lookup(torn), Some(outcome("srpt", 8)));
        // The atomic rewrite leaves no temp file behind.
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_is_atomic_under_concurrent_stores() {
        // Stores racing a compaction must never corrupt the file: every
        // line on disk afterwards is either parseable or the torn tail of
        // an append — and a reopen plus compact converges to the index.
        let path = temp_path("atomic");
        let _ = std::fs::remove_file(&path);
        let cache = ResultCache::open(&path).unwrap();
        for i in 0..16 {
            let fp = Fingerprint::of_bytes(format!("cell-{i}").as_bytes());
            cache.store(fp, &outcome("x", i));
            if i % 4 == 0 {
                cache.compact().unwrap();
            }
        }
        cache.compact().unwrap();
        let reopened = ResultCache::open(&path).unwrap();
        assert_eq!(reopened.skipped_lines(), 0);
        assert_eq!(reopened.len(), 16);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capacity_cap_evicts_oldest_first() {
        let cache = ResultCache::in_memory().with_max_entries(2);
        let fps: Vec<Fingerprint> = (0..3)
            .map(|i| Fingerprint::of_bytes(format!("cell-{i}").as_bytes()))
            .collect();
        for (i, fp) in fps.iter().enumerate() {
            cache.store(*fp, &outcome("x", i as u64));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evicted(), 1);
        assert!(cache.lookup(fps[0]).is_none(), "oldest entry evicted");
        assert!(cache.lookup(fps[1]).is_some());
        assert!(cache.lookup(fps[2]).is_some());
        // In-memory compaction is a no-op.
        cache.compact().unwrap();
        assert!(cache.path().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = ResultCache::in_memory().with_max_entries(0);
    }
}
