//! Experiment service: a content-addressed result cache and a multi-tenant
//! sweep server over the simulation engine.
//!
//! Figure sweeps are embarrassingly memoisable: every **cell** (scheduler ×
//! scenario × seed) is a pure function of its inputs, and the same cells
//! recur across figures (Fig. 4 and Fig. 5 run the identical comparison
//! sweep), across reruns, and across tenants sharing a cluster of
//! experiment machines. This crate turns that observation into a service:
//!
//! * [`cache::ResultCache`] — a persistent JSON-lines store mapping a cell's
//!   [`Fingerprint`] (FNV-1a-128 over the canonical cell description, see
//!   [`mapreduce_experiments::cell_fingerprint`]) to its full
//!   [`mapreduce_sim::SimOutcome`]. Loaded into an in-memory index at open;
//!   appended on every store; corrupt lines are skipped (and recomputed on
//!   demand), never fatal.
//! * [`service::SweepServer`] — the request runtime: a [`SweepRequest`]
//!   names a scenario and a scheduler line-up, the server fingerprints every
//!   cell, serves hits from the cache, **dedupes in-flight duplicates**, and
//!   fans the remaining misses out over the deterministic worker pool
//!   ([`mapreduce_support::par_map`], honouring `RAYON_NUM_THREADS`). The
//!   [`SweepResponse`] reports per-cell summaries plus hit/miss/dedupe
//!   counters — a warm rerun of a figure sweep reports
//!   [`SweepResponse::simulated`]` == 0`.
//! * [`protocol::serve_lines`] — a line-delimited JSON protocol over any
//!   reader/writer pair, exposed by the `serve` binary over stdin/stdout so
//!   sweeps can be driven by external tooling (one request per line, one
//!   response per line; malformed input yields an error line, never a
//!   crash).
//!
//! Because streaming workload sources keep the per-cell memory budget flat,
//! a single server process can interleave arbitrarily large sweeps from
//! multiple tenants; the cache makes repeated figure regeneration near-zero
//! simulation work. Cache hits are **bit-identical** to fresh runs — pinned
//! by the `server_cache` proptests against the golden scheduler suite.
//!
//! [`SweepRequest`]: service::SweepRequest
//! [`SweepResponse`]: service::SweepResponse
//! [`SweepResponse::simulated`]: service::SweepResponse::simulated

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod protocol;
pub mod service;

pub use cache::ResultCache;
pub use mapreduce_support::hash::Fingerprint;
pub use protocol::{
    metrics_exposition, serve_lines, serve_lines_with, Request, ServeOptions, ServeStats,
};
pub use service::{
    CdfRequest, CellResult, SchedulerCdf, SweepRequest, SweepResponse, SweepServer, MAX_CDF_POINTS,
};
