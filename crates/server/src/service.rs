//! The sweep service: requests, responses, and the cache-aware worker-pool
//! runtime.
//!
//! A [`SweepRequest`] names a [`Scenario`] and a scheduler line-up — exactly
//! the shape of one figure sweep. [`SweepServer::submit`] expands it into
//! cells (scheduler × seed), fingerprints each cell, and resolves them in
//! three tiers:
//!
//! 1. **cache hits** — served straight from the [`ResultCache`];
//! 2. **in-flight duplicates** — cells sharing a fingerprint with another
//!    miss in the same request are simulated once and fanned back out;
//! 3. **misses** — simulated on the deterministic worker pool
//!    ([`mapreduce_support::par_map`], bit-identical under any thread
//!    count) and stored in the cache.
//!
//! The per-cell outcome is identical across all three tiers, so a
//! [`SweepResponse`] is bit-for-bit the same whether it was computed cold or
//! served warm — the counters ([`SweepResponse::cache_hits`],
//! [`SweepResponse::simulated`], …) are the only difference, and they are
//! exactly how the acceptance tests verify that a warm figure rerun
//! performs zero cell simulations.

use crate::cache::ResultCache;
use mapreduce_experiments::cache::OutcomeCache;
use mapreduce_experiments::runner::average_summary;
use mapreduce_experiments::{cell_fingerprint, runner::run_cells, Scenario, SchedulerKind};
use mapreduce_metrics::{fold_run_telemetry, FlowtimeSummary, MetricsRegistry};
use mapreduce_sim::SimOutcome;
use mapreduce_support::hash::Fingerprint;
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One sweep: a scenario and the schedulers to run over it. The request's
/// cells are the cross product `schedulers × scenario.seeds`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// The workload/cluster/seeds description shared by every cell.
    pub scenario: Scenario,
    /// The scheduler line-up; one summary row per entry in the response.
    pub schedulers: Vec<SchedulerKind>,
}

impl SweepRequest {
    /// Builds a request.
    pub fn new(scenario: Scenario, schedulers: Vec<SchedulerKind>) -> Self {
        SweepRequest {
            scenario,
            schedulers,
        }
    }

    /// Number of cells this request expands into.
    pub fn num_cells(&self) -> usize {
        self.schedulers.len() * self.scenario.seeds.len()
    }

    /// Rejects degenerate requests that cannot produce a meaningful sweep —
    /// the protocol layer answers these with an error line instead of
    /// letting them reach the simulation's assertions.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.schedulers.is_empty() {
            return Err("request needs at least one scheduler".to_string());
        }
        if self.scenario.seeds.is_empty() {
            return Err("scenario needs at least one seed".to_string());
        }
        if self.scenario.machines == 0 {
            return Err("scenario needs at least one machine".to_string());
        }
        if self.scenario.profile.num_jobs == 0 {
            return Err("scenario profile needs at least one job".to_string());
        }
        if self.scenario.profile.classes.is_empty() {
            return Err("scenario profile needs at least one job class".to_string());
        }
        Ok(())
    }

    /// The cells in canonical order (scheduler-major, seeds in scenario
    /// order), each with its fingerprint.
    fn cells(&self) -> Vec<(SchedulerKind, u64, Fingerprint)> {
        let mut cells = Vec::with_capacity(self.num_cells());
        for &kind in &self.schedulers {
            for &seed in &self.scenario.seeds {
                cells.push((kind, seed, cell_fingerprint(kind, &self.scenario, seed)));
            }
        }
        cells
    }
}

impl ToJson for SweepRequest {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scenario", self.scenario.to_json()),
            ("schedulers", self.schedulers.to_json()),
        ])
    }
}

impl FromJson for SweepRequest {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SweepRequest {
            scenario: Scenario::from_json(value.field("scenario")?)?,
            schedulers: Vec::from_json(value.field("schedulers")?)?,
        })
    }
}

/// The outcome of one cell, as reported to the requester.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The scheduler of this cell.
    pub scheduler: SchedulerKind,
    /// The seed of this cell.
    pub seed: u64,
    /// The cell's content fingerprint (the cache key).
    pub fingerprint: Fingerprint,
    /// Whether the outcome was served from the cache (`false` for cells
    /// simulated by this request, including the representative of a
    /// deduplicated group).
    pub from_cache: bool,
    /// Flowtime summary of the cell's outcome.
    pub summary: FlowtimeSummary,
}

impl ToJson for CellResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheduler", self.scheduler.to_json()),
            ("seed", self.seed.to_json()),
            ("fingerprint", self.fingerprint.to_json()),
            ("from_cache", self.from_cache.to_json()),
            ("summary", self.summary.to_json()),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(CellResult {
            scheduler: SchedulerKind::from_json(value.field("scheduler")?)?,
            seed: u64::from_json(value.field("seed")?)?,
            fingerprint: Fingerprint::from_json(value.field("fingerprint")?)?,
            from_cache: bool::from_json(value.field("from_cache")?)?,
            summary: FlowtimeSummary::from_json(value.field("summary")?)?,
        })
    }
}

/// The result of one sweep: per-cell summaries, per-scheduler averages, and
/// the cache accounting.
#[derive(Debug, Clone)]
pub struct SweepResponse {
    /// One entry per cell, in the request's canonical order
    /// (scheduler-major, seeds in scenario order).
    pub cells: Vec<CellResult>,
    /// One seed-averaged summary per requested scheduler, in request order
    /// (the rows a figure renders).
    pub averages: Vec<FlowtimeSummary>,
    /// Cells served from the result cache.
    pub cache_hits: usize,
    /// Cells not found in the cache (`simulated + deduped_in_flight`).
    pub cache_misses: usize,
    /// Cells actually simulated by this request — **zero** for a fully warm
    /// sweep; this is the acceptance counter for "a warm rerun performs no
    /// cell simulations".
    pub simulated: usize,
    /// Miss cells that shared a fingerprint with another miss in the same
    /// request and reused its simulation (in-flight deduplication).
    pub deduped_in_flight: usize,
    /// Wall-clock nanoseconds [`SweepServer::submit`] spent resolving this
    /// request (lookup + simulation + assembly). Timing telemetry only:
    /// **excluded from equality** — like [`mapreduce_sim::RunTelemetry`] on
    /// `SimOutcome`, so "cold ≡ warm" response comparisons stay exact —
    /// and absent in pre-telemetry JSON (parses as 0).
    pub elapsed_ns: u64,
}

/// Everything except the wall-clock `elapsed_ns`, which is timing
/// telemetry rather than sweep content — this is the single equality
/// carve-out that keeps cold-vs-warm bit-identity assertions meaningful.
impl PartialEq for SweepResponse {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
            && self.averages == other.averages
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
            && self.simulated == other.simulated
            && self.deduped_in_flight == other.deduped_in_flight
    }
}

impl ToJson for SweepResponse {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("cells", self.cells.to_json()),
            ("averages", self.averages.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("simulated", self.simulated.to_json()),
            ("deduped_in_flight", self.deduped_in_flight.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ])
    }
}

impl FromJson for SweepResponse {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SweepResponse {
            cells: Vec::from_json(value.field("cells")?)?,
            averages: Vec::from_json(value.field("averages")?)?,
            cache_hits: usize::from_json(value.field("cache_hits")?)?,
            cache_misses: usize::from_json(value.field("cache_misses")?)?,
            simulated: usize::from_json(value.field("simulated")?)?,
            deduped_in_flight: usize::from_json(value.field("deduped_in_flight")?)?,
            // Absent in responses serialized before the telemetry subsystem.
            elapsed_ns: match value.get("elapsed_ns") {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
        })
    }
}

/// The long-running service runtime: one shared [`ResultCache`], any number
/// of sequential [`SweepServer::submit`] calls (the line protocol in
/// [`crate::protocol`] feeds it one request per line).
#[derive(Debug)]
pub struct SweepServer {
    cache: ResultCache,
    /// When this server instance was built — the origin of the `stats`
    /// uptime report.
    started: Instant,
    /// Sweep requests resolved by [`SweepServer::submit`] over the server's
    /// lifetime (hits-only sweeps included).
    requests_served: AtomicU64,
    /// Cells actually simulated (cache misses after in-flight dedup) over
    /// the server's lifetime — the denominator of "how much work did the
    /// cache save" alongside the cache's own hit counters.
    cells_simulated_total: AtomicU64,
    /// Engine telemetry ([`mapreduce_sim::RunTelemetry`]) of every cell this
    /// server simulated, folded into one shard-mergeable registry — the
    /// `stats` response surfaces it verbatim.
    metrics: Mutex<MetricsRegistry>,
}

impl SweepServer {
    /// Builds a server around a cache (persistent or in-memory).
    pub fn new(cache: ResultCache) -> Self {
        SweepServer {
            cache,
            started: Instant::now(),
            requests_served: AtomicU64::new(0),
            cells_simulated_total: AtomicU64::new(0),
            metrics: Mutex::new(MetricsRegistry::new()),
        }
    }

    /// The server's cache (e.g. for stats reporting or compaction).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Nanoseconds since this server instance was built.
    pub fn uptime_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Sweep requests resolved over the server's lifetime.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Cells simulated (not served from cache or deduped) over the server's
    /// lifetime.
    pub fn cells_simulated_total(&self) -> u64 {
        self.cells_simulated_total.load(Ordering::Relaxed)
    }

    /// A snapshot of the engine-telemetry registry folded over every cell
    /// this server simulated.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.metrics
            .lock()
            .expect("metrics registry poisoned")
            .clone()
    }

    /// Resolves one sweep: cache hits first, then in-flight deduplication,
    /// then the worker pool for genuine misses (which are stored back into
    /// the cache).
    ///
    /// # Panics
    /// Panics if a cell's simulation fails (stalled scheduler, horizon
    /// exceeded) — like the experiment harness, the service treats that as a
    /// bug in the scheduler under test, not a recoverable condition.
    pub fn submit(&self, request: &SweepRequest) -> SweepResponse {
        let started = Instant::now();
        let cells = request.cells();

        // Tier 1: cache lookups.
        let mut outcomes: Vec<Option<SimOutcome>> = cells
            .iter()
            .map(|&(_, _, fingerprint)| self.cache.lookup(fingerprint))
            .collect();
        let cache_hits = outcomes.iter().filter(|o| o.is_some()).count();

        // Tier 2: group the misses by fingerprint; the first occurrence is
        // the representative that will be simulated.
        let mut representatives: Vec<usize> = Vec::new();
        let mut by_fingerprint: HashMap<Fingerprint, usize> = HashMap::new();
        let mut deduped_in_flight = 0usize;
        for (i, &(_, _, fingerprint)) in cells.iter().enumerate() {
            if outcomes[i].is_some() {
                continue;
            }
            match by_fingerprint.entry(fingerprint) {
                std::collections::hash_map::Entry::Occupied(_) => deduped_in_flight += 1,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(representatives.len());
                    representatives.push(i);
                }
            }
        }

        // Tier 3: simulate the representatives on the worker pool, in the
        // deterministic order-preserving fan-out (a Google CSV workload is
        // converted once and shared across cells).
        let miss_cells: Vec<(SchedulerKind, u64)> = representatives
            .iter()
            .map(|&cell_index| {
                let (kind, seed, _) = cells[cell_index];
                (kind, seed)
            })
            .collect();
        let computed: Vec<SimOutcome> = run_cells(&request.scenario, &miss_cells);
        for (&cell_index, outcome) in representatives.iter().zip(&computed) {
            let (_, _, fingerprint) = cells[cell_index];
            self.cache.store(fingerprint, outcome);
        }
        if !computed.is_empty() {
            let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
            for outcome in &computed {
                fold_run_telemetry(&mut metrics, &outcome.telemetry);
            }
        }

        // Fan results back out to every miss cell.
        for (i, &(_, _, fingerprint)) in cells.iter().enumerate() {
            if outcomes[i].is_none() {
                let rep = by_fingerprint[&fingerprint];
                outcomes[i] = Some(computed[rep].clone());
            }
        }

        // Assemble per-cell summaries and per-scheduler averages.
        let outcomes: Vec<SimOutcome> = outcomes.into_iter().map(|o| o.expect("filled")).collect();
        let cell_results: Vec<CellResult> = cells
            .iter()
            .zip(&outcomes)
            .map(|(&(scheduler, seed, fingerprint), outcome)| CellResult {
                scheduler,
                seed,
                fingerprint,
                // A cell is "from cache" iff it was resolved in tier 1:
                // tier-1 fingerprints never enter by_fingerprint, miss cells
                // (representatives and deduped alike) always do.
                from_cache: !by_fingerprint.contains_key(&fingerprint),
                summary: FlowtimeSummary::from_outcome(outcome),
            })
            .collect();
        let seeds = request.scenario.seeds.len();
        let averages: Vec<FlowtimeSummary> = request
            .schedulers
            .iter()
            .enumerate()
            .map(|(s, &kind)| average_summary(kind, &outcomes[s * seeds..(s + 1) * seeds]))
            .collect();

        self.requests_served.fetch_add(1, Ordering::Relaxed);
        self.cells_simulated_total
            .fetch_add(representatives.len() as u64, Ordering::Relaxed);

        SweepResponse {
            cells: cell_results,
            averages,
            cache_hits,
            cache_misses: cells.len() - cache_hits,
            simulated: representatives.len(),
            deduped_in_flight,
            elapsed_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }
}
