//! The sweep service: requests, responses, and the cache-aware worker-pool
//! runtime.
//!
//! A [`SweepRequest`] names a [`Scenario`] and a scheduler line-up — exactly
//! the shape of one figure sweep. [`SweepServer::submit`] expands it into
//! cells (scheduler × seed), fingerprints each cell, and resolves them in
//! three tiers:
//!
//! 1. **cache hits** — served straight from the [`ResultCache`];
//! 2. **in-flight duplicates** — cells sharing a fingerprint with another
//!    miss in the same request are simulated once and fanned back out;
//! 3. **misses** — simulated on the deterministic worker pool
//!    ([`mapreduce_support::par_map`], bit-identical under any thread
//!    count) and stored in the cache.
//!
//! The per-cell outcome is identical across all three tiers, so a
//! [`SweepResponse`] is bit-for-bit the same whether it was computed cold or
//! served warm — the counters ([`SweepResponse::cache_hits`],
//! [`SweepResponse::simulated`], …) are the only difference, and they are
//! exactly how the acceptance tests verify that a warm figure rerun
//! performs zero cell simulations.

use crate::cache::ResultCache;
use mapreduce_experiments::cache::OutcomeCache;
use mapreduce_experiments::runner::average_summary;
use mapreduce_experiments::{cell_fingerprint, runner::run_cells, Scenario, SchedulerKind};
use mapreduce_metrics::{
    fold_run_telemetry, FlowtimeSketches, FlowtimeSummary, MetricsRegistry, QuantileSketch,
};
use mapreduce_sim::SimOutcome;
use mapreduce_support::hash::Fingerprint;
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-request cap on the number of points of a requested CDF series —
/// the response ships O(points), never per-job data, and this keeps even a
/// hostile request's series bounded.
pub const MAX_CDF_POINTS: usize = 512;

/// A `cdf` option on a sweep request: the flowtime window and resolution of
/// the sketch-backed CDF series to return per scheduler (the shape of the
/// paper's Figs. 4 and 5). The server answers from streaming
/// [`QuantileSketch`]es, so the response carries `points` pairs per
/// scheduler — never per-job records — regardless of job count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfRequest {
    /// Inclusive lower edge of the flowtime window.
    pub lo: f64,
    /// Upper edge of the flowtime window.
    pub hi: f64,
    /// Number of evenly spaced evaluation points in `[lo, hi]`.
    pub points: usize,
}

impl ToJson for CdfRequest {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("lo", self.lo.to_json()),
            ("hi", self.hi.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

impl FromJson for CdfRequest {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(CdfRequest {
            lo: f64::from_json(value.field("lo")?)?,
            hi: f64::from_json(value.field("hi")?)?,
            points: usize::from_json(value.field("points")?)?,
        })
    }
}

/// One sweep: a scenario and the schedulers to run over it. The request's
/// cells are the cross product `schedulers × scenario.seeds`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// The workload/cluster/seeds description shared by every cell.
    pub scenario: Scenario,
    /// The scheduler line-up; one summary row per entry in the response.
    pub schedulers: Vec<SchedulerKind>,
    /// Optional tenant tag: purely accounting (per-tenant lifetime counters
    /// in the server's metrics registry), never part of cell fingerprints —
    /// tenants share the result cache by design.
    pub tenant: Option<String>,
    /// Optional sketch-backed CDF series to include in the response.
    pub cdf: Option<CdfRequest>,
}

impl SweepRequest {
    /// Builds a request.
    pub fn new(scenario: Scenario, schedulers: Vec<SchedulerKind>) -> Self {
        SweepRequest {
            scenario,
            schedulers,
            tenant: None,
            cdf: None,
        }
    }

    /// Tags the request with a tenant name (per-tenant lifetime counters).
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Asks for a sketch-backed CDF series over `[lo, hi]` with `points`
    /// evaluation points.
    #[must_use]
    pub fn with_cdf(mut self, lo: f64, hi: f64, points: usize) -> Self {
        self.cdf = Some(CdfRequest { lo, hi, points });
        self
    }

    /// Number of cells this request expands into.
    pub fn num_cells(&self) -> usize {
        self.schedulers.len() * self.scenario.seeds.len()
    }

    /// Rejects degenerate requests that cannot produce a meaningful sweep —
    /// the protocol layer answers these with an error line instead of
    /// letting them reach the simulation's assertions.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.schedulers.is_empty() {
            return Err("request needs at least one scheduler".to_string());
        }
        if self.scenario.seeds.is_empty() {
            return Err("scenario needs at least one seed".to_string());
        }
        if self.scenario.machines == 0 {
            return Err("scenario needs at least one machine".to_string());
        }
        if self.scenario.profile.num_jobs == 0 {
            return Err("scenario profile needs at least one job".to_string());
        }
        if self.scenario.profile.classes.is_empty() {
            return Err("scenario profile needs at least one job class".to_string());
        }
        if let Some(tenant) = &self.tenant {
            if tenant.is_empty() {
                return Err("tenant name must not be empty".to_string());
            }
            if tenant.len() > 120 {
                return Err("tenant name exceeds 120 bytes".to_string());
            }
            if tenant.chars().any(|c| c.is_control()) {
                return Err("tenant name must not contain control characters".to_string());
            }
        }
        if let Some(cdf) = &self.cdf {
            if !(cdf.lo.is_finite() && cdf.hi.is_finite()) || cdf.hi <= cdf.lo {
                return Err("cdf window needs finite hi > lo".to_string());
            }
            if cdf.points < 2 {
                return Err("cdf series needs at least two points".to_string());
            }
            if cdf.points > MAX_CDF_POINTS {
                return Err(format!(
                    "cdf series of {} points exceeds the cap of {MAX_CDF_POINTS}",
                    cdf.points
                ));
            }
        }
        Ok(())
    }

    /// The cells in canonical order (scheduler-major, seeds in scenario
    /// order), each with its fingerprint.
    fn cells(&self) -> Vec<(SchedulerKind, u64, Fingerprint)> {
        let mut cells = Vec::with_capacity(self.num_cells());
        for &kind in &self.schedulers {
            for &seed in &self.scenario.seeds {
                cells.push((kind, seed, cell_fingerprint(kind, &self.scenario, seed)));
            }
        }
        cells
    }
}

impl ToJson for SweepRequest {
    fn to_json(&self) -> JsonValue {
        // `tenant` and `cdf` are only emitted when set, so request JSON from
        // before these options existed stays byte-identical.
        let mut fields = vec![
            ("scenario", self.scenario.to_json()),
            ("schedulers", self.schedulers.to_json()),
        ];
        if let Some(tenant) = &self.tenant {
            fields.push(("tenant", tenant.to_json()));
        }
        if let Some(cdf) = &self.cdf {
            fields.push(("cdf", cdf.to_json()));
        }
        JsonValue::object(fields)
    }
}

impl FromJson for SweepRequest {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SweepRequest {
            scenario: Scenario::from_json(value.field("scenario")?)?,
            schedulers: Vec::from_json(value.field("schedulers")?)?,
            tenant: match value.get("tenant") {
                Some(JsonValue::Null) | None => None,
                Some(v) => Some(String::from_json(v)?),
            },
            cdf: match value.get("cdf") {
                Some(JsonValue::Null) | None => None,
                Some(v) => Some(CdfRequest::from_json(v)?),
            },
        })
    }
}

/// The outcome of one cell, as reported to the requester.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The scheduler of this cell.
    pub scheduler: SchedulerKind,
    /// The seed of this cell.
    pub seed: u64,
    /// The cell's content fingerprint (the cache key).
    pub fingerprint: Fingerprint,
    /// Whether the outcome was served from the cache (`false` for cells
    /// simulated by this request, including the representative of a
    /// deduplicated group).
    pub from_cache: bool,
    /// Flowtime summary of the cell's outcome.
    pub summary: FlowtimeSummary,
}

impl ToJson for CellResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheduler", self.scheduler.to_json()),
            ("seed", self.seed.to_json()),
            ("fingerprint", self.fingerprint.to_json()),
            ("from_cache", self.from_cache.to_json()),
            ("summary", self.summary.to_json()),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(CellResult {
            scheduler: SchedulerKind::from_json(value.field("scheduler")?)?,
            seed: u64::from_json(value.field("seed")?)?,
            fingerprint: Fingerprint::from_json(value.field("fingerprint")?)?,
            from_cache: bool::from_json(value.field("from_cache")?)?,
            summary: FlowtimeSummary::from_json(value.field("summary")?)?,
        })
    }
}

/// The sketch-backed CDF series of one scheduler in a [`SweepResponse`]:
/// `points` `(flowtime, cumulative fraction of all jobs)` pairs read off a
/// streaming [`QuantileSketch`] merged across the scheduler's seeds. The
/// response ships exactly these pairs — no per-job records — so its size is
/// independent of the job count, and the curve matches the exact
/// [`mapreduce_metrics::Ecdf`] within [`QuantileSketch::RELATIVE_ERROR`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerCdf {
    /// The scheduler this series belongs to.
    pub scheduler: SchedulerKind,
    /// Pooled job count across the scheduler's seeds (the fraction
    /// denominator).
    pub jobs: u64,
    /// `(flowtime, cumulative fraction)` pairs, evenly spaced over the
    /// requested window.
    pub points: Vec<(f64, f64)>,
}

impl ToJson for SchedulerCdf {
    fn to_json(&self) -> JsonValue {
        let points: Vec<JsonValue> = self
            .points
            .iter()
            .map(|&(x, y)| JsonValue::Array(vec![x.to_json(), y.to_json()]))
            .collect();
        JsonValue::object([
            ("scheduler", self.scheduler.to_json()),
            ("jobs", self.jobs.to_json()),
            ("points", JsonValue::Array(points)),
        ])
    }
}

impl FromJson for SchedulerCdf {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let JsonValue::Array(pairs) = value.field("points")? else {
            return Err(JsonError::new("cdf points must be an array".to_string()));
        };
        let mut points = Vec::with_capacity(pairs.len());
        for pair in pairs {
            let JsonValue::Array(pair) = pair else {
                return Err(JsonError::new("cdf point must be a pair".to_string()));
            };
            if pair.len() != 2 {
                return Err(JsonError::new("cdf point must be a pair".to_string()));
            }
            points.push((f64::from_json(&pair[0])?, f64::from_json(&pair[1])?));
        }
        Ok(SchedulerCdf {
            scheduler: SchedulerKind::from_json(value.field("scheduler")?)?,
            jobs: u64::from_json(value.field("jobs")?)?,
            points,
        })
    }
}

/// The result of one sweep: per-cell summaries, per-scheduler averages, and
/// the cache accounting.
#[derive(Debug, Clone)]
pub struct SweepResponse {
    /// One entry per cell, in the request's canonical order
    /// (scheduler-major, seeds in scenario order).
    pub cells: Vec<CellResult>,
    /// One seed-averaged summary per requested scheduler, in request order
    /// (the rows a figure renders).
    pub averages: Vec<FlowtimeSummary>,
    /// Cells served from the result cache.
    pub cache_hits: usize,
    /// Cells not found in the cache (`simulated + deduped_in_flight`).
    pub cache_misses: usize,
    /// Cells actually simulated by this request — **zero** for a fully warm
    /// sweep; this is the acceptance counter for "a warm rerun performs no
    /// cell simulations".
    pub simulated: usize,
    /// Miss cells that shared a fingerprint with another miss in the same
    /// request and reused its simulation (in-flight deduplication).
    pub deduped_in_flight: usize,
    /// Sketch-backed CDF series, one per requested scheduler in request
    /// order — present iff the request carried a [`CdfRequest`]. Purely a
    /// function of the deterministic outcomes, so cold and warm responses
    /// carry bit-identical series (included in equality).
    pub cdf: Option<Vec<SchedulerCdf>>,
    /// Wall-clock nanoseconds [`SweepServer::submit`] spent resolving this
    /// request (lookup + simulation + assembly). Timing telemetry only:
    /// **excluded from equality** — like [`mapreduce_sim::RunTelemetry`] on
    /// `SimOutcome`, so "cold ≡ warm" response comparisons stay exact —
    /// and absent in pre-telemetry JSON (parses as 0).
    pub elapsed_ns: u64,
}

/// Everything except the wall-clock `elapsed_ns`, which is timing
/// telemetry rather than sweep content — this is the single equality
/// carve-out that keeps cold-vs-warm bit-identity assertions meaningful.
impl PartialEq for SweepResponse {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
            && self.averages == other.averages
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
            && self.simulated == other.simulated
            && self.deduped_in_flight == other.deduped_in_flight
            && self.cdf == other.cdf
    }
}

impl ToJson for SweepResponse {
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("cells", self.cells.to_json()),
            ("averages", self.averages.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("simulated", self.simulated.to_json()),
            ("deduped_in_flight", self.deduped_in_flight.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ];
        if let Some(cdf) = &self.cdf {
            fields.push(("cdf", cdf.to_json()));
        }
        JsonValue::object(fields)
    }
}

impl FromJson for SweepResponse {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SweepResponse {
            cells: Vec::from_json(value.field("cells")?)?,
            averages: Vec::from_json(value.field("averages")?)?,
            cache_hits: usize::from_json(value.field("cache_hits")?)?,
            cache_misses: usize::from_json(value.field("cache_misses")?)?,
            simulated: usize::from_json(value.field("simulated")?)?,
            deduped_in_flight: usize::from_json(value.field("deduped_in_flight")?)?,
            // Absent in responses serialized before the telemetry subsystem.
            elapsed_ns: match value.get("elapsed_ns") {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            // Absent unless the request asked for a CDF (and in responses
            // serialized before the option existed).
            cdf: match value.get("cdf") {
                Some(JsonValue::Null) | None => None,
                Some(v) => Some(Vec::from_json(v)?),
            },
        })
    }
}

/// Names of the server-side counters and histograms [`SweepServer::submit`]
/// folds into its lifetime metrics registry, alongside the engine-telemetry
/// names from [`mapreduce_metrics::telemetry::names`].
pub mod stats_names {
    /// Histogram: wall-clock nanoseconds per resolved sweep request.
    pub const SWEEP_LATENCY_NS: &str = "server_sweep_ns";
    /// Histogram: latency of fully warm sweeps (zero cells simulated).
    pub const SWEEP_WARM_NS: &str = "server_sweep_warm_ns";
    /// Histogram: latency of sweeps that simulated at least one cell.
    pub const SWEEP_COLD_NS: &str = "server_sweep_cold_ns";
    /// The tenant name accounted when a request carries no tenant tag.
    pub const DEFAULT_TENANT: &str = "anonymous";

    /// The per-tenant counter name for one accounted quantity
    /// (`tenant:<name>:<what>`).
    pub fn tenant_counter(tenant: &str, what: &str) -> String {
        format!("tenant:{tenant}:{what}")
    }

    /// Per-tenant counter: sweep requests resolved.
    pub const TENANT_REQUESTS: &str = "requests";
    /// Per-tenant counter: cells requested (hits and misses alike).
    pub const TENANT_CELLS: &str = "cells";
    /// Per-tenant counter: cells served from the result cache.
    pub const TENANT_CACHE_HITS: &str = "cache_hits";
    /// Per-tenant counter: cells actually simulated.
    pub const TENANT_SIMULATED: &str = "simulated";
}

/// The long-running service runtime: one shared [`ResultCache`], any number
/// of sequential [`SweepServer::submit`] calls (the line protocol in
/// [`crate::protocol`] feeds it one request per line).
#[derive(Debug)]
pub struct SweepServer {
    cache: ResultCache,
    /// When this server instance was built — the origin of the `stats`
    /// uptime report.
    started: Instant,
    /// Sweep requests resolved by [`SweepServer::submit`] over the server's
    /// lifetime (hits-only sweeps included).
    requests_served: AtomicU64,
    /// Cells actually simulated (cache misses after in-flight dedup) over
    /// the server's lifetime — the denominator of "how much work did the
    /// cache save" alongside the cache's own hit counters.
    cells_simulated_total: AtomicU64,
    /// Engine telemetry ([`mapreduce_sim::RunTelemetry`]) of every cell this
    /// server simulated plus the server-side request accounting
    /// ([`stats_names`]: per-request latency histograms, per-tenant
    /// counters), folded into one shard-mergeable registry — the `stats`
    /// and `metrics` responses surface it verbatim.
    metrics: Mutex<MetricsRegistry>,
    /// Streaming flowtime sketches (all jobs + the paper's small/big figure
    /// windows) folded over every cell this server simulated — lifetime
    /// percentiles and Fig. 4/5-shaped curves in O(1) memory, surfaced by
    /// the `metrics` protocol request.
    sketches: Mutex<FlowtimeSketches>,
}

impl SweepServer {
    /// Builds a server around a cache (persistent or in-memory).
    pub fn new(cache: ResultCache) -> Self {
        SweepServer {
            cache,
            started: Instant::now(),
            requests_served: AtomicU64::new(0),
            cells_simulated_total: AtomicU64::new(0),
            metrics: Mutex::new(MetricsRegistry::new()),
            sketches: Mutex::new(FlowtimeSketches::new()),
        }
    }

    /// The server's cache (e.g. for stats reporting or compaction).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Nanoseconds since this server instance was built.
    pub fn uptime_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Sweep requests resolved over the server's lifetime.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Cells simulated (not served from cache or deduped) over the server's
    /// lifetime.
    pub fn cells_simulated_total(&self) -> u64 {
        self.cells_simulated_total.load(Ordering::Relaxed)
    }

    /// A snapshot of the lifetime metrics registry: engine telemetry of
    /// every simulated cell plus the server-side request accounting
    /// ([`stats_names`]).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.metrics
            .lock()
            .expect("metrics registry poisoned")
            .clone()
    }

    /// A snapshot of the lifetime flowtime sketches folded over every cell
    /// this server simulated.
    pub fn sketches_snapshot(&self) -> FlowtimeSketches {
        self.sketches
            .lock()
            .expect("flowtime sketches poisoned")
            .clone()
    }

    /// Resolves one sweep: cache hits first, then in-flight deduplication,
    /// then the worker pool for genuine misses (which are stored back into
    /// the cache).
    ///
    /// # Panics
    /// Panics if a cell's simulation fails (stalled scheduler, horizon
    /// exceeded) — like the experiment harness, the service treats that as a
    /// bug in the scheduler under test, not a recoverable condition.
    pub fn submit(&self, request: &SweepRequest) -> SweepResponse {
        let started = Instant::now();
        let cells = request.cells();

        // Tier 1: cache lookups.
        let mut outcomes: Vec<Option<SimOutcome>> = cells
            .iter()
            .map(|&(_, _, fingerprint)| self.cache.lookup(fingerprint))
            .collect();
        let cache_hits = outcomes.iter().filter(|o| o.is_some()).count();

        // Tier 2: group the misses by fingerprint; the first occurrence is
        // the representative that will be simulated.
        let mut representatives: Vec<usize> = Vec::new();
        let mut by_fingerprint: HashMap<Fingerprint, usize> = HashMap::new();
        let mut deduped_in_flight = 0usize;
        for (i, &(_, _, fingerprint)) in cells.iter().enumerate() {
            if outcomes[i].is_some() {
                continue;
            }
            match by_fingerprint.entry(fingerprint) {
                std::collections::hash_map::Entry::Occupied(_) => deduped_in_flight += 1,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(representatives.len());
                    representatives.push(i);
                }
            }
        }

        // Tier 3: simulate the representatives on the worker pool, in the
        // deterministic order-preserving fan-out (a Google CSV workload is
        // converted once and shared across cells).
        let miss_cells: Vec<(SchedulerKind, u64)> = representatives
            .iter()
            .map(|&cell_index| {
                let (kind, seed, _) = cells[cell_index];
                (kind, seed)
            })
            .collect();
        let computed: Vec<SimOutcome> = run_cells(&request.scenario, &miss_cells);
        for (&cell_index, outcome) in representatives.iter().zip(&computed) {
            let (_, _, fingerprint) = cells[cell_index];
            self.cache.store(fingerprint, outcome);
        }
        if !computed.is_empty() {
            let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
            for outcome in &computed {
                fold_run_telemetry(&mut metrics, &outcome.telemetry);
            }
            drop(metrics);
            // Lifetime flowtime sketches: every simulated cell's jobs fold
            // into the all/small/big quantile sketches the `metrics`
            // request exposes. Cache hits don't re-fold — the sketches
            // account simulation work, like `cells_simulated_total`.
            let mut sketches = self.sketches.lock().expect("flowtime sketches poisoned");
            for outcome in &computed {
                for record in outcome.records() {
                    sketches.fold(record.flowtime());
                }
            }
        }

        // Fan results back out to every miss cell.
        for (i, &(_, _, fingerprint)) in cells.iter().enumerate() {
            if outcomes[i].is_none() {
                let rep = by_fingerprint[&fingerprint];
                outcomes[i] = Some(computed[rep].clone());
            }
        }

        // Assemble per-cell summaries and per-scheduler averages.
        let outcomes: Vec<SimOutcome> = outcomes.into_iter().map(|o| o.expect("filled")).collect();
        let cell_results: Vec<CellResult> = cells
            .iter()
            .zip(&outcomes)
            .map(|(&(scheduler, seed, fingerprint), outcome)| CellResult {
                scheduler,
                seed,
                fingerprint,
                // A cell is "from cache" iff it was resolved in tier 1:
                // tier-1 fingerprints never enter by_fingerprint, miss cells
                // (representatives and deduped alike) always do.
                from_cache: !by_fingerprint.contains_key(&fingerprint),
                summary: FlowtimeSummary::from_outcome(outcome),
            })
            .collect();
        let seeds = request.scenario.seeds.len();
        let averages: Vec<FlowtimeSummary> = request
            .schedulers
            .iter()
            .enumerate()
            .map(|(s, &kind)| average_summary(kind, &outcomes[s * seeds..(s + 1) * seeds]))
            .collect();

        // Optional sketch-backed CDF series: one streaming sketch per
        // scheduler, merged over its seeds, read off at the requested
        // resolution — the response ships `points` pairs per scheduler and
        // nothing per-job. A pure function of the deterministic outcomes,
        // so cold and warm responses carry bit-identical series.
        let cdf = request.cdf.map(|window| {
            request
                .schedulers
                .iter()
                .enumerate()
                .map(|(s, &kind)| {
                    let mut sketch = QuantileSketch::new();
                    for outcome in &outcomes[s * seeds..(s + 1) * seeds] {
                        for record in outcome.records() {
                            sketch.record(record.flowtime());
                        }
                    }
                    SchedulerCdf {
                        scheduler: kind,
                        jobs: sketch.count(),
                        points: sketch.series(window.lo, window.hi, window.points, None),
                    }
                })
                .collect()
        });

        self.requests_served.fetch_add(1, Ordering::Relaxed);
        self.cells_simulated_total
            .fetch_add(representatives.len() as u64, Ordering::Relaxed);

        let simulated = representatives.len();
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        // Server-side request accounting: per-request latency histograms
        // (split warm/cold) and per-tenant lifetime counters.
        {
            let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
            metrics.record(stats_names::SWEEP_LATENCY_NS, elapsed_ns);
            let split = if simulated == 0 {
                stats_names::SWEEP_WARM_NS
            } else {
                stats_names::SWEEP_COLD_NS
            };
            metrics.record(split, elapsed_ns);
            let tenant = request
                .tenant
                .as_deref()
                .unwrap_or(stats_names::DEFAULT_TENANT);
            metrics.inc(
                &stats_names::tenant_counter(tenant, stats_names::TENANT_REQUESTS),
                1,
            );
            metrics.inc(
                &stats_names::tenant_counter(tenant, stats_names::TENANT_CELLS),
                cells.len() as u64,
            );
            metrics.inc(
                &stats_names::tenant_counter(tenant, stats_names::TENANT_CACHE_HITS),
                cache_hits as u64,
            );
            metrics.inc(
                &stats_names::tenant_counter(tenant, stats_names::TENANT_SIMULATED),
                simulated as u64,
            );
        }

        SweepResponse {
            cells: cell_results,
            averages,
            cache_hits,
            cache_misses: cells.len() - cache_hits,
            simulated,
            deduped_in_flight,
            cdf,
            elapsed_ns,
        }
    }
}
