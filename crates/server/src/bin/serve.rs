//! `serve` — the experiment-service entry point: a sweep server speaking
//! line-delimited JSON over stdin/stdout, backed by a persistent result
//! cache.
//!
//! ```text
//! serve [--cache <path>] [--memory] [--max-entries N] [--max-cells N]
//!       [--max-line-bytes N] [--smoke]
//!
//! --cache           JSON-lines cache file (default: target/sweep-cache.jsonl;
//!                   created on first store, safe to delete at any time)
//! --memory          in-process cache only, nothing persisted
//! --max-entries     cap the cache index (oldest-first eviction)
//! --max-cells       per-request cell cap; bigger sweeps get an error line
//!                   (default 4096)
//! --max-line-bytes  per-request input line cap; longer lines are discarded
//!                   in constant memory (default 1 MiB)
//! --smoke           run a built-in cold→warm round-trip through the line
//!                   protocol and exit non-zero if the warm pass simulates
//!                   anything or diverges from the cold pass
//! ```
//!
//! Example session (one request per line on stdin):
//!
//! ```text
//! $ cargo run --release -p mapreduce-server --bin serve <<'EOF'
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! EOF
//! ```

use mapreduce_server::{
    serve_lines, serve_lines_with, ResultCache, ServeOptions, SweepRequest, SweepResponse,
    SweepServer,
};
use mapreduce_support::json::{FromJson, JsonValue, ToJson};
use std::process::ExitCode;

struct Options {
    cache_path: String,
    in_memory: bool,
    max_entries: Option<usize>,
    serve: ServeOptions,
    smoke: bool,
}

/// Parses a positive integer flag value, exiting with usage status on junk.
fn positive(flag: &str, value: Option<String>) -> usize {
    let value = value.unwrap_or_else(|| {
        eprintln!("{flag} needs a number");
        std::process::exit(2);
    });
    let parsed: usize = value.parse().unwrap_or_else(|_| {
        eprintln!("invalid {flag} value: {value}");
        std::process::exit(2);
    });
    if parsed == 0 {
        eprintln!("{flag} must be at least 1");
        std::process::exit(2);
    }
    parsed
}

fn parse_args() -> Options {
    let mut options = Options {
        cache_path: "target/sweep-cache.jsonl".to_string(),
        in_memory: false,
        max_entries: None,
        serve: ServeOptions::default(),
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache" => {
                options.cache_path = args.next().unwrap_or_else(|| {
                    eprintln!("--cache needs a path");
                    std::process::exit(2);
                });
            }
            "--memory" => options.in_memory = true,
            "--max-entries" => {
                options.max_entries = Some(positive("--max-entries", args.next()));
            }
            "--max-cells" => {
                options.serve.max_cells = positive("--max-cells", args.next());
            }
            "--max-line-bytes" => {
                options.serve.max_line_bytes = positive("--max-line-bytes", args.next());
            }
            "--smoke" => options.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: serve [--cache <path>] [--memory] [--max-entries N] \
                     [--max-cells N] [--max-line-bytes N] [--smoke]\n\
                     reads line-delimited JSON requests from stdin; see the crate docs for \
                     the protocol"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    options
}

/// The canned cold→warm round-trip of `--smoke`: two identical sweep
/// requests (tenant-tagged, with a sketch-backed CDF series) through the
/// real line protocol; the warm pass must simulate nothing and reproduce
/// the cold summaries and CDF series exactly, and the `metrics` request
/// must expose a well-formed registry/sketch/exposition surface. (With a
/// pre-warmed persistent cache even the first pass is all hits — still a
/// pass.)
fn smoke(server: &SweepServer) -> Result<(), String> {
    use mapreduce_experiments::{Scenario, SchedulerKind};

    let request = SweepRequest::new(
        Scenario::scaled(40, 2),
        vec![SchedulerKind::Fifo, SchedulerKind::paper_default()],
    )
    .with_tenant("smoke")
    .with_cdf(0.0, 300.0, 13);
    let line = match request.to_json() {
        JsonValue::Object(mut map) => {
            map.insert("cmd".into(), JsonValue::String("sweep".into()));
            JsonValue::Object(map).to_compact_string()
        }
        _ => unreachable!("requests serialize to objects"),
    };
    let script = format!(
        "{line}\n{line}\n{{\"cmd\":\"stats\"}}\n{{\"cmd\":\"metrics\"}}\n{{\"cmd\":\"shutdown\"}}\n"
    );
    let mut out = Vec::new();
    serve_lines(server, script.as_bytes(), &mut out).map_err(|e| format!("serve failed: {e}"))?;
    let text = String::from_utf8(out).map_err(|e| format!("non-utf8 response: {e}"))?;
    let lines: Vec<JsonValue> = text
        .lines()
        .map(|l| JsonValue::parse(l).map_err(|e| format!("bad response line: {e}")))
        .collect::<Result<_, _>>()?;
    if lines.len() != 5 {
        return Err(format!("expected 5 response lines, got {}", lines.len()));
    }
    let response = |i: usize| -> Result<SweepResponse, String> {
        SweepResponse::from_json(
            lines[i]
                .get("response")
                .ok_or_else(|| format!("line {i} has no response: {}", lines[i]))?,
        )
        .map_err(|e| format!("line {i}: {e}"))
    };
    let cold = response(0)?;
    let warm = response(1)?;
    if warm.simulated != 0 {
        return Err(format!(
            "warm pass simulated {} cells (expected 0)",
            warm.simulated
        ));
    }
    if warm.cache_hits != request.num_cells() {
        return Err(format!(
            "warm pass hit {} of {} cells",
            warm.cache_hits,
            request.num_cells()
        ));
    }
    if warm.averages != cold.averages
        || warm
            .cells
            .iter()
            .zip(&cold.cells)
            .any(|(w, c)| w.summary != c.summary || w.fingerprint != c.fingerprint)
    {
        return Err("warm results diverge from cold results".to_string());
    }
    let cdf = cold
        .cdf
        .as_ref()
        .ok_or("cold response carries no CDF series despite the cdf option")?;
    if cdf.len() != request.schedulers.len() || cdf.iter().any(|c| c.points.len() != 13) {
        return Err("CDF series have the wrong shape".to_string());
    }
    if warm.cdf != cold.cdf {
        return Err("warm CDF series diverge from cold CDF series".to_string());
    }
    check_metrics_line(&lines[3], cold.simulated + warm.simulated > 0)?;
    eprintln!(
        "smoke ok: {} cells; cold pass simulated {}, warm pass simulated 0 ({} hits); \
         CDF + metrics exposition validated",
        request.num_cells(),
        cold.simulated,
        warm.cache_hits
    );
    Ok(())
}

/// Validates the `metrics` response line of the smoke script: the sketch
/// payload must roundtrip (non-empty whenever this process simulated
/// anything) and the text exposition must be well-formed `name value`
/// lines under the `mapreduce_` namespace.
fn check_metrics_line(line: &JsonValue, simulated_here: bool) -> Result<(), String> {
    use mapreduce_metrics::FlowtimeSketches;

    if line.get("ok") != Some(&JsonValue::Bool(true)) {
        return Err(format!("metrics request failed: {line}"));
    }
    let sketches = FlowtimeSketches::from_json(
        line.get("sketches")
            .ok_or("metrics response has no sketches")?,
    )
    .map_err(|e| format!("bad sketches payload: {e}"))?;
    // With a pre-warmed persistent cache the server may never simulate, so
    // the lifetime sketches are legitimately empty; otherwise they must
    // have folded every completed job.
    if simulated_here && sketches.all.is_empty() {
        return Err("simulated cells but the flowtime sketch is empty".to_string());
    }
    let exposition = match line.get("exposition") {
        Some(JsonValue::String(text)) => text,
        other => return Err(format!("bad exposition field: {other:?}")),
    };
    if exposition.lines().count() == 0 {
        return Err("empty metrics exposition".to_string());
    }
    for row in exposition.lines() {
        let mut fields = row.split(' ');
        let (name, value) = match (fields.next(), fields.next(), fields.next()) {
            (Some(name), Some(value), None) => (name, value),
            _ => return Err(format!("exposition line is not `name value`: {row}")),
        };
        if !name.starts_with("mapreduce_")
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(format!("bad exposition metric name: {row}"));
        }
        if value.parse::<u128>().is_err() {
            return Err(format!("non-integer exposition value: {row}"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = parse_args();
    let cache = if options.in_memory {
        ResultCache::in_memory()
    } else {
        match ResultCache::open(&options.cache_path) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!("serve: cannot open cache {}: {e}", options.cache_path);
                return ExitCode::FAILURE;
            }
        }
    };
    let cache = match options.max_entries {
        Some(n) => cache.with_max_entries(n),
        None => cache,
    };
    eprintln!(
        "serve: cache {} ({} entries loaded, {} corrupt lines skipped)",
        cache
            .path()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "in memory".to_string()),
        cache.len(),
        cache.skipped_lines()
    );
    let server = SweepServer::new(cache);

    if options.smoke {
        return match smoke(&server) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("serve: smoke failed: {message}");
                ExitCode::FAILURE
            }
        };
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve_lines_with(&server, stdin.lock(), stdout.lock(), options.serve) {
        Ok(stats) => {
            eprintln!(
                "serve: {} request(s), {} error line(s), {}",
                stats.requests,
                stats.errors,
                if stats.shutdown { "shutdown" } else { "eof" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: transport error: {e}");
            ExitCode::FAILURE
        }
    }
}
