//! Line-delimited JSON protocol: one request per input line, one response
//! per output line.
//!
//! The protocol is transport-agnostic ([`serve_lines`] takes any
//! `BufRead`/`Write` pair); the `serve` binary wires it to stdin/stdout so
//! external tooling can drive sweeps with nothing but a pipe:
//!
//! ```text
//! {"cmd":"sweep","scenario":{...},"schedulers":["Fifo",{"SrptMsC":{"epsilon":0.6,"r":3}}]}
//! → {"ok":true,"cmd":"sweep","response":{"cells":[...],"averages":[...],"cache_hits":0,...}}
//! {"cmd":"stats"}
//! → {"ok":true,"cmd":"stats","cache":{"entries":20,"hits":0,"misses":20,...},
//!    "server":{"uptime_ns":...,"requests_served":2,"cells_simulated_total":20,
//!              "cache_hit_rate":0.5,"metrics":{...}}}
//! {"cmd":"metrics"}
//! → {"ok":true,"cmd":"metrics","metrics":{"counters":{...},"histograms":{...}},
//!    "sketches":{"all":{...},"small":{...},"big":{...}},
//!    "exposition":"mapreduce_server_uptime_ns 42\n..."}
//! {"cmd":"shutdown"}
//! → {"ok":true,"cmd":"shutdown"}
//! ```
//!
//! The `metrics` request is the live observability surface: the lifetime
//! [`mapreduce_metrics::MetricsRegistry`] (per-request latency histograms,
//! per-tenant counters, engine telemetry of every simulated cell) and the
//! lifetime flowtime [`mapreduce_metrics::QuantileSketch`]es as structured
//! JSON, plus the same data flattened into a deterministic plain-text
//! exposition (`name value` lines, sketch quantiles included) for tooling
//! that scrapes text.
//!
//! Malformed lines produce `{"ok":false,"error":"..."}` and the loop keeps
//! serving — a multi-tenant stdin feed must never be taken down by one bad
//! request. Blank lines are ignored; EOF ends the loop like `shutdown`.
//!
//! Two resource guards protect the loop from hostile or accidental abuse
//! (see [`ServeOptions`]): request lines longer than
//! [`ServeOptions::max_line_bytes`] are discarded without being buffered
//! (the reader skips to the next newline in constant memory), and sweep
//! requests expanding to more than [`ServeOptions::max_cells`] cells are
//! rejected before any simulation starts. Both degrade to an error
//! response line, never an OOM or a hang.

use crate::service::{SweepRequest, SweepServer};
use mapreduce_experiments::cache::OutcomeCache;
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use std::io::{BufRead, Read, Write};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) one sweep.
    Sweep(Box<SweepRequest>),
    /// Report cache statistics.
    Stats,
    /// Report the lifetime metrics registry and flowtime sketches (JSON +
    /// text exposition).
    Metrics,
    /// Stop serving after acknowledging.
    Shutdown,
}

impl FromJson for Request {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let cmd = value
            .field("cmd")?
            .as_str()
            .ok_or_else(|| JsonError::new("`cmd` must be a string"))?;
        match cmd {
            "sweep" => Ok(Request::Sweep(Box::new(SweepRequest::from_json(value)?))),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError::new(format!("unknown cmd `{other}`"))),
        }
    }
}

/// Resource guards of one serving session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Maximum cells (`schedulers × seeds`) one sweep request may expand
    /// into; larger requests are answered with an error line.
    pub max_cells: usize,
    /// Maximum bytes of one request line; longer lines are discarded in
    /// constant memory and answered with an error line.
    pub max_line_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_cells: 4096,
            max_line_bytes: 1 << 20,
        }
    }
}

/// What one bounded line read produced.
enum LineRead {
    /// A complete line within the limit (trailing newline stripped).
    Line,
    /// The line exceeded the limit; its remainder was skipped unbuffered.
    Oversized,
    /// End of input.
    Eof,
}

/// Reads one line of at most `max_bytes` bytes into `buf`. An over-long
/// line is *not* buffered: at most `max_bytes + 1` bytes are held while the
/// rest is skipped chunk-by-chunk straight off the reader's internal
/// buffer, so a gigabyte request line costs a gigabyte of I/O but constant
/// memory.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
    buf: &mut Vec<u8>,
) -> std::io::Result<LineRead> {
    buf.clear();
    let n = Read::take(&mut *reader, max_bytes as u64 + 1).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        return Ok(LineRead::Line);
    }
    if n <= max_bytes {
        // Final line of the stream, no trailing newline.
        return Ok(LineRead::Line);
    }
    // Limit hit with no newline in sight: drop what we buffered and skip
    // to the end of the line.
    buf.clear();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            break;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                reader.consume(len);
            }
        }
    }
    Ok(LineRead::Oversized)
}

/// Accounting of one [`serve_lines`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests served successfully (sweeps and stats).
    pub requests: usize,
    /// Lines rejected with an error response.
    pub errors: usize,
    /// Whether the session ended via an explicit `shutdown` (vs EOF).
    pub shutdown: bool,
}

/// Serializes the `server` body of the `stats` response: lifetime request
/// and simulation counters, uptime, the cache hit-rate, and the engine
/// telemetry registry folded over every simulated cell.
fn server_stats_json(server: &SweepServer) -> JsonValue {
    let stats = server.cache().stats();
    let lookups = stats.hits + stats.misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        stats.hits as f64 / lookups as f64
    };
    JsonValue::object([
        ("uptime_ns", server.uptime_ns().to_json()),
        ("requests_served", server.requests_served().to_json()),
        (
            "cells_simulated_total",
            server.cells_simulated_total().to_json(),
        ),
        ("cache_hit_rate", hit_rate.to_json()),
        ("metrics", server.metrics_snapshot().to_json()),
    ])
}

/// Serializes the `stats` response body for a server's cache.
fn cache_stats_json(server: &SweepServer) -> JsonValue {
    let cache = server.cache();
    let stats = cache.stats();
    JsonValue::object([
        ("entries", cache.len().to_json()),
        ("hits", stats.hits.to_json()),
        ("misses", stats.misses.to_json()),
        ("stores", stats.stores.to_json()),
        ("evicted", cache.evicted().to_json()),
        ("skipped_lines", cache.skipped_lines().to_json()),
        (
            "path",
            match cache.path() {
                Some(path) => JsonValue::String(path.to_string_lossy().into_owned()),
                None => JsonValue::Null,
            },
        ),
    ])
}

/// Flattens the server's lifetime metrics into a deterministic plain-text
/// exposition: one `name value` line per quantity, in fixed order (server
/// gauges, then registry counters and histograms in name order, then the
/// flowtime sketches with their bounded-error quantiles). Every value is a
/// non-negative integer, so the format is trivially scrapeable; only the
/// uptime line varies between back-to-back scrapes of an idle server.
pub fn metrics_exposition(server: &SweepServer) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "mapreduce_server_uptime_ns {}", server.uptime_ns());
    let _ = writeln!(
        out,
        "mapreduce_server_requests_served {}",
        server.requests_served()
    );
    let _ = writeln!(
        out,
        "mapreduce_server_cells_simulated_total {}",
        server.cells_simulated_total()
    );
    let cache_stats = server.cache().stats();
    let _ = writeln!(out, "mapreduce_cache_entries {}", server.cache().len());
    let _ = writeln!(out, "mapreduce_cache_hits {}", cache_stats.hits);
    let _ = writeln!(out, "mapreduce_cache_misses {}", cache_stats.misses);
    let registry = server.metrics_snapshot();
    for (name, value) in registry.counters() {
        let _ = writeln!(out, "mapreduce_counter_{} {value}", sanitize_name(name));
    }
    for (name, histogram) in registry.histograms() {
        let name = sanitize_name(name);
        let _ = writeln!(
            out,
            "mapreduce_histogram_{name}_count {}",
            histogram.count()
        );
        let _ = writeln!(out, "mapreduce_histogram_{name}_sum {}", histogram.sum());
        let _ = writeln!(out, "mapreduce_histogram_{name}_max {}", histogram.max());
    }
    let sketches = server.sketches_snapshot();
    for (label, sketch) in [
        ("all", &sketches.all),
        ("small", &sketches.small),
        ("big", &sketches.big),
    ] {
        let _ = writeln!(out, "mapreduce_flowtime_{label}_count {}", sketch.count());
        let _ = writeln!(out, "mapreduce_flowtime_{label}_min {}", sketch.min());
        let _ = writeln!(out, "mapreduce_flowtime_{label}_max {}", sketch.max());
        for (tag, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            let _ = writeln!(
                out,
                "mapreduce_flowtime_{label}_{tag} {}",
                sketch.quantile(q).unwrap_or(0)
            );
        }
    }
    out
}

/// Maps a metric name onto the exposition's `[a-z0-9_]` charset (tenant
/// names can carry arbitrary printable characters).
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn write_line<W: Write>(writer: &mut W, value: &JsonValue) -> std::io::Result<()> {
    writeln!(writer, "{}", value.to_compact_string())?;
    writer.flush()
}

/// Serves line-delimited requests from `reader`, writing one response line
/// each to `writer`, until EOF or a `shutdown` request — with the default
/// [`ServeOptions`] resource guards.
///
/// # Errors
/// Returns an error only for transport I/O failures; malformed request
/// content is answered with an `{"ok":false,...}` line instead.
pub fn serve_lines<R: BufRead, W: Write>(
    server: &SweepServer,
    reader: R,
    writer: W,
) -> std::io::Result<ServeStats> {
    serve_lines_with(server, reader, writer, ServeOptions::default())
}

/// [`serve_lines`] with explicit resource guards.
///
/// # Errors
/// Returns an error only for transport I/O failures; malformed request
/// content is answered with an `{"ok":false,...}` line instead.
pub fn serve_lines_with<R: BufRead, W: Write>(
    server: &SweepServer,
    mut reader: R,
    mut writer: W,
    options: ServeOptions,
) -> std::io::Result<ServeStats> {
    let mut stats = ServeStats::default();
    let mut buf = Vec::new();
    loop {
        match read_bounded_line(&mut reader, options.max_line_bytes, &mut buf)? {
            LineRead::Eof => break,
            LineRead::Oversized => {
                stats.errors += 1;
                write_line(
                    &mut writer,
                    &JsonValue::object([
                        ("ok", false.to_json()),
                        (
                            "error",
                            format!(
                                "request line exceeds {} bytes and was dropped",
                                options.max_line_bytes
                            )
                            .to_json(),
                        ),
                    ]),
                )?;
                continue;
            }
            LineRead::Line => {}
        }
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() {
            continue;
        }
        let request = JsonValue::parse(&line)
            .map_err(|e| e.to_string())
            .and_then(|v| Request::from_json(&v).map_err(|e| e.to_string()));
        match request {
            Err(message) => {
                stats.errors += 1;
                write_line(
                    &mut writer,
                    &JsonValue::object([("ok", false.to_json()), ("error", message.to_json())]),
                )?;
            }
            Ok(Request::Sweep(sweep)) => {
                // Oversized requests are capped and degenerate requests
                // rejected up front; anything that still panics inside the
                // simulation (a stalled scheduler, an invalid generator
                // profile) is caught and answered as an error line — one
                // tenant's bad request must never take the server down.
                let capped = if sweep.num_cells() > options.max_cells {
                    Err(format!(
                        "request expands to {} cells, over the per-request cap of {}",
                        sweep.num_cells(),
                        options.max_cells
                    ))
                } else {
                    Ok(())
                };
                let result = capped.and_then(|()| sweep.validate()).and_then(|()| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.submit(&sweep)))
                        .map_err(|payload| {
                            let message = payload
                                .downcast_ref::<String>()
                                .map(String::as_str)
                                .or_else(|| payload.downcast_ref::<&str>().copied())
                                .unwrap_or("sweep panicked");
                            format!("sweep failed: {message}")
                        })
                });
                match result {
                    Ok(response) => {
                        stats.requests += 1;
                        write_line(
                            &mut writer,
                            &JsonValue::object([
                                ("ok", true.to_json()),
                                ("cmd", JsonValue::String("sweep".into())),
                                ("response", response.to_json()),
                            ]),
                        )?;
                    }
                    Err(message) => {
                        stats.errors += 1;
                        write_line(
                            &mut writer,
                            &JsonValue::object([
                                ("ok", false.to_json()),
                                ("error", message.to_json()),
                            ]),
                        )?;
                    }
                }
            }
            Ok(Request::Stats) => {
                stats.requests += 1;
                write_line(
                    &mut writer,
                    &JsonValue::object([
                        ("ok", true.to_json()),
                        ("cmd", JsonValue::String("stats".into())),
                        ("cache", cache_stats_json(server)),
                        ("server", server_stats_json(server)),
                    ]),
                )?;
            }
            Ok(Request::Metrics) => {
                stats.requests += 1;
                write_line(
                    &mut writer,
                    &JsonValue::object([
                        ("ok", true.to_json()),
                        ("cmd", JsonValue::String("metrics".into())),
                        ("metrics", server.metrics_snapshot().to_json()),
                        ("sketches", server.sketches_snapshot().to_json()),
                        ("exposition", JsonValue::String(metrics_exposition(server))),
                    ]),
                )?;
            }
            Ok(Request::Shutdown) => {
                stats.shutdown = true;
                write_line(
                    &mut writer,
                    &JsonValue::object([
                        ("ok", true.to_json()),
                        ("cmd", JsonValue::String("shutdown".into())),
                    ]),
                )?;
                break;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::service::SweepResponse;
    use mapreduce_experiments::{Scenario, SchedulerKind};

    fn server() -> SweepServer {
        SweepServer::new(ResultCache::in_memory())
    }

    fn request_line() -> String {
        let request = SweepRequest::new(Scenario::scaled(12, 1), vec![SchedulerKind::Fifo]);
        match request.to_json() {
            JsonValue::Object(mut map) => {
                map.insert("cmd".into(), JsonValue::String("sweep".into()));
                JsonValue::Object(map).to_compact_string()
            }
            _ => unreachable!("requests serialize to objects"),
        }
    }

    /// Runs a scripted session and returns the response lines.
    fn session(server: &SweepServer, input: &str) -> (Vec<JsonValue>, ServeStats) {
        let mut out = Vec::new();
        let stats = serve_lines(server, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines = text
            .lines()
            .map(|l| JsonValue::parse(l).expect("every response line is JSON"))
            .collect();
        (lines, stats)
    }

    #[test]
    fn sweep_stats_and_shutdown_round_trip() {
        let server = server();
        let input = format!(
            "{}\n\n{}\n{{\"cmd\":\"stats\"}}\n{{\"cmd\":\"shutdown\"}}\nignored after shutdown\n",
            request_line(),
            request_line()
        );
        let (lines, stats) = session(&server, &input);
        assert_eq!(lines.len(), 4);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 0);
        assert!(stats.shutdown);

        // Cold sweep simulates, warm sweep is served entirely from cache —
        // with bit-identical cells.
        let cold = SweepResponse::from_json(lines[0].field("response").unwrap()).unwrap();
        let warm = SweepResponse::from_json(lines[1].field("response").unwrap()).unwrap();
        assert_eq!(cold.simulated, 1);
        assert_eq!(warm.simulated, 0);
        assert_eq!(warm.cache_hits, 1);
        assert_eq!(warm.cells[0].summary, cold.cells[0].summary);
        assert!(warm.cells[0].from_cache);
        assert!(!cold.cells[0].from_cache);

        let cache = lines[2].field("cache").unwrap();
        assert_eq!(cache.field("entries").unwrap().as_u64(), Some(1));
        assert_eq!(cache.field("path").unwrap(), &JsonValue::Null);
        assert_eq!(lines[3].field("cmd").unwrap().as_str(), Some("shutdown"));

        // The enriched `server` body: two sweeps served, one cell simulated
        // (the warm rerun hit the cache), a 50 % hit-rate over the two
        // lookups, a ticking uptime, and the engine-telemetry registry
        // carrying the simulated cell's decision count.
        let body = lines[2].field("server").unwrap();
        assert_eq!(body.field("requests_served").unwrap().as_u64(), Some(2));
        assert_eq!(
            body.field("cells_simulated_total").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(body.field("cache_hit_rate").unwrap().as_f64(), Some(0.5));
        assert!(body.field("uptime_ns").unwrap().as_u64().unwrap() > 0);
        let metrics =
            mapreduce_metrics::MetricsRegistry::from_json(body.field("metrics").unwrap()).unwrap();
        assert!(metrics.counter(mapreduce_metrics::telemetry::names::ENGINE_DECISION_INSTANTS) > 0);
    }

    #[test]
    fn metrics_request_exposes_registry_and_sketches() {
        use crate::service::stats_names;
        let server = server();
        let input = format!(
            "{}\n{{\"cmd\":\"metrics\"}}\n{{\"cmd\":\"shutdown\"}}\n",
            request_line()
        );
        let (lines, stats) = session(&server, &input);
        assert_eq!(stats.requests, 2);
        let line = &lines[1];
        assert_eq!(line.field("ok").unwrap().as_bool(), Some(true));
        assert_eq!(line.field("cmd").unwrap().as_str(), Some("metrics"));

        // The structured registry carries the server-side accounting: one
        // sweep latency sample (cold split) and the anonymous tenant's
        // counters.
        let registry =
            mapreduce_metrics::MetricsRegistry::from_json(line.field("metrics").unwrap()).unwrap();
        assert_eq!(
            registry
                .histogram(stats_names::SWEEP_LATENCY_NS)
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            registry
                .histogram(stats_names::SWEEP_COLD_NS)
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            registry.counter(&stats_names::tenant_counter(
                stats_names::DEFAULT_TENANT,
                stats_names::TENANT_REQUESTS
            )),
            1
        );

        // The lifetime sketches folded every simulated job.
        let sketches =
            mapreduce_metrics::FlowtimeSketches::from_json(line.field("sketches").unwrap())
                .unwrap();
        assert!(sketches.all.count() > 0);

        // The text exposition is strictly `name value` integer lines.
        let text = line.field("exposition").unwrap().as_str().unwrap();
        assert!(text.lines().count() >= 10);
        for row in text.lines() {
            let mut parts = row.split(' ');
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(parts.next().is_none(), "more than two fields in {row:?}");
            assert!(name.starts_with("mapreduce_"), "bad name in {row:?}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad charset in {row:?}"
            );
            value
                .parse::<u128>()
                .expect("exposition values are integers");
        }
        assert!(text.contains("mapreduce_flowtime_all_count "));
        assert!(text.contains("mapreduce_server_requests_served 1"));
    }

    #[test]
    fn cdf_sweeps_ship_series_not_records() {
        let server = server();
        let request = SweepRequest::new(Scenario::scaled(12, 1), vec![SchedulerKind::Fifo])
            .with_tenant("alice")
            .with_cdf(0.0, 300.0, 7);
        let line = match request.to_json() {
            JsonValue::Object(mut map) => {
                map.insert("cmd".into(), JsonValue::String("sweep".into()));
                JsonValue::Object(map).to_compact_string()
            }
            _ => unreachable!(),
        };
        // Cold, then warm: the sketch-backed series must be bit-identical.
        let input = format!("{line}\n{line}\n{{\"cmd\":\"shutdown\"}}\n");
        let (lines, stats) = session(&server, &input);
        assert_eq!(stats.requests, 2);
        let cold = SweepResponse::from_json(lines[0].field("response").unwrap()).unwrap();
        let warm = SweepResponse::from_json(lines[1].field("response").unwrap()).unwrap();
        assert_eq!(cold.simulated, 1);
        assert_eq!(warm.simulated, 0);
        assert_eq!(cold.cdf, warm.cdf, "cold and warm series must be identical");
        let series = cold.cdf.as_ref().unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].scheduler, SchedulerKind::Fifo);
        assert_eq!(series[0].points.len(), 7);
        assert!(series[0].jobs > 0);
        let mut prev = -1.0;
        for &(x, y) in &series[0].points {
            assert!((0.0..=300.0).contains(&x));
            assert!(y >= prev && (0.0..=1.0).contains(&y));
            prev = y;
        }
        // Per-tenant accounting picked up the tag.
        use crate::service::stats_names;
        let registry = server.metrics_snapshot();
        assert_eq!(
            registry.counter(&stats_names::tenant_counter(
                "alice",
                stats_names::TENANT_REQUESTS
            )),
            2
        );
        assert_eq!(
            registry.counter(&stats_names::tenant_counter(
                "alice",
                stats_names::TENANT_CACHE_HITS
            )),
            1
        );
    }

    #[test]
    fn degenerate_cdf_and_tenant_options_are_rejected() {
        let server = server();
        let bad = [
            SweepRequest::new(Scenario::scaled(10, 1), vec![SchedulerKind::Fifo])
                .with_cdf(10.0, 5.0, 4),
            SweepRequest::new(Scenario::scaled(10, 1), vec![SchedulerKind::Fifo])
                .with_cdf(0.0, 300.0, 1),
            SweepRequest::new(Scenario::scaled(10, 1), vec![SchedulerKind::Fifo]).with_cdf(
                0.0,
                300.0,
                crate::service::MAX_CDF_POINTS + 1,
            ),
            SweepRequest::new(Scenario::scaled(10, 1), vec![SchedulerKind::Fifo]).with_tenant(""),
        ];
        let mut input = String::new();
        for request in &bad {
            match request.to_json() {
                JsonValue::Object(mut map) => {
                    map.insert("cmd".into(), JsonValue::String("sweep".into()));
                    input.push_str(&JsonValue::Object(map).to_compact_string());
                    input.push('\n');
                }
                _ => unreachable!(),
            }
        }
        let (lines, stats) = session(&server, &input);
        assert_eq!(stats.errors, bad.len());
        for line in &lines {
            assert_eq!(line.field("ok").unwrap().as_bool(), Some(false));
        }
    }

    #[test]
    fn malformed_lines_get_error_responses_and_serving_continues() {
        let server = server();
        let input = format!(
            "not json\n{{\"cmd\":\"nope\"}}\n{{\"nocmd\":1}}\n{}\n",
            request_line()
        );
        let (lines, stats) = session(&server, &input);
        assert_eq!(lines.len(), 4);
        assert_eq!(stats.errors, 3);
        assert_eq!(stats.requests, 1);
        assert!(!stats.shutdown, "EOF, not shutdown");
        for line in &lines[..3] {
            assert_eq!(line.field("ok").unwrap().as_bool(), Some(false));
            assert!(line.field("error").is_ok());
        }
        assert_eq!(lines[3].field("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn degenerate_sweeps_get_error_lines_not_crashes() {
        let server = server();
        // Empty seeds, empty scheduler list, zero machines: all well-formed
        // JSON, all rejected by validation; the server keeps serving.
        let mut no_seeds = Scenario::scaled(10, 1);
        no_seeds.seeds.clear();
        let mut no_machines = Scenario::scaled(10, 1);
        no_machines.machines = 0;
        let degenerate = [
            SweepRequest::new(no_seeds, vec![SchedulerKind::Fifo]),
            SweepRequest::new(Scenario::scaled(10, 1), Vec::new()),
            SweepRequest::new(no_machines, vec![SchedulerKind::Fifo]),
        ];
        let mut input = String::new();
        for request in &degenerate {
            match request.to_json() {
                JsonValue::Object(mut map) => {
                    map.insert("cmd".into(), JsonValue::String("sweep".into()));
                    input.push_str(&JsonValue::Object(map).to_compact_string());
                    input.push('\n');
                }
                _ => unreachable!(),
            }
        }
        input.push_str(&request_line());
        input.push('\n');
        let (lines, stats) = session(&server, &input);
        assert_eq!(stats.errors, 3);
        assert_eq!(stats.requests, 1);
        for line in &lines[..3] {
            assert_eq!(line.field("ok").unwrap().as_bool(), Some(false));
        }
        assert_eq!(lines[3].field("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn panicking_sweeps_are_answered_not_fatal() {
        // A profile that passes shape validation but panics inside the
        // generator (class fractions summing to zero): the backstop turns
        // the panic into an error line and the next request still works.
        let server = server();
        let mut scenario = Scenario::scaled(10, 1);
        for class in &mut scenario.profile.classes {
            class.fraction = 0.0;
        }
        let bad = match SweepRequest::new(scenario, vec![SchedulerKind::Fifo]).to_json() {
            JsonValue::Object(mut map) => {
                map.insert("cmd".into(), JsonValue::String("sweep".into()));
                JsonValue::Object(map).to_compact_string()
            }
            _ => unreachable!(),
        };
        let input = format!("{bad}\n{}\n", request_line());
        let (lines, stats) = session(&server, &input);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.requests, 1);
        assert_eq!(lines[0].field("ok").unwrap().as_bool(), Some(false));
        let message = lines[0].field("error").unwrap().as_str().unwrap();
        assert!(message.contains("sweep failed"), "got {message}");
        assert_eq!(lines[1].field("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn oversized_lines_are_dropped_with_an_error_and_serving_continues() {
        let server = server();
        let request = request_line();
        let options = ServeOptions {
            max_line_bytes: request.len(),
            ..ServeOptions::default()
        };
        // A hostile line well over the limit (never valid JSON, never
        // buffered whole), then a legitimate request on the same stream.
        let input = format!("{}\n{request}\n", "x".repeat(8 * 1024 + request.len()));
        let mut out = Vec::new();
        let stats = serve_lines_with(&server, input.as_bytes(), &mut out, options).unwrap();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.requests, 1);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<JsonValue> = text.lines().map(|l| JsonValue::parse(l).unwrap()).collect();
        assert_eq!(lines[0].field("ok").unwrap().as_bool(), Some(false));
        let message = lines[0].field("error").unwrap().as_str().unwrap();
        assert!(message.contains("bytes and was dropped"), "got {message}");
        assert_eq!(lines[1].field("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn line_exactly_at_the_limit_is_served() {
        let server = server();
        let request = request_line();
        let options = ServeOptions {
            max_line_bytes: request.len(),
            ..ServeOptions::default()
        };
        let input = format!("{request}\n");
        let mut out = Vec::new();
        let stats = serve_lines_with(&server, input.as_bytes(), &mut out, options).unwrap();
        assert_eq!((stats.requests, stats.errors), (1, 0));
    }

    #[test]
    fn over_cap_sweeps_are_rejected_before_simulation() {
        let server = server();
        let options = ServeOptions {
            max_cells: 1,
            ..ServeOptions::default()
        };
        // Two schedulers × one seed = two cells: over the cap of one.
        let request = SweepRequest::new(
            Scenario::scaled(12, 1),
            vec![SchedulerKind::Fifo, SchedulerKind::Restart],
        );
        let big = match request.to_json() {
            JsonValue::Object(mut map) => {
                map.insert("cmd".into(), JsonValue::String("sweep".into()));
                JsonValue::Object(map).to_compact_string()
            }
            _ => unreachable!(),
        };
        let input = format!("{big}\n{}\n", request_line());
        let mut out = Vec::new();
        let stats = serve_lines_with(&server, input.as_bytes(), &mut out, options).unwrap();
        assert_eq!((stats.errors, stats.requests), (1, 1));
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<JsonValue> = text.lines().map(|l| JsonValue::parse(l).unwrap()).collect();
        let message = lines[0].field("error").unwrap().as_str().unwrap();
        assert!(message.contains("per-request cap"), "got {message}");
        assert_eq!(lines[1].field("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn request_parsing_rejects_non_object_cmds() {
        assert!(Request::from_json(&JsonValue::Null).is_err());
        let bad_cmd = JsonValue::object([("cmd", 5u64.to_json())]);
        assert!(Request::from_json(&bad_cmd).is_err());
        let stats = JsonValue::object([("cmd", JsonValue::String("stats".into()))]);
        assert_eq!(Request::from_json(&stats).unwrap(), Request::Stats);
    }
}
