//! Line-delimited JSON protocol: one request per input line, one response
//! per output line.
//!
//! The protocol is transport-agnostic ([`serve_lines`] takes any
//! `BufRead`/`Write` pair); the `serve` binary wires it to stdin/stdout so
//! external tooling can drive sweeps with nothing but a pipe:
//!
//! ```text
//! {"cmd":"sweep","scenario":{...},"schedulers":["Fifo",{"SrptMsC":{"epsilon":0.6,"r":3}}]}
//! → {"ok":true,"cmd":"sweep","response":{"cells":[...],"averages":[...],"cache_hits":0,...}}
//! {"cmd":"stats"}
//! → {"ok":true,"cmd":"stats","cache":{"entries":20,"hits":0,"misses":20,"stores":20,...}}
//! {"cmd":"shutdown"}
//! → {"ok":true,"cmd":"shutdown"}
//! ```
//!
//! Malformed lines produce `{"ok":false,"error":"..."}` and the loop keeps
//! serving — a multi-tenant stdin feed must never be taken down by one bad
//! request. Blank lines are ignored; EOF ends the loop like `shutdown`.

use crate::service::{SweepRequest, SweepServer};
use mapreduce_experiments::cache::OutcomeCache;
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use std::io::{BufRead, Write};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) one sweep.
    Sweep(SweepRequest),
    /// Report cache statistics.
    Stats,
    /// Stop serving after acknowledging.
    Shutdown,
}

impl FromJson for Request {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let cmd = value
            .field("cmd")?
            .as_str()
            .ok_or_else(|| JsonError::new("`cmd` must be a string"))?;
        match cmd {
            "sweep" => Ok(Request::Sweep(SweepRequest::from_json(value)?)),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError::new(format!("unknown cmd `{other}`"))),
        }
    }
}

/// Accounting of one [`serve_lines`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests served successfully (sweeps and stats).
    pub requests: usize,
    /// Lines rejected with an error response.
    pub errors: usize,
    /// Whether the session ended via an explicit `shutdown` (vs EOF).
    pub shutdown: bool,
}

/// Serializes the `stats` response body for a server's cache.
fn cache_stats_json(server: &SweepServer) -> JsonValue {
    let cache = server.cache();
    let stats = cache.stats();
    JsonValue::object([
        ("entries", cache.len().to_json()),
        ("hits", stats.hits.to_json()),
        ("misses", stats.misses.to_json()),
        ("stores", stats.stores.to_json()),
        ("evicted", cache.evicted().to_json()),
        ("skipped_lines", cache.skipped_lines().to_json()),
        (
            "path",
            match cache.path() {
                Some(path) => JsonValue::String(path.to_string_lossy().into_owned()),
                None => JsonValue::Null,
            },
        ),
    ])
}

fn write_line<W: Write>(writer: &mut W, value: &JsonValue) -> std::io::Result<()> {
    writeln!(writer, "{}", value.to_compact_string())?;
    writer.flush()
}

/// Serves line-delimited requests from `reader`, writing one response line
/// each to `writer`, until EOF or a `shutdown` request.
///
/// # Errors
/// Returns an error only for transport I/O failures; malformed request
/// content is answered with an `{"ok":false,...}` line instead.
pub fn serve_lines<R: BufRead, W: Write>(
    server: &SweepServer,
    reader: R,
    mut writer: W,
) -> std::io::Result<ServeStats> {
    let mut stats = ServeStats::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = JsonValue::parse(&line)
            .map_err(|e| e.to_string())
            .and_then(|v| Request::from_json(&v).map_err(|e| e.to_string()));
        match request {
            Err(message) => {
                stats.errors += 1;
                write_line(
                    &mut writer,
                    &JsonValue::object([("ok", false.to_json()), ("error", message.to_json())]),
                )?;
            }
            Ok(Request::Sweep(sweep)) => {
                // Degenerate requests are rejected up front; anything that
                // still panics inside the simulation (a stalled scheduler,
                // an invalid generator profile) is caught and answered as
                // an error line — one tenant's bad request must never take
                // the server down.
                let result = sweep.validate().and_then(|()| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.submit(&sweep)))
                        .map_err(|payload| {
                            let message = payload
                                .downcast_ref::<String>()
                                .map(String::as_str)
                                .or_else(|| payload.downcast_ref::<&str>().copied())
                                .unwrap_or("sweep panicked");
                            format!("sweep failed: {message}")
                        })
                });
                match result {
                    Ok(response) => {
                        stats.requests += 1;
                        write_line(
                            &mut writer,
                            &JsonValue::object([
                                ("ok", true.to_json()),
                                ("cmd", JsonValue::String("sweep".into())),
                                ("response", response.to_json()),
                            ]),
                        )?;
                    }
                    Err(message) => {
                        stats.errors += 1;
                        write_line(
                            &mut writer,
                            &JsonValue::object([
                                ("ok", false.to_json()),
                                ("error", message.to_json()),
                            ]),
                        )?;
                    }
                }
            }
            Ok(Request::Stats) => {
                stats.requests += 1;
                write_line(
                    &mut writer,
                    &JsonValue::object([
                        ("ok", true.to_json()),
                        ("cmd", JsonValue::String("stats".into())),
                        ("cache", cache_stats_json(server)),
                    ]),
                )?;
            }
            Ok(Request::Shutdown) => {
                stats.shutdown = true;
                write_line(
                    &mut writer,
                    &JsonValue::object([
                        ("ok", true.to_json()),
                        ("cmd", JsonValue::String("shutdown".into())),
                    ]),
                )?;
                break;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::service::SweepResponse;
    use mapreduce_experiments::{Scenario, SchedulerKind};

    fn server() -> SweepServer {
        SweepServer::new(ResultCache::in_memory())
    }

    fn request_line() -> String {
        let request = SweepRequest::new(Scenario::scaled(12, 1), vec![SchedulerKind::Fifo]);
        match request.to_json() {
            JsonValue::Object(mut map) => {
                map.insert("cmd".into(), JsonValue::String("sweep".into()));
                JsonValue::Object(map).to_compact_string()
            }
            _ => unreachable!("requests serialize to objects"),
        }
    }

    /// Runs a scripted session and returns the response lines.
    fn session(server: &SweepServer, input: &str) -> (Vec<JsonValue>, ServeStats) {
        let mut out = Vec::new();
        let stats = serve_lines(server, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines = text
            .lines()
            .map(|l| JsonValue::parse(l).expect("every response line is JSON"))
            .collect();
        (lines, stats)
    }

    #[test]
    fn sweep_stats_and_shutdown_round_trip() {
        let server = server();
        let input = format!(
            "{}\n\n{}\n{{\"cmd\":\"stats\"}}\n{{\"cmd\":\"shutdown\"}}\nignored after shutdown\n",
            request_line(),
            request_line()
        );
        let (lines, stats) = session(&server, &input);
        assert_eq!(lines.len(), 4);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 0);
        assert!(stats.shutdown);

        // Cold sweep simulates, warm sweep is served entirely from cache —
        // with bit-identical cells.
        let cold = SweepResponse::from_json(lines[0].field("response").unwrap()).unwrap();
        let warm = SweepResponse::from_json(lines[1].field("response").unwrap()).unwrap();
        assert_eq!(cold.simulated, 1);
        assert_eq!(warm.simulated, 0);
        assert_eq!(warm.cache_hits, 1);
        assert_eq!(warm.cells[0].summary, cold.cells[0].summary);
        assert!(warm.cells[0].from_cache);
        assert!(!cold.cells[0].from_cache);

        let cache = lines[2].field("cache").unwrap();
        assert_eq!(cache.field("entries").unwrap().as_u64(), Some(1));
        assert_eq!(cache.field("path").unwrap(), &JsonValue::Null);
        assert_eq!(lines[3].field("cmd").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn malformed_lines_get_error_responses_and_serving_continues() {
        let server = server();
        let input = format!(
            "not json\n{{\"cmd\":\"nope\"}}\n{{\"nocmd\":1}}\n{}\n",
            request_line()
        );
        let (lines, stats) = session(&server, &input);
        assert_eq!(lines.len(), 4);
        assert_eq!(stats.errors, 3);
        assert_eq!(stats.requests, 1);
        assert!(!stats.shutdown, "EOF, not shutdown");
        for line in &lines[..3] {
            assert_eq!(line.field("ok").unwrap().as_bool(), Some(false));
            assert!(line.field("error").is_ok());
        }
        assert_eq!(lines[3].field("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn degenerate_sweeps_get_error_lines_not_crashes() {
        let server = server();
        // Empty seeds, empty scheduler list, zero machines: all well-formed
        // JSON, all rejected by validation; the server keeps serving.
        let mut no_seeds = Scenario::scaled(10, 1);
        no_seeds.seeds.clear();
        let mut no_machines = Scenario::scaled(10, 1);
        no_machines.machines = 0;
        let degenerate = [
            SweepRequest::new(no_seeds, vec![SchedulerKind::Fifo]),
            SweepRequest::new(Scenario::scaled(10, 1), Vec::new()),
            SweepRequest::new(no_machines, vec![SchedulerKind::Fifo]),
        ];
        let mut input = String::new();
        for request in &degenerate {
            match request.to_json() {
                JsonValue::Object(mut map) => {
                    map.insert("cmd".into(), JsonValue::String("sweep".into()));
                    input.push_str(&JsonValue::Object(map).to_compact_string());
                    input.push('\n');
                }
                _ => unreachable!(),
            }
        }
        input.push_str(&request_line());
        input.push('\n');
        let (lines, stats) = session(&server, &input);
        assert_eq!(stats.errors, 3);
        assert_eq!(stats.requests, 1);
        for line in &lines[..3] {
            assert_eq!(line.field("ok").unwrap().as_bool(), Some(false));
        }
        assert_eq!(lines[3].field("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn panicking_sweeps_are_answered_not_fatal() {
        // A profile that passes shape validation but panics inside the
        // generator (class fractions summing to zero): the backstop turns
        // the panic into an error line and the next request still works.
        let server = server();
        let mut scenario = Scenario::scaled(10, 1);
        for class in &mut scenario.profile.classes {
            class.fraction = 0.0;
        }
        let bad = match SweepRequest::new(scenario, vec![SchedulerKind::Fifo]).to_json() {
            JsonValue::Object(mut map) => {
                map.insert("cmd".into(), JsonValue::String("sweep".into()));
                JsonValue::Object(map).to_compact_string()
            }
            _ => unreachable!(),
        };
        let input = format!("{bad}\n{}\n", request_line());
        let (lines, stats) = session(&server, &input);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.requests, 1);
        assert_eq!(lines[0].field("ok").unwrap().as_bool(), Some(false));
        let message = lines[0].field("error").unwrap().as_str().unwrap();
        assert!(message.contains("sweep failed"), "got {message}");
        assert_eq!(lines[1].field("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn request_parsing_rejects_non_object_cmds() {
        assert!(Request::from_json(&JsonValue::Null).is_err());
        let bad_cmd = JsonValue::object([("cmd", 5u64.to_json())]);
        assert!(Request::from_json(&bad_cmd).is_err());
        let stats = JsonValue::object([("cmd", JsonValue::String("stats".into()))]);
        assert_eq!(Request::from_json(&stats).unwrap(), Request::Stats);
    }
}
