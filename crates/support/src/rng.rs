//! Deterministic pseudo-random number generation and the handful of
//! distributions the workspace samples from.
//!
//! The container this repo builds in has no network access to crates.io, so
//! instead of `rand`/`rand_chacha`/`rand_distr` we carry a small, fully
//! deterministic generator of our own: [`SimRng`] is xoshiro256++ seeded
//! through SplitMix64, which gives high-quality 64-bit streams with a trivial
//! amount of code. Every simulation and trace-generation seed maps to an
//! independent stream, so multi-seed experiment sweeps are reproducible
//! bit-for-bit regardless of how many threads execute them.

use std::ops::{Range, RangeInclusive};

/// The random-source trait consumed by samplers.
///
/// Mirrors the subset of `rand::Rng` this workspace uses (`gen_range`,
/// `gen_bool`) so call sites read identically to the rand-based idiom.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling keeps the value in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.gen_f64() < p
    }

    /// A uniform draw from a range. Supports the same half-open and inclusive
    /// integer/float ranges the call sites use.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + (self.end - self.start) * rng.gen_f64();
        // Guard against rounding up to the excluded end point.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + (end - start) * rng.gen_f64()
    }
}

/// Uniform integer in `[0, bound)` by multiply-shift (Lemire); `bound > 0`.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// The workspace's deterministic generator: xoshiro256++.
///
/// ```
/// use mapreduce_support::rng::{Rng, SimRng};
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the four state words; this is
        // the seeding scheme recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent stream for a sub-task (e.g. one seed of a
    /// multi-seed sweep) without correlating with the parent stream.
    pub fn derive_stream(&self, stream: u64) -> Self {
        let mut child = self.clone();
        let mixed = child.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        SimRng::seed_from_u64(mixed)
    }
}

impl Rng for SimRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    /// Returns an error if the parameters are non-finite or `std_dev < 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, &'static str> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err("invalid normal parameters");
        }
        Ok(Normal { mean, std_dev })
    }

    /// Draws one sample (Box–Muller transform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// A log-normal distribution parameterised by the underlying normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution from the mean `mu` and standard deviation
    /// `sigma` of the underlying normal.
    ///
    /// # Errors
    /// Returns an error if the parameters are non-finite or `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, &'static str> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err("invalid log-normal parameters");
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via the Box–Muller transform. The second draw of
/// the pair is discarded so sampling stays stateless.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = rng.gen_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_respect_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u64..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(0usize..=4);
            assert!(b <= 4);
            let c = rng.gen_range(5u32..=5);
            assert_eq!(c, 5);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SimRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from_u64(5);
        let dist = Normal::new(10.0, 3.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_moments_are_close() {
        let mut rng = SimRng::seed_from_u64(6);
        // mu/sigma chosen so the log-normal mean is exp(mu + sigma^2/2).
        let dist = LogNormal::new(1.0, 0.5).unwrap();
        let expected_mean = (1.0f64 + 0.125).exp();
        let n = 300_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - expected_mean).abs() / expected_mean < 0.02,
            "mean {mean} vs {expected_mean}"
        );
    }

    #[test]
    fn invalid_distribution_parameters_are_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn derived_streams_differ_from_parent_and_each_other() {
        let parent = SimRng::seed_from_u64(9);
        let mut a = parent.derive_stream(0);
        let mut b = parent.derive_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
