//! A miniature property-testing harness with a `proptest`-flavoured surface.
//!
//! The real `proptest` crate is not available offline, so this module
//! provides the small subset the workspace's tests use: the [`proptest!`]
//! macro wrapping `fn name(arg in strategy, …) { … }` test bodies, range and
//! collection strategies, `prop_assert!`/`prop_assert_eq!`, and a
//! [`ProptestConfig`] with a configurable case count. Inputs are drawn from a
//! deterministic per-test RNG stream (seeded from the test name), so failures
//! are reproducible; there is no shrinking — the failing inputs are printed
//! instead.

use crate::rng::{Rng, SimRng};
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(…)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SimRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u64, u32, usize);

/// Collection strategies (`collection::vec`).
pub mod collection {
    use super::{Strategy, *};

    /// A strategy producing `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SimRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic 64-bit FNV-1a hash used to derive a per-test RNG seed from
/// the test's name.
pub const fn fnv1a(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use super::collection;
    pub use super::{ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests. See the module documentation.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::proptest::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::proptest::ProptestConfig = $cfg;
                let mut rng = $crate::rng::SimRng::seed_from_u64(
                    $crate::proptest::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::proptest::Strategy::sample(&($strategy), &mut rng);
                    )*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg,)*
                    );
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = __result {
                        panic!(
                            "property {} failed at case {}/{} with inputs [{}]: {}",
                            stringify!($name),
                            __case + 1,
                            config.cases,
                            __inputs,
                            message,
                        );
                    }
                }
            }
        )*
    };
}

/// Property-style assertion: fails the current case (with its inputs printed)
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Property-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn vec_strategy_respects_length(values in collection::vec(0.5f64..2.0, 2..6)) {
            prop_assert!((2..6).contains(&values.len()));
            for v in &values {
                prop_assert!((0.5..2.0).contains(v), "value {v} out of range");
            }
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("always_fails"), "message: {message}");
        assert!(message.contains("x ="), "message: {message}");
    }

    #[test]
    fn fnv1a_is_stable_and_distinct() {
        assert_eq!(super::fnv1a("abc"), super::fnv1a("abc"));
        assert_ne!(super::fnv1a("abc"), super::fnv1a("abd"));
    }
}
