//! Content hashing: an FNV-1a 128-bit hasher and the [`Fingerprint`] type.
//!
//! The experiment service addresses cached simulation results by a **stable
//! content hash** over everything that determines a cell's outcome
//! (simulation config, workload description, scheduler id, seed). With no
//! crates.io access there is no `sha2`/`siphasher`, so this module provides
//! the small, auditable stand-in: FNV-1a with the 128-bit parameters of
//! Fowler–Noll–Vo. The 128-bit state makes accidental collisions across a
//! result cache of any realistic size a non-issue (the cache is a
//! memoisation layer for a deterministic simulator, not a security
//! boundary — FNV is *not* collision-resistant against adversaries).
//!
//! Hashes are **stable across runs, platforms and versions of this
//! workspace**: the canonical input is a compact JSON document (object keys
//! sorted by [`crate::json`]'s `BTreeMap`), and the golden tests in
//! `mapreduce-experiments` pin concrete fingerprints so an accidental change
//! to the canonicalisation shows up as a test failure, not as a silently
//! cold cache.

use crate::json::{FromJson, JsonError, JsonValue, ToJson};
use std::fmt;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime (`2^88 + 2^8 + 0x3b`).
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental FNV-1a 128-bit hasher.
///
/// ```
/// use mapreduce_support::hash::Fnv1a128;
/// let mut h = Fnv1a128::new();
/// h.write(b"hello ");
/// h.write(b"world");
/// assert_eq!(h.finish(), Fnv1a128::hash(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a128 {
    state: u128,
}

impl Default for Fnv1a128 {
    fn default() -> Self {
        Fnv1a128::new()
    }
}

impl Fnv1a128 {
    /// A hasher in the initial (offset-basis) state.
    pub fn new() -> Self {
        Fnv1a128 { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the state, one byte at a time (xor, then multiply
    /// by the FNV prime — the "1a" variant).
    pub fn write(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state ^= b as u128;
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.state = state;
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// One-shot convenience: the FNV-1a 128-bit hash of `bytes`.
    pub fn hash(bytes: &[u8]) -> u128 {
        let mut h = Fnv1a128::new();
        h.write(bytes);
        h.finish()
    }
}

/// A 128-bit content fingerprint, rendered as 32 lowercase hex digits.
///
/// Fingerprints identify simulation cells in the experiment service's result
/// cache: equal content ⇒ equal fingerprint ⇒ the cached outcome can be
/// reused instead of re-simulating. Build one from canonical bytes with
/// [`Fingerprint::of_bytes`] or — the convention used throughout the
/// workspace — from a canonical JSON document with [`Fingerprint::of_json`]
/// (compact serialization, object keys already sorted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Fingerprint of raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Fingerprint(Fnv1a128::hash(bytes))
    }

    /// Fingerprint of a JSON document's canonical (compact) serialization.
    ///
    /// [`JsonValue`] objects keep their keys sorted, so two structurally
    /// equal documents always produce the same bytes — this is what makes
    /// the fingerprint content-addressed rather than representation-
    /// addressed.
    pub fn of_json(value: &JsonValue) -> Self {
        Self::of_bytes(value.to_compact_string().as_bytes())
    }

    /// The 32-digit lowercase hex rendering.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the exact 32-digit hex rendering produced by
    /// [`Fingerprint::to_hex`]. Returns `None` for any other shape.
    pub fn from_hex(text: &str) -> Option<Self> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl ToJson for Fingerprint {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.to_hex())
    }
}

impl FromJson for Fingerprint {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let text = value
            .as_str()
            .ok_or_else(|| JsonError::new("expected fingerprint string"))?;
        Fingerprint::from_hex(text)
            .ok_or_else(|| JsonError::new(format!("invalid fingerprint `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_hashes_to_the_offset_basis() {
        assert_eq!(Fnv1a128::hash(b""), FNV_OFFSET);
        assert_eq!(Fnv1a128::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn single_byte_matches_the_fnv_1a_definition() {
        // One round by hand: (offset ^ byte) * prime.
        let expected = (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME);
        assert_eq!(Fnv1a128::hash(b"a"), expected);
    }

    #[test]
    fn incremental_writes_match_one_shot() {
        let mut h = Fnv1a128::new();
        h.write(b"scenario:");
        h.write_u64(2015);
        h.write(b"/fifo");
        let mut flat = b"scenario:".to_vec();
        flat.extend_from_slice(&2015u64.to_le_bytes());
        flat.extend_from_slice(b"/fifo");
        assert_eq!(h.finish(), Fnv1a128::hash(&flat));
    }

    #[test]
    fn distinct_inputs_produce_distinct_hashes() {
        let inputs: &[&[u8]] = &[b"", b"a", b"b", b"ab", b"ba", b"fifo", b"fif\x00o"];
        for (i, a) in inputs.iter().enumerate() {
            for b in &inputs[i + 1..] {
                assert_ne!(Fnv1a128::hash(a), Fnv1a128::hash(b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn fingerprint_hex_roundtrip() {
        let fp = Fingerprint::of_bytes(b"cell");
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(fp.to_string(), hex);
        // Leading zeros are preserved.
        let small = Fingerprint(0x2a);
        assert_eq!(small.to_hex(), "0000000000000000000000000000002a");
        assert_eq!(Fingerprint::from_hex(&small.to_hex()), Some(small));
    }

    #[test]
    fn fingerprint_rejects_malformed_hex() {
        for bad in [
            "",
            "zz",
            "123",
            &"f".repeat(33),
            "+123456789abcdef0123456789abcdef",
        ] {
            assert_eq!(Fingerprint::from_hex(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn fingerprint_json_roundtrip() {
        let fp = Fingerprint::of_bytes(b"json");
        let back = Fingerprint::from_json(&fp.to_json()).unwrap();
        assert_eq!(back, fp);
        assert!(Fingerprint::from_json(&JsonValue::Integer(3)).is_err());
        assert!(Fingerprint::from_json(&JsonValue::String("xyz".into())).is_err());
    }

    #[test]
    fn of_json_is_representation_independent() {
        // Two structurally equal documents hash identically regardless of
        // the field order they were built in (keys are sorted).
        let a = JsonValue::object([("b", 1u64.to_json()), ("a", 2u64.to_json())]);
        let b = JsonValue::object([("a", 2u64.to_json()), ("b", 1u64.to_json())]);
        assert_eq!(Fingerprint::of_json(&a), Fingerprint::of_json(&b));
        let c = JsonValue::object([("a", 2u64.to_json()), ("b", 7u64.to_json())]);
        assert_ne!(Fingerprint::of_json(&a), Fingerprint::of_json(&c));
    }
}
