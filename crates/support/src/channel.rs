//! Bounded single-producer / single-consumer channel.
//!
//! [`spsc_channel`] backs the simulation engine's pipeline-parallel run
//! stages: a producer thread synthesizes/parses jobs ahead of the event loop
//! and a consumer thread folds completed records, each talking to the loop
//! through one of these channels. Built on `Mutex` + `Condvar` only (the
//! workspace is dependency-free, mirroring [`crate::parallel`]), with
//! blocking sends once `capacity` items are queued — backpressure is what
//! keeps a ten-million-job source from materialising the workload.
//!
//! Disconnect semantics are what the pipeline's shutdown paths rely on:
//! * dropping the [`SpscReceiver`] makes every later `send` fail, so a
//!   producer blocked on a full queue wakes up and exits instead of
//!   deadlocking when the engine stops consuming early (e.g. on error);
//! * dropping the [`SpscSender`] makes `recv` drain the queue and then
//!   return `None`, so a consumer terminates exactly once the stream ends.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Returned by [`SpscSender::send`] when the receiver was dropped; carries
/// the unsent value back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    sender_done: bool,
    receiver_gone: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item is queued or the sender hangs up.
    not_empty: Condvar,
    /// Signalled when an item is taken or the receiver hangs up.
    not_full: Condvar,
}

/// The sending half of a bounded SPSC channel.
pub struct SpscSender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded SPSC channel.
pub struct SpscReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel holding at most `capacity` in-flight items.
///
/// # Panics
/// Panics if `capacity` is zero (a zero-capacity rendezvous channel cannot
/// make progress with blocking sends).
pub fn spsc_channel<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    assert!(capacity > 0, "spsc channel capacity must be positive");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            sender_done: false,
            receiver_gone: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        SpscSender {
            shared: Arc::clone(&shared),
        },
        SpscReceiver { shared },
    )
}

impl<T> SpscSender<T> {
    /// Queues `value`, blocking while the channel is full. Fails (returning
    /// the value) once the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receiver_gone {
                return Err(SendError(value));
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(value);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).unwrap();
        }
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.sender_done = true;
        drop(inner);
        self.shared.not_empty.notify_one();
    }
}

impl<T> SpscReceiver<T> {
    /// Takes the next item, blocking while the channel is empty. Returns
    /// `None` once the queue is drained *and* the sender has been dropped.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if inner.sender_done {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.receiver_gone = true;
        drop(inner);
        self.shared.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order() {
        let (tx, rx) = spsc_channel(4);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let (tx, rx) = spsc_channel(2);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // The third send blocks until the consumer takes one; the
                // test completes only if the wakeup chain works.
                for i in 0..3 {
                    tx.send(i).unwrap();
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(rx.recv(), Some(0));
            assert_eq!(rx.recv(), Some(1));
            assert_eq!(rx.recv(), Some(2));
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = spsc_channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn dropped_receiver_wakes_blocked_sender() {
        let (tx, rx) = spsc_channel::<u32>(1);
        tx.send(0).unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || tx.send(1));
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(rx);
            assert_eq!(handle.join().unwrap(), Err(SendError(1)));
        });
    }

    #[test]
    fn dropped_sender_drains_then_ends() {
        let (tx, rx) = spsc_channel(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let result = std::panic::catch_unwind(|| spsc_channel::<u32>(0));
        assert!(result.is_err());
    }
}
