//! A minimal JSON value model, parser and writer.
//!
//! The workspace persists traces and benchmark results as JSON; with no
//! crates.io access there is no `serde_json`, so this module provides the
//! small subset the repo needs: a [`JsonValue`] tree, a strict parser, a
//! compact and a pretty writer, and the [`ToJson`]/[`FromJson`] traits that
//! domain types implement by hand.
//!
//! Conventions follow serde's defaults so the files look familiar: structs
//! are objects keyed by field name, unit enum variants are strings, and data
//! variants are single-key objects (`{"Pareto": {"scale": …, "shape": …}}`).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number with no fractional part or exponent, stored exactly.
    /// `i128` covers the full `u64` and `i64` ranges, so 64-bit seeds and
    /// slots roundtrip without the 2^53 precision cliff of `f64`.
    Integer(i128),
    /// Any other JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are kept sorted for deterministic output.
    Object(BTreeMap<String, JsonValue>),
}

impl PartialEq for JsonValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (JsonValue::Null, JsonValue::Null) => true,
            (JsonValue::Bool(a), JsonValue::Bool(b)) => a == b,
            (JsonValue::Integer(a), JsonValue::Integer(b)) => a == b,
            (JsonValue::Number(a), JsonValue::Number(b)) => a == b,
            // Integral floats and integers compare numerically, so a value
            // written as `5` and reparsed compares equal to `Number(5.0)`.
            (JsonValue::Integer(i), JsonValue::Number(f))
            | (JsonValue::Number(f), JsonValue::Integer(i)) => *i as f64 == *f,
            (JsonValue::String(a), JsonValue::String(b)) => a == b,
            (JsonValue::Array(a), JsonValue::Array(b)) => a == b,
            (JsonValue::Object(a), JsonValue::Object(b)) => a == b,
            _ => false,
        }
    }
}

/// Error produced by [`JsonValue::parse`] and the [`FromJson`] impls.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a JSON document. The whole input must be consumed.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    /// Convenience constructor for an object.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Field of an object, if this is an object and the field exists.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Field of an object, as a [`FromJson`] error when missing.
    pub fn field(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            JsonValue::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Integer(i) => u64::try_from(*i).ok(),
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Integer(i) => out.push_str(&i.to_string()),
            JsonValue::Number(n) => out.push_str(&format_number(*n)),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Formats a number: integral values without a fractional part, everything
/// else through the shortest roundtrip representation Rust provides.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; fall back to null like serde_json does.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        let mut s = format!("{n}");
        // `{}` on f64 always includes a decimal point or exponent for
        // non-integral values, so the parse roundtrip is exact.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(JsonError::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid utf-8 in number"))?;
        // Integer-looking tokens keep full 64-bit+ precision.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(JsonValue::Integer(i));
            }
        }
        let n = text
            .parse::<f64>()
            .map_err(|_| JsonError::new(format!("invalid number `{text}`")))?;
        if !n.is_finite() {
            // JSON has no Inf/NaN; an overflowing literal is a malformed
            // document, not an infinite value.
            return Err(JsonError::new(format!("number out of range `{text}`")));
        }
        Ok(JsonValue::Number(n))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_u_escape()?;
                            let code = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by a
                                // \uDC00..DFFF low surrogate; combine them.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(JsonError::new("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_u_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::new("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(JsonError::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of unescaped bytes and validate
                    // it as UTF-8 once — validating from `pos` to the end of
                    // the document per character would make parsing
                    // quadratic, which multi-megabyte trace exports turn
                    // into hours.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape; on entry `pos` is at the
    /// `u`, on exit at the last hex digit.
    fn parse_u_escape(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| JsonError::new("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Types that can serialize themselves into a [`JsonValue`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> JsonValue;
}

/// Types that can reconstruct themselves from a [`JsonValue`].
pub trait FromJson: Sized {
    /// Parses `value` into `Self`.
    ///
    /// # Errors
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(value: &JsonValue) -> Result<Self, JsonError>;
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value
            .as_f64()
            .ok_or_else(|| JsonError::new("expected number"))
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Integer(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
                value
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| JsonError::new("expected unsigned integer"))
            }
        }
    )*};
}

impl_json_uint!(u64, u32, usize);

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        match value {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound_document() {
        let doc = JsonValue::object([
            ("name", JsonValue::String("trace \"x\"\n".into())),
            ("count", JsonValue::Number(42.0)),
            ("ratio", JsonValue::Number(0.125)),
            ("flag", JsonValue::Bool(true)),
            ("nothing", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![JsonValue::Number(1.0), JsonValue::Number(-2.5)]),
            ),
        ]);
        for text in [doc.to_compact_string(), doc.to_pretty_string()] {
            let back = JsonValue::parse(&text).unwrap();
            assert_eq!(back, doc, "failed for {text}");
        }
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for n in [0.0, 1.0, -1.0, 1e-9, 1234567.875, 9.0e14, 0.1 + 0.2] {
            let text = JsonValue::Number(n).to_compact_string();
            let back = JsonValue::parse(&text).unwrap();
            assert_eq!(back.as_f64(), Some(n), "failed for {text}");
        }
    }

    #[test]
    fn malformed_documents_error() {
        for text in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "not json", "\"abc"] {
            assert!(JsonValue::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn accessors() {
        let doc = JsonValue::parse(r#"{"a": 3, "b": "x", "c": [1], "d": true}"#).unwrap();
        assert_eq!(doc.field("a").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(doc.get("d").unwrap().as_bool(), Some(true));
        assert!(doc.field("missing").is_err());
        assert!(doc.get("a").unwrap().as_str().is_none());
    }

    #[test]
    fn primitive_tojson_fromjson_roundtrip() {
        assert_eq!(u64::from_json(&42u64.to_json()).unwrap(), 42);
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert_eq!(
            String::from_json(&"hi".to_string().to_json()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_json(&vec![1u32, 2].to_json()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<f64>::from_json(&JsonValue::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_json(&Some(2.0).to_json()).unwrap(),
            Some(2.0)
        );
        assert!(u32::from_json(&JsonValue::Number(-1.0)).is_err());
    }

    #[test]
    fn large_u64_values_roundtrip_exactly() {
        // Above 2^53 an f64 can no longer represent every integer; seeds and
        // slots are u64, so the Integer variant must carry them exactly.
        for v in [(1u64 << 53) + 1, u64::MAX, u64::MAX - 1] {
            let text = v.to_json().to_compact_string();
            let back = u64::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(back, v, "lost precision for {v}");
        }
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // U+1F600 as the escaped surrogate pair a standard `ensure_ascii`
        // JSON writer produces.
        let parsed = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
        // Unpaired or malformed surrogates are rejected, not mangled.
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\ud83dA""#).is_err());
        // A lone low surrogate is also invalid.
        assert!(JsonValue::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn overflowing_number_literals_are_rejected() {
        assert!(JsonValue::parse("1e999").is_err());
        assert!(JsonValue::parse("-1e999").is_err());
        // Large but representable stays fine.
        assert!(JsonValue::parse("1e308").is_ok());
    }

    #[test]
    fn integer_and_float_forms_compare_numerically() {
        assert_eq!(JsonValue::Integer(5), JsonValue::Number(5.0));
        assert_ne!(JsonValue::Integer(5), JsonValue::Number(5.5));
        let five = JsonValue::parse("5").unwrap();
        assert!(matches!(five, JsonValue::Integer(5)));
        assert_eq!(five.as_f64(), Some(5.0));
    }

    #[test]
    fn unicode_strings_survive() {
        let doc = JsonValue::String("µ → σ ✓".into());
        let back = JsonValue::parse(&doc.to_compact_string()).unwrap();
        assert_eq!(back, doc);
        let escaped = JsonValue::parse(r#""µ""#).unwrap();
        assert_eq!(escaped.as_str(), Some("µ"));
    }
}
