//! Self-contained foundation utilities for the task-cloning reproduction.
//!
//! This workspace builds in containers without crates.io access, so the
//! external crates a project like this would normally lean on are replaced by
//! small, auditable local implementations:
//!
//! * [`rng`] — deterministic xoshiro256++ generator plus the normal and
//!   log-normal samplers the workload model needs (stands in for
//!   `rand`/`rand_chacha`/`rand_distr`).
//! * [`json`] — a JSON value tree, parser and writer with hand-written
//!   [`json::ToJson`]/[`json::FromJson`] traits (stands in for
//!   `serde`/`serde_json`).
//! * [`hash`] — an FNV-1a 128-bit content hasher and the
//!   [`hash::Fingerprint`] type the experiment service's result cache is
//!   keyed by (stands in for `sha2`/`siphasher`-style crates).
//! * [`parallel`] — order-preserving fork-join map over scoped threads,
//!   honouring `RAYON_NUM_THREADS` (stands in for `rayon`/`crossbeam`).
//! * [`channel`] — bounded SPSC channel on `Mutex`+`Condvar` with
//!   disconnect-aware blocking send/recv, backing the engine's
//!   pipeline-parallel run stages (stands in for `crossbeam-channel`).
//! * [`proptest`] — a miniature property-testing harness with a
//!   `proptest`-flavoured macro surface.
//! * [`criterion`] — a miniature benchmark harness with a
//!   Criterion-flavoured API.
//!
//! Everything here is deliberately dependency-free and deterministic: the
//! acceptance bar for the experiment pipeline is bit-identical results across
//! thread counts and re-runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod criterion;
pub mod hash;
pub mod json;
pub mod parallel;
pub mod proptest;
pub mod rng;

pub use channel::{spsc_channel, SpscReceiver, SpscSender};
pub use hash::{Fingerprint, Fnv1a128};
pub use json::{FromJson, JsonError, JsonValue, ToJson};
pub use parallel::par_map;
pub use rng::{Rng, SimRng};
