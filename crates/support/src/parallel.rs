//! Deterministic fork-join parallelism over a work list.
//!
//! [`par_map`] fans the items of a slice out over a scoped thread pool and
//! returns the results **in input order**, so callers observe bit-identical
//! output no matter how many worker threads execute the closure. The thread
//! count honours `RAYON_NUM_THREADS` (the conventional knob, so existing
//! tooling and the acceptance tests can pin it to 1) and falls back to the
//! machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use for `len` items.
pub fn worker_threads(len: usize) -> usize {
    let configured = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    configured.unwrap_or(hardware).min(len.max(1))
}

/// Applies `f` to every item of `items` in parallel and returns the results
/// in input order.
///
/// The closure receives the item index alongside the item so callers can
/// derive per-item deterministic state (e.g. an RNG stream per seed). Results
/// are independent of the thread count by construction.
///
/// # Panics
/// Propagates the first panic raised inside `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = worker_threads(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<U>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(items.len()).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    local.push((idx, f(idx, &items[idx])));
                }
                let mut guard = results.lock().expect("a worker panicked");
                for (idx, value) in local {
                    guard[idx] = Some(value);
                }
            });
        }
    });

    results
        .into_inner()
        .expect("a worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(&items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn index_is_passed_through() {
        let items = vec!["a", "b", "c"];
        let tagged = par_map(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(tagged, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn worker_threads_is_positive_and_bounded() {
        assert!(worker_threads(0) >= 1);
        assert_eq!(worker_threads(1), 1);
        assert!(worker_threads(1000) >= 1);
    }
}
