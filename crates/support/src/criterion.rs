//! A miniature benchmark harness with a Criterion-flavoured surface.
//!
//! The benches under `crates/bench` were written against Criterion's API;
//! with no crates.io access this module supplies the subset they use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs a
//! short warm-up followed by `sample_size` timed iterations and prints
//! `name … mean [min .. max]`. Results are retained on the [`Criterion`]
//! value so benches can export them (e.g. `BENCH_engine.json`).

use std::fmt::Display;
use std::time::Instant;

/// Measured statistics of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark id (`group/parameter` or the bare function name).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration.
    pub min_ns: f64,
    /// Slowest observed iteration.
    pub max_ns: f64,
    /// Number of timed iterations.
    pub samples: usize,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

/// Sample-count override from the `MAPREDUCE_BENCH_SAMPLES` environment
/// variable, if set and parseable. It wins over both the default and any
/// explicit [`Criterion::sample_size`] call, so CI can run every bench in a
/// fast smoke mode (`MAPREDUCE_BENCH_SAMPLES=1`) without touching the bench
/// sources.
pub fn env_sample_override() -> Option<usize> {
    std::env::var("MAPREDUCE_BENCH_SAMPLES")
        .ok()?
        .parse::<usize>()
        .ok()
        .map(|n| n.max(1))
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: env_sample_override().unwrap_or(10),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark
    /// (`MAPREDUCE_BENCH_SAMPLES`, when set, overrides this).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = env_sample_override().unwrap_or_else(|| n.max(1));
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(id, self.sample_size, &mut f);
        self.results.push(result);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Every result measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.parameter);
        let sample_size = self.criterion.sample_size;
        let result = run_bench(&full, sample_size, &mut |b: &mut Bencher| f(b, input));
        self.criterion.results.push(result);
        self
    }

    /// Closes the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            parameter: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    rounds: usize,
}

/// Whether the untimed warm-up iteration runs. `MAPREDUCE_BENCH_WARMUP=0`
/// (or `false`) skips it — at tiers where one iteration takes tens of
/// minutes (`stream10m`), the warm-up doubles the cost of a run whose
/// single sample is already its own population.
pub fn env_warmup_enabled() -> bool {
    std::env::var("MAPREDUCE_BENCH_WARMUP")
        .map(|v| v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(true)
}

impl Bencher {
    /// Times `f`, once per configured sample after one untimed warm-up
    /// (skippable via `MAPREDUCE_BENCH_WARMUP=0`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up iteration (untimed): page in code and data.
        if env_warmup_enabled() {
            std::hint::black_box(f());
        }
        for _ in 0..self.rounds {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) -> BenchResult {
    let mut bencher = Bencher {
        samples_ns: Vec::with_capacity(sample_size),
        rounds: sample_size,
    };
    f(&mut bencher);
    let samples = &bencher.samples_ns;
    let (mean, min, max) = if samples.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        (mean, min, max)
    };
    println!(
        "bench {:<48} {:>12} [{} .. {}] ({} samples)",
        id,
        human_time(mean),
        human_time(min),
        human_time(max),
        samples.len()
    );
    BenchResult {
        id: id.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples: samples.len(),
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::criterion::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, Criterion-style. Arguments passed
/// by `cargo bench` (e.g. `--bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "smoke");
        assert_eq!(r.samples, 3);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
    }

    #[test]
    fn groups_prefix_the_id() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(0.5), &0.5, |b, &x| {
            b.iter(|| x * 2.0)
        });
        group.finish();
        assert_eq!(c.results()[0].id, "g/0.5");
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(500.0).ends_with("ns"));
        assert!(human_time(5_000.0).contains("µs"));
        assert!(human_time(5_000_000.0).contains("ms"));
        assert!(human_time(5e9).ends_with(" s"));
    }
}
