//! The [`Trace`] container: an ordered set of jobs plus summary statistics and
//! JSON import/export.
//!
//! The paper's evaluation extracts ~6 000 jobs over a 12-hour window from the
//! Google cluster-usage trace and reports the statistics of Table II. A
//! [`TraceStats`] value reproduces exactly those rows so that Table II can be
//! regenerated from any trace, synthetic or imported.

use crate::ids::JobId;
use crate::job::JobSpec;
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Error type for trace construction and I/O.
#[derive(Debug)]
pub enum TraceError {
    /// A job failed validation (duplicate/inconsistent ids, bad workloads…).
    InvalidJob(String),
    /// Underlying I/O failure while reading or writing a trace file.
    Io(std::io::Error),
    /// The file contents were not a valid JSON trace.
    Format(JsonError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidJob(msg) => write!(f, "invalid job in trace: {msg}"),
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format(e) => write!(f, "trace format error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Format(e) => Some(e),
            TraceError::InvalidJob(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<JsonError> for TraceError {
    fn from(e: JsonError) -> Self {
        TraceError::Format(e)
    }
}

/// An ordered collection of [`JobSpec`]s, sorted by arrival time.
///
/// Job ids inside a trace are always the dense indices `0..n` so that the
/// simulator can use them directly as vector indices; [`Trace::new`] enforces
/// (re-assigns) this invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    jobs: Vec<JobSpec>,
}

impl Trace {
    /// Builds a trace from a set of jobs: sorts them by arrival time
    /// (ties broken by original order), re-assigns dense job ids, and
    /// validates every job.
    ///
    /// # Errors
    /// Returns [`TraceError::InvalidJob`] if any job fails validation.
    pub fn new(mut jobs: Vec<JobSpec>) -> Result<Self, TraceError> {
        jobs.sort_by_key(|j| j.arrival);
        for (idx, job) in jobs.iter_mut().enumerate() {
            let new_id = JobId::new(idx as u64);
            job.id = new_id;
            for (i, t) in job.map_tasks.iter_mut().enumerate() {
                t.id.job = new_id;
                t.id.index = i as u32;
            }
            for (i, t) in job.reduce_tasks.iter_mut().enumerate() {
                t.id.job = new_id;
                t.id.index = i as u32;
            }
            job.validate().map_err(TraceError::InvalidJob)?;
        }
        Ok(Trace { jobs })
    }

    /// An empty trace (useful as a base case in tests).
    pub fn empty() -> Self {
        Trace { jobs: Vec::new() }
    }

    /// The jobs, sorted by arrival time, with dense ids.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Consumes the trace, returning the owned jobs (arrival order, dense
    /// ids). Lets [`crate::source::MaterializedSource`] yield by move.
    pub fn into_jobs(self) -> Vec<JobSpec> {
        self.jobs
    }

    /// Looks a job up by id.
    pub fn job(&self, id: JobId) -> Option<&JobSpec> {
        self.jobs.get(id.as_usize())
    }

    /// Number of jobs in the trace.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace contains no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterates over the jobs in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, JobSpec> {
        self.jobs.iter()
    }

    /// Total number of tasks across all jobs.
    pub fn total_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.num_tasks()).sum()
    }

    /// Returns a new trace containing only the jobs selected by `keep`.
    pub fn filtered<F: FnMut(&JobSpec) -> bool>(&self, mut keep: F) -> Trace {
        let jobs: Vec<JobSpec> = self.jobs.iter().filter(|j| keep(j)).cloned().collect();
        Trace::new(jobs).expect("filtering a valid trace keeps it valid")
    }

    /// Returns a new trace with only the first `n` jobs (by arrival).
    pub fn truncated(&self, n: usize) -> Trace {
        let jobs: Vec<JobSpec> = self.jobs.iter().take(n).cloned().collect();
        Trace::new(jobs).expect("truncating a valid trace keeps it valid")
    }

    /// Returns a new trace whose arrival times are all reset to zero — the
    /// bulk-arrival workload of the offline setting (Section IV).
    pub fn as_bulk_arrival(&self) -> Trace {
        let jobs: Vec<JobSpec> = self
            .jobs
            .iter()
            .cloned()
            .map(|mut j| {
                j.arrival = 0;
                j
            })
            .collect();
        Trace::new(jobs).expect("bulk-arrival conversion keeps the trace valid")
    }

    /// Computes the Table II-style summary statistics of the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// Serializes the trace as pretty JSON into any writer.
    ///
    /// # Errors
    /// Returns an error if serialization or the underlying write fails.
    pub fn to_writer<W: Write>(&self, mut writer: W) -> Result<(), TraceError> {
        writer.write_all(self.to_json().to_pretty_string().as_bytes())?;
        Ok(())
    }

    /// Reads a JSON trace from any reader and validates it.
    ///
    /// # Errors
    /// Returns an error on I/O failure, malformed JSON, or invalid jobs.
    pub fn from_reader<R: Read>(mut reader: R) -> Result<Self, TraceError> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let value = JsonValue::parse(&text)?;
        let trace = Trace::from_json(&value)?;
        Trace::new(trace.jobs)
    }

    /// Writes the trace to a JSON file.
    ///
    /// # Errors
    /// Returns an error if the file cannot be created or written.
    pub fn save_to_file<P: AsRef<Path>>(&self, path: P) -> Result<(), TraceError> {
        let file = std::fs::File::create(path)?;
        self.to_writer(std::io::BufWriter::new(file))
    }

    /// Loads a trace from a JSON file.
    ///
    /// # Errors
    /// Returns an error if the file cannot be read or parsed.
    pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        Trace::from_reader(std::io::BufReader::new(file))
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([("jobs", self.jobs.to_json())])
    }
}

impl FromJson for Trace {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Trace {
            jobs: Vec::from_json(value.field("jobs")?)?,
        })
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a JobSpec;
    type IntoIter = std::slice::Iter<'a, JobSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

/// Summary statistics of a trace, mirroring Table II of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total number of jobs.
    pub total_jobs: usize,
    /// Total number of tasks across all jobs.
    pub total_tasks: usize,
    /// Trace duration in slots/seconds (latest arrival − earliest arrival).
    pub duration: u64,
    /// Average number of tasks per job.
    pub mean_tasks_per_job: f64,
    /// Minimum ground-truth task duration in the trace.
    pub min_task_duration: f64,
    /// Maximum ground-truth task duration in the trace.
    pub max_task_duration: f64,
    /// Average ground-truth task duration.
    pub mean_task_duration: f64,
    /// Mean job weight.
    pub mean_weight: f64,
    /// Fraction of all tasks that are map tasks.
    pub map_task_fraction: f64,
}

/// Streaming accumulator behind [`TraceStats::from_trace`] and
/// [`TraceStats::from_source`]: one job at a time, constant memory, and the
/// exact fold order of the original whole-trace scan (jobs in arrival order,
/// map tasks before reduce tasks) so both entry points produce bit-identical
/// floating-point sums.
#[derive(Debug, Default)]
struct StatsAccumulator {
    total_jobs: usize,
    total_tasks: usize,
    map_tasks: usize,
    min_d: f64,
    max_d: f64,
    sum_d: f64,
    sum_w: f64,
    min_arrival: u64,
    max_arrival: u64,
}

impl StatsAccumulator {
    fn new() -> Self {
        StatsAccumulator {
            min_d: f64::INFINITY,
            min_arrival: u64::MAX,
            ..StatsAccumulator::default()
        }
    }

    fn fold(&mut self, job: &JobSpec) {
        self.total_jobs += 1;
        self.total_tasks += job.num_tasks();
        self.map_tasks += job.num_map_tasks();
        self.sum_w += job.weight;
        self.min_arrival = self.min_arrival.min(job.arrival);
        self.max_arrival = self.max_arrival.max(job.arrival);
        for t in job.map_tasks.iter().chain(job.reduce_tasks.iter()) {
            self.min_d = self.min_d.min(t.workload);
            self.max_d = self.max_d.max(t.workload);
            self.sum_d += t.workload;
        }
    }

    fn finish(self) -> TraceStats {
        if self.total_jobs == 0 {
            return TraceStats {
                total_jobs: 0,
                total_tasks: 0,
                duration: 0,
                mean_tasks_per_job: 0.0,
                min_task_duration: 0.0,
                max_task_duration: 0.0,
                mean_task_duration: 0.0,
                mean_weight: 0.0,
                map_task_fraction: 0.0,
            };
        }
        TraceStats {
            total_jobs: self.total_jobs,
            total_tasks: self.total_tasks,
            duration: self.max_arrival - self.min_arrival,
            mean_tasks_per_job: self.total_tasks as f64 / self.total_jobs as f64,
            min_task_duration: self.min_d,
            max_task_duration: self.max_d,
            mean_task_duration: self.sum_d / self.total_tasks as f64,
            mean_weight: self.sum_w / self.total_jobs as f64,
            map_task_fraction: self.map_tasks as f64 / self.total_tasks as f64,
        }
    }
}

impl TraceStats {
    /// Computes the statistics of a trace. All-zero stats for an empty trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut acc = StatsAccumulator::new();
        for job in trace.iter() {
            acc.fold(job);
        }
        acc.finish()
    }

    /// Computes the statistics by folding over a [`JobSource`] — the
    /// streaming counterpart of [`TraceStats::from_trace`]: jobs are pulled
    /// in arrival order, folded, and dropped, so the full workload is never
    /// resident. Feeding the materialised twin of a stream through
    /// [`TraceStats::from_trace`] produces **bit-identical** statistics (the
    /// fold order is the same, so even the floating-point sums agree).
    ///
    /// The source is consumed from its current cursor position; hand in a
    /// fresh source for whole-workload statistics.
    pub fn from_source(source: &mut dyn crate::source::JobSource) -> Self {
        let mut acc = StatsAccumulator::new();
        while let Some(job) = source.next_job() {
            acc.fold(&job);
        }
        acc.finish()
    }

    /// Renders the statistics as a Table II-style two-column text table.
    pub fn to_table(&self) -> String {
        format!(
            "{:<40} {:>12}\n{:<40} {:>12}\n{:<40} {:>12}\n{:<40} {:>12.2}\n{:<40} {:>12.1}\n{:<40} {:>12.1}\n{:<40} {:>12.1}\n{:<40} {:>12.2}\n{:<40} {:>12.2}\n",
            "Total number of Jobs",
            self.total_jobs,
            "Total number of tasks",
            self.total_tasks,
            "Trace duration (s)",
            self.duration,
            "Average number of tasks per job",
            self.mean_tasks_per_job,
            "Minimum task duration (s)",
            self.min_task_duration,
            "Maximum task duration (s)",
            self.max_task_duration,
            "Average task duration (s)",
            self.mean_task_duration,
            "Average job weight",
            self.mean_weight,
            "Fraction of map tasks",
            self.map_task_fraction,
        )
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpecBuilder;

    fn job(arrival: u64, map: &[f64], reduce: &[f64], weight: f64) -> JobSpec {
        let mut b = JobSpecBuilder::new(JobId::new(0))
            .arrival(arrival)
            .weight(weight);
        if !map.is_empty() {
            b = b.map_tasks_from_workloads(map);
        }
        if !reduce.is_empty() {
            b = b.reduce_tasks_from_workloads(reduce);
        }
        b.build()
    }

    fn sample_trace() -> Trace {
        Trace::new(vec![
            job(100, &[10.0, 20.0], &[30.0], 2.0),
            job(0, &[5.0], &[], 1.0),
            job(50, &[1.0, 2.0, 3.0], &[4.0, 5.0], 11.0),
        ])
        .unwrap()
    }

    #[test]
    fn trace_sorts_by_arrival_and_reassigns_ids() {
        let trace = sample_trace();
        assert_eq!(trace.len(), 3);
        let arrivals: Vec<u64> = trace.iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![0, 50, 100]);
        for (i, j) in trace.iter().enumerate() {
            assert_eq!(j.id, JobId::new(i as u64));
            assert!(j.validate().is_ok());
        }
        assert_eq!(trace.job(JobId::new(1)).unwrap().arrival, 50);
        assert!(trace.job(JobId::new(9)).is_none());
    }

    #[test]
    fn stats_match_hand_computation() {
        let trace = sample_trace();
        let stats = trace.stats();
        assert_eq!(stats.total_jobs, 3);
        assert_eq!(stats.total_tasks, 9);
        assert_eq!(stats.duration, 100);
        assert!((stats.mean_tasks_per_job - 3.0).abs() < 1e-12);
        assert_eq!(stats.min_task_duration, 1.0);
        assert_eq!(stats.max_task_duration, 30.0);
        let expected_mean = (10.0 + 20.0 + 30.0 + 5.0 + 1.0 + 2.0 + 3.0 + 4.0 + 5.0) / 9.0;
        assert!((stats.mean_task_duration - expected_mean).abs() < 1e-12);
        assert!((stats.mean_weight - (2.0 + 1.0 + 11.0) / 3.0).abs() < 1e-12);
        assert!((stats.map_task_fraction - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let stats = Trace::empty().stats();
        assert_eq!(stats.total_jobs, 0);
        assert_eq!(stats.mean_task_duration, 0.0);
        assert!(Trace::empty().is_empty());
    }

    #[test]
    fn source_fold_matches_trace_stats_bit_for_bit() {
        use crate::google::GoogleTraceProfile;
        use crate::source::{JobSource, MaterializedSource, StreamingGenerator};

        // Materialized source over a trace ≡ the trace's own stats.
        let trace = GoogleTraceProfile::scaled(40).generate(9);
        let mut source = MaterializedSource::from_trace(&trace);
        assert_eq!(TraceStats::from_source(&mut source), trace.stats());

        // Streaming generator ≡ its materialised twin, without the stream
        // ever materialising the trace.
        let mut stream = StreamingGenerator::new(GoogleTraceProfile::scaled(60), 4);
        let twin = stream.materialize();
        assert_eq!(TraceStats::from_source(&mut stream), twin.stats());
        assert_eq!(stream.resident_jobs(), 0);

        // A fully drained source folds to the empty statistics.
        assert_eq!(TraceStats::from_source(&mut stream), Trace::empty().stats());
    }

    #[test]
    fn filtered_and_truncated() {
        let trace = sample_trace();
        let small = trace.filtered(|j| j.num_tasks() <= 2);
        assert_eq!(small.len(), 1);
        let first_two = trace.truncated(2);
        assert_eq!(first_two.len(), 2);
        assert_eq!(first_two.jobs()[1].arrival, 50);
        // Truncating beyond the end is a no-op.
        assert_eq!(trace.truncated(100).len(), 3);
    }

    #[test]
    fn bulk_arrival_resets_arrivals() {
        let bulk = sample_trace().as_bulk_arrival();
        assert!(bulk.iter().all(|j| j.arrival == 0));
        assert_eq!(bulk.len(), 3);
    }

    #[test]
    fn json_roundtrip_via_memory() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.to_writer(&mut buf).unwrap();
        let back = Trace::from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn file_roundtrip() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("mapreduce-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        trace.save_to_file(&path).unwrap();
        let back = Trace::load_from_file(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = Trace::load_from_file("/nonexistent/path/trace.json").unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn malformed_json_errors() {
        let err = Trace::from_reader("not json".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Format(_)));
    }

    #[test]
    fn total_tasks_counts_everything() {
        assert_eq!(sample_trace().total_tasks(), 9);
    }

    #[test]
    fn into_iterator_works() {
        let trace = sample_trace();
        let count = (&trace).into_iter().count();
        assert_eq!(count, 3);
    }

    #[test]
    fn stats_table_mentions_every_row() {
        let table = sample_trace().stats().to_table();
        for needle in [
            "Total number of Jobs",
            "Trace duration",
            "Average number of tasks per job",
            "Minimum task duration",
            "Maximum task duration",
            "Average task duration",
        ] {
            assert!(table.contains(needle), "missing row {needle}");
        }
    }
}
