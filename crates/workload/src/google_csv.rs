//! Converter from the public Google cluster-usage `task_events` CSV schema
//! into [`Trace`] / [`JobSource`] form.
//!
//! The paper's evaluation extracts its workload from the Google cluster
//! trace (clusterdata-2011): the `task_events` table records one row per
//! task state transition. This module turns that row stream into the
//! [`JobSpec`]s the simulator consumes, **parsing incrementally** — rows are
//! read line by line and folded into per-task aggregates, so the file is
//! never loaded into memory as a whole.
//!
//! # Field mapping
//!
//! `task_events` columns (0-based, per the trace's `schema.csv`):
//!
//! | column | field            | use here                                        |
//! |--------|------------------|-------------------------------------------------|
//! | 0      | timestamp (µs)   | arrivals (SUBMIT) and durations (SCHEDULE→FINISH)|
//! | 2      | job ID           | groups tasks into jobs                           |
//! | 3      | task index       | task identity within the job                     |
//! | 5      | event type       | 0 = SUBMIT, 1 = SCHEDULE, 4 = FINISH             |
//! | 8      | priority         | job weight = priority + 1 (as in the paper)      |
//!
//! Everything else is ignored. Per task, the ground-truth workload is the
//! wall-clock span from its (latest) SCHEDULE to its FINISH, scaled by
//! [`GoogleCsvOptions::microseconds_per_slot`]; tasks that never finish
//! inside the row stream (evicted, killed, still running at the trace edge)
//! are dropped. A job's arrival is its earliest SUBMIT — falling back to its
//! earliest row for jobs whose submission precedes a partial extract's
//! window — normalised so the earliest arrival in the stream lands at
//! slot 0. The Google trace does
//! not label map/reduce phases, so the first
//! `round(n · map_fraction)` tasks of a job (in task-index order, at least
//! one) become map tasks and the rest reduce tasks — the same split the
//! synthetic [`crate::google`] generator uses. Scheduler-visible phase
//! moments are the empirical mean/std-dev of the converted workloads, and no
//! resampling distribution is attached (clone copies re-use the original
//! durations).

use crate::ids::JobId;
use crate::job::JobSpecBuilder;
use crate::source::JobSource;
use crate::trace::{Trace, TraceError};
use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Event-type codes of the `task_events` table this converter consumes.
const EVENT_SUBMIT: u32 = 0;
const EVENT_SCHEDULE: u32 = 1;
const EVENT_FINISH: u32 = 4;

/// Options of the CSV conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct GoogleCsvOptions {
    /// Trace microseconds per simulation slot. The default (1 000 000) makes
    /// one slot one second, the paper's granularity.
    pub microseconds_per_slot: u64,
    /// Fraction of a job's tasks labelled as map tasks (the trace itself does
    /// not distinguish phases); every job keeps at least one map task.
    pub map_fraction: f64,
    /// Lower clamp on converted task workloads in slots; sub-slot tasks
    /// otherwise round to zero, which [`crate::job::TaskSpec`] rejects.
    pub min_task_slots: f64,
}

impl Default for GoogleCsvOptions {
    fn default() -> Self {
        GoogleCsvOptions {
            microseconds_per_slot: 1_000_000,
            map_fraction: 0.7,
            min_task_slots: 1.0,
        }
    }
}

impl GoogleCsvOptions {
    /// Validates the options.
    ///
    /// # Panics
    /// Panics if the time scale is zero, `map_fraction` is outside `(0, 1]`
    /// or the minimum task length is not positive.
    pub fn validate(&self) {
        assert!(
            self.microseconds_per_slot > 0,
            "microseconds_per_slot must be positive"
        );
        assert!(
            self.map_fraction > 0.0 && self.map_fraction <= 1.0,
            "map_fraction must be in (0, 1]"
        );
        assert!(self.min_task_slots > 0.0, "min_task_slots must be positive");
    }
}

/// Error raised by the CSV conversion.
#[derive(Debug)]
pub enum GoogleCsvError {
    /// Underlying I/O failure while reading the row stream.
    Io(std::io::Error),
    /// A row could not be parsed (1-based line number and reason).
    Row {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The converted jobs failed [`Trace::new`] validation.
    Trace(TraceError),
    /// The stream contained no convertible (finished) task at all.
    Empty,
}

impl fmt::Display for GoogleCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoogleCsvError::Io(e) => write!(f, "google csv i/o error: {e}"),
            GoogleCsvError::Row { line, message } => {
                write!(f, "google csv row {line}: {message}")
            }
            GoogleCsvError::Trace(e) => write!(f, "google csv conversion: {e}"),
            GoogleCsvError::Empty => write!(f, "google csv stream contained no finished task"),
        }
    }
}

impl std::error::Error for GoogleCsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GoogleCsvError::Io(e) => Some(e),
            GoogleCsvError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GoogleCsvError {
    fn from(e: std::io::Error) -> Self {
        GoogleCsvError::Io(e)
    }
}

impl From<TraceError> for GoogleCsvError {
    fn from(e: TraceError) -> Self {
        GoogleCsvError::Trace(e)
    }
}

/// Per-task aggregation state while folding the row stream.
#[derive(Debug, Default, Clone, Copy)]
struct TaskAgg {
    /// Timestamp of the latest SCHEDULE not yet matched by a FINISH.
    scheduled_at: Option<u64>,
    /// SCHEDULE→FINISH span in microseconds, once finished.
    duration_us: Option<u64>,
}

/// Per-job aggregation state.
#[derive(Debug, Default, Clone)]
struct JobAgg {
    first_submit_us: Option<u64>,
    /// Earliest timestamp of *any* row of this job — the arrival fallback
    /// for partial extracts whose SUBMIT fell before the window.
    first_seen_us: Option<u64>,
    priority: u32,
    /// Tasks by trace task index (BTreeMap: deterministic emission order).
    tasks: BTreeMap<u64, TaskAgg>,
}

impl JobAgg {
    /// Arrival timestamp: the earliest SUBMIT, falling back to the earliest
    /// row seen for the job (already-running jobs in a mid-trace extract).
    fn arrival_us(&self) -> u64 {
        self.first_submit_us.or(self.first_seen_us).unwrap_or(0)
    }
}

/// Folds a timestamp into an `Option<u64>` minimum.
fn fold_min(slot: &mut Option<u64>, timestamp: u64) {
    *slot = Some(match *slot {
        Some(t) => t.min(timestamp),
        None => timestamp,
    });
}

/// Converts a `task_events` row stream into a [`Trace`].
///
/// Rows are folded incrementally; memory is proportional to the number of
/// distinct jobs/tasks, never to the file size. Blank lines and lines
/// starting with `#` are skipped.
///
/// # Errors
/// Returns an error on I/O failure, an unparsable row, or when no task in
/// the stream ever finished.
pub fn parse_task_events<R: BufRead>(
    reader: R,
    options: &GoogleCsvOptions,
) -> Result<Trace, GoogleCsvError> {
    options.validate();
    let mut jobs: BTreeMap<u64, JobAgg> = BTreeMap::new();

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let row = |message: String| GoogleCsvError::Row {
            line: idx + 1,
            message,
        };
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 6 {
            return Err(row(format!(
                "expected at least 6 comma-separated fields, got {}",
                fields.len()
            )));
        }
        let timestamp: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|_| row(format!("bad timestamp {:?}", fields[0])))?;
        let job_id: u64 = fields[2]
            .trim()
            .parse()
            .map_err(|_| row(format!("bad job id {:?}", fields[2])))?;
        let task_index: u64 = fields[3]
            .trim()
            .parse()
            .map_err(|_| row(format!("bad task index {:?}", fields[3])))?;
        let event_type: u32 = fields[5]
            .trim()
            .parse()
            .map_err(|_| row(format!("bad event type {:?}", fields[5])))?;
        // Priority (column 8) is optional in partial extracts; empty = 0.
        let priority: u32 = match fields.get(8).map(|s| s.trim()) {
            Some("") | None => 0,
            Some(p) => p.parse().map_err(|_| row(format!("bad priority {p:?}")))?,
        };

        let job = jobs.entry(job_id).or_default();
        job.priority = job.priority.max(priority);
        fold_min(&mut job.first_seen_us, timestamp);
        match event_type {
            EVENT_SUBMIT => {
                fold_min(&mut job.first_submit_us, timestamp);
            }
            EVENT_SCHEDULE => {
                let task = job.tasks.entry(task_index).or_default();
                if task.duration_us.is_none() {
                    task.scheduled_at = Some(timestamp);
                }
            }
            EVENT_FINISH => {
                let task = job.tasks.entry(task_index).or_default();
                if let (Some(start), None) = (task.scheduled_at, task.duration_us) {
                    task.duration_us = Some(timestamp.saturating_sub(start));
                    task.scheduled_at = None;
                }
            }
            // EVICT/FAIL/KILL/LOST/UPDATE rows carry nothing this model
            // consumes; re-scheduled tasks get a fresh SCHEDULE row.
            _ => {}
        }
    }

    // The earliest arrival timestamp across the stream anchors slot 0
    // (earliest SUBMIT, or earliest row for SUBMIT-less jobs of a partial
    // extract).
    let t0 = jobs.values().map(JobAgg::arrival_us).min().unwrap_or(0);

    let scale = options.microseconds_per_slot;
    let mut specs = Vec::new();
    // Iteration over the BTreeMap is Google-job-id order; Trace::new then
    // re-sorts by arrival and assigns the dense ids (the Google job id does
    // not survive the conversion — simulator job ids are vector indices).
    for agg in jobs.values() {
        let durations: Vec<f64> = agg
            .tasks
            .values()
            .filter_map(|t| t.duration_us)
            .map(|us| (us as f64 / scale as f64).max(options.min_task_slots))
            .collect();
        if durations.is_empty() {
            continue;
        }
        let num_map = ((durations.len() as f64 * options.map_fraction).round() as usize)
            .clamp(1, durations.len());
        let arrival = agg.arrival_us().saturating_sub(t0) / scale;
        let mut builder = JobSpecBuilder::new(JobId::new(specs.len() as u64))
            .arrival(arrival)
            .weight((agg.priority + 1) as f64)
            .map_tasks_from_workloads(&durations[..num_map]);
        if num_map < durations.len() {
            builder = builder.reduce_tasks_from_workloads(&durations[num_map..]);
        }
        specs.push(builder.build());
    }
    if specs.is_empty() {
        return Err(GoogleCsvError::Empty);
    }
    Ok(Trace::new(specs)?)
}

/// A [`JobSource`] over a converted Google `task_events` CSV.
///
/// The row stream is parsed incrementally (the file is never resident as a
/// whole); the converted jobs are then held materialised, because arrival
/// sorting and job grouping need the full row stream anyway. Jobs are
/// yielded as clones so the converted trace stays inspectable through
/// [`GoogleTraceSource::trace`].
#[derive(Debug, Clone)]
pub struct GoogleTraceSource {
    trace: Trace,
    cursor: usize,
}

impl GoogleTraceSource {
    /// Converts a row stream into a source.
    ///
    /// # Errors
    /// See [`parse_task_events`].
    pub fn from_reader<R: BufRead>(
        reader: R,
        options: &GoogleCsvOptions,
    ) -> Result<Self, GoogleCsvError> {
        Ok(GoogleTraceSource {
            trace: parse_task_events(reader, options)?,
            cursor: 0,
        })
    }

    /// Converts a CSV file into a source, reading it buffered.
    ///
    /// # Errors
    /// Returns an error if the file cannot be opened or converted.
    pub fn from_csv_file<P: AsRef<Path>>(
        path: P,
        options: &GoogleCsvOptions,
    ) -> Result<Self, GoogleCsvError> {
        let file = std::fs::File::open(path)?;
        Self::from_reader(std::io::BufReader::new(file), options)
    }

    /// The converted trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the source, returning the owned converted trace (no clone).
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl JobSource for GoogleTraceSource {
    fn name(&self) -> &str {
        "google-csv"
    }

    fn total_jobs(&self) -> usize {
        self.trace.len()
    }

    fn next_job(&mut self) -> Option<crate::job::JobSpec> {
        let job = self.trace.jobs().get(self.cursor)?.clone();
        self.cursor += 1;
        Some(job)
    }

    fn resident_jobs(&self) -> usize {
        self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Phase;

    /// Two jobs: job 100 with three finished tasks (durations 10, 20, 30 s),
    /// job 200 with one finished and one unfinished task, plus junk lines.
    fn sample_csv() -> String {
        let rows = [
            "# timestamp,missing,job,task,machine,event,user,class,priority",
            "1000000,,100,0,m1,0,u,2,3",
            "1000000,,100,1,m1,0,u,2,3",
            "1000000,,100,2,m1,0,u,2,3",
            "2000000,,100,0,m1,1,u,2,3",
            "",
            "2000000,,100,1,m2,1,u,2,3",
            "2000000,,100,2,m3,1,u,2,3",
            "12000000,,100,0,m1,4,u,2,3",
            "22000000,,100,1,m2,4,u,2,3",
            "32000000,,100,2,m3,4,u,2,3",
            "5000000,,200,0,m4,0,u,0,1",
            "5000000,,200,1,m4,0,u,0,1",
            "6000000,,200,0,m4,1,u,0,1",
            "6000000,,200,1,m4,1,u,0,1",
            "66000000,,200,0,m4,4,u,0,1",
            // task 200/1 never finishes: dropped.
            "66000000,,200,1,m4,5,u,0,1",
        ];
        rows.join("\n")
    }

    #[test]
    fn converts_the_sample_stream() {
        let trace =
            parse_task_events(sample_csv().as_bytes(), &GoogleCsvOptions::default()).unwrap();
        assert_eq!(trace.len(), 2);
        // Job 100 arrived at t0 → slot 0; job 200 4 s later.
        let j0 = &trace.jobs()[0];
        let j1 = &trace.jobs()[1];
        assert_eq!(j0.arrival, 0);
        assert_eq!(j1.arrival, 4);
        assert_eq!(j0.weight, 4.0); // priority 3
        assert_eq!(j1.weight, 2.0); // priority 1
        assert_eq!(j0.num_tasks(), 3);
        // map_fraction 0.7: 3 tasks → 2 map + 1 reduce.
        assert_eq!(j0.num_map_tasks(), 2);
        assert_eq!(j0.num_reduce_tasks(), 1);
        let workloads: Vec<f64> = j0
            .tasks(Phase::Map)
            .iter()
            .chain(j0.tasks(Phase::Reduce))
            .map(|t| t.workload)
            .collect();
        assert_eq!(workloads, vec![10.0, 20.0, 30.0]);
        // Job 200: the unfinished task is dropped, one 60 s map task remains.
        assert_eq!(j1.num_tasks(), 1);
        assert_eq!(j1.tasks(Phase::Map)[0].workload, 60.0);
    }

    #[test]
    fn source_wrapper_yields_converted_jobs() {
        let mut source =
            GoogleTraceSource::from_reader(sample_csv().as_bytes(), &GoogleCsvOptions::default())
                .unwrap();
        assert_eq!(source.name(), "google-csv");
        assert_eq!(source.total_jobs(), 2);
        assert_eq!(source.resident_jobs(), 2);
        let first = source.next_job().unwrap();
        assert_eq!(first.id, JobId::new(0));
        assert!(source.next_job().is_some());
        assert!(source.next_job().is_none());
    }

    #[test]
    fn submitless_jobs_fall_back_to_their_earliest_row() {
        // A mid-trace extract: job 1 was submitted inside the window at
        // t=30s; job 2's SUBMIT predates the window, so its arrival is its
        // first visible row (SCHEDULE at t=10s) — which also anchors slot 0.
        let csv = "30000000,,1,0,m,0,u,0,0\n\
                   31000000,,1,0,m,1,u,0,0\n\
                   36000000,,1,0,m,4,u,0,0\n\
                   10000000,,2,0,m,1,u,0,0\n\
                   20000000,,2,0,m,4,u,0,0\n";
        let trace = parse_task_events(csv.as_bytes(), &GoogleCsvOptions::default()).unwrap();
        assert_eq!(trace.len(), 2);
        // Job 2 (earliest row 10s) anchors slot 0; job 1 arrives 20s later.
        assert_eq!(trace.jobs()[0].arrival, 0);
        assert_eq!(trace.jobs()[0].map_tasks[0].workload, 10.0);
        assert_eq!(trace.jobs()[1].arrival, 20);
    }

    #[test]
    fn sub_slot_durations_are_clamped() {
        let csv = "0,,1,0,m,0,u,0,0\n1,,1,0,m,1,u,0,0\n2,,1,0,m,4,u,0,0\n";
        let trace = parse_task_events(csv.as_bytes(), &GoogleCsvOptions::default()).unwrap();
        assert_eq!(trace.jobs()[0].map_tasks[0].workload, 1.0);
    }

    #[test]
    fn bad_rows_are_reported_with_line_numbers() {
        let csv = "0,,1,0,m,0,u,0,0\nnot-a-timestamp,,1,0,m,4,u,0,0\n";
        let err = parse_task_events(csv.as_bytes(), &GoogleCsvOptions::default()).unwrap_err();
        match err {
            GoogleCsvError::Row { line, .. } => assert_eq!(line, 2),
            other => panic!("expected row error, got {other}"),
        }
        let empty = parse_task_events("".as_bytes(), &GoogleCsvOptions::default()).unwrap_err();
        assert!(matches!(empty, GoogleCsvError::Empty));
        assert!(!empty.to_string().is_empty());
    }

    #[test]
    fn short_rows_are_rejected() {
        let err = parse_task_events("1,2,3".as_bytes(), &GoogleCsvOptions::default()).unwrap_err();
        assert!(matches!(err, GoogleCsvError::Row { line: 1, .. }));
    }

    #[test]
    #[should_panic(expected = "map_fraction")]
    fn options_are_validated() {
        let options = GoogleCsvOptions {
            map_fraction: 0.0,
            ..GoogleCsvOptions::default()
        };
        let _ = parse_task_events("".as_bytes(), &options);
    }
}
