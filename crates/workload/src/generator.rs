//! Generic, fully-parameterised workload generation.
//!
//! [`crate::google`] produces the paper's evaluation workload; this module is
//! the general-purpose counterpart used by unit tests, property tests and
//! ablation experiments: you pick an arrival process, a job-size model and a
//! duration distribution, and get a reproducible [`Trace`].

use crate::distribution::DurationDistribution;
use crate::ids::JobId;
use crate::job::{JobSpecBuilder, PhaseStats};
use crate::trace::Trace;
use mapreduce_support::rng::{Rng, SimRng};

/// How job arrival times are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Every job arrives at time 0 (the offline / bulk-arrival setting of
    /// Section IV).
    Bulk,
    /// Poisson arrivals with the given mean inter-arrival time (in slots).
    Poisson {
        /// Mean inter-arrival time between consecutive jobs, in slots.
        mean_interarrival: f64,
    },
    /// Arrival times drawn uniformly at random in `[0, window]`.
    UniformWindow {
        /// Length of the arrival window in slots.
        window: u64,
    },
    /// Deterministic arrivals every `interval` slots (job `k` arrives at
    /// `k · interval`).
    Periodic {
        /// Spacing between consecutive arrivals, in slots.
        interval: u64,
    },
}

impl ArrivalProcess {
    fn arrival(&self, index: usize, prev: u64, rng: &mut SimRng) -> u64 {
        match *self {
            ArrivalProcess::Bulk => 0,
            ArrivalProcess::Poisson { mean_interarrival } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let gap = (-mean_interarrival * u.ln()).round() as u64;
                prev + gap
            }
            ArrivalProcess::UniformWindow { window } => {
                if window == 0 {
                    0
                } else {
                    rng.gen_range(0..=window)
                }
            }
            ArrivalProcess::Periodic { interval } => index as u64 * interval,
        }
    }
}

/// Builder producing synthetic traces with explicitly chosen characteristics.
///
/// ```
/// use mapreduce_workload::{ArrivalProcess, DurationDistribution, WorkloadBuilder};
///
/// let trace = WorkloadBuilder::new()
///     .num_jobs(20)
///     .arrivals(ArrivalProcess::Poisson { mean_interarrival: 30.0 })
///     .map_tasks_per_job(4, 10)
///     .reduce_tasks_per_job(1, 3)
///     .map_duration(DurationDistribution::Exponential { mean: 50.0 })
///     .reduce_duration(DurationDistribution::Exponential { mean: 80.0 })
///     .build(123);
/// assert_eq!(trace.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    num_jobs: usize,
    arrivals: ArrivalProcess,
    map_tasks_range: (usize, usize),
    reduce_tasks_range: (usize, usize),
    map_duration: DurationDistribution,
    reduce_duration: DurationDistribution,
    weight_choices: Vec<f64>,
    attach_distributions: bool,
}

impl WorkloadBuilder {
    /// Starts a builder with small defaults (10 jobs, bulk arrivals, 2–5 map
    /// tasks and 1–2 reduce tasks per job, exponential durations).
    pub fn new() -> Self {
        WorkloadBuilder {
            num_jobs: 10,
            arrivals: ArrivalProcess::Bulk,
            map_tasks_range: (2, 5),
            reduce_tasks_range: (1, 2),
            map_duration: DurationDistribution::Exponential { mean: 50.0 },
            reduce_duration: DurationDistribution::Exponential { mean: 80.0 },
            weight_choices: vec![1.0],
            attach_distributions: true,
        }
    }

    /// Sets the number of jobs.
    pub fn num_jobs(mut self, n: usize) -> Self {
        self.num_jobs = n;
        self
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the inclusive range of map tasks per job.
    pub fn map_tasks_per_job(mut self, min: usize, max: usize) -> Self {
        assert!(
            min >= 1 && max >= min,
            "invalid map task range [{min}, {max}]"
        );
        self.map_tasks_range = (min, max);
        self
    }

    /// Sets the inclusive range of reduce tasks per job (0 allowed).
    pub fn reduce_tasks_per_job(mut self, min: usize, max: usize) -> Self {
        assert!(max >= min, "invalid reduce task range [{min}, {max}]");
        self.reduce_tasks_range = (min, max);
        self
    }

    /// Sets the map-task duration distribution.
    pub fn map_duration(mut self, dist: DurationDistribution) -> Self {
        self.map_duration = dist;
        self
    }

    /// Sets the reduce-task duration distribution.
    pub fn reduce_duration(mut self, dist: DurationDistribution) -> Self {
        self.reduce_duration = dist;
        self
    }

    /// Sets the set of job weights to sample from (uniformly).
    pub fn weights(mut self, choices: &[f64]) -> Self {
        assert!(!choices.is_empty(), "weight choices must not be empty");
        assert!(choices.iter().all(|w| *w > 0.0), "weights must be positive");
        self.weight_choices = choices.to_vec();
        self
    }

    /// Controls whether the generated jobs carry their sampling distribution
    /// (needed for clone resampling in the simulator). Defaults to true.
    pub fn attach_distributions(mut self, attach: bool) -> Self {
        self.attach_distributions = attach;
        self
    }

    /// Generates the trace with the given seed. Deterministic per seed.
    pub fn build(&self, seed: u64) -> Trace {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut prev_arrival = 0u64;
        for idx in 0..self.num_jobs {
            let arrival = self.arrivals.arrival(idx, prev_arrival, &mut rng);
            prev_arrival = arrival;
            let n_map = rng.gen_range(self.map_tasks_range.0..=self.map_tasks_range.1);
            let n_reduce = rng.gen_range(self.reduce_tasks_range.0..=self.reduce_tasks_range.1);
            let map_workloads = self.map_duration.sample_n(&mut rng, n_map);
            let reduce_workloads = self.reduce_duration.sample_n(&mut rng, n_reduce);
            let weight = self.weight_choices[rng.gen_range(0..self.weight_choices.len())];

            let mut b = JobSpecBuilder::new(JobId::new(idx as u64))
                .arrival(arrival)
                .weight(weight)
                .map_tasks_from_workloads(&map_workloads)
                .map_stats(PhaseStats::new(
                    self.map_duration.mean(),
                    finite_or(self.map_duration.std_dev(), self.map_duration.mean()),
                ));
            if self.attach_distributions {
                b = b.map_distribution(self.map_duration.clone());
            }
            if n_reduce > 0 {
                b = b
                    .reduce_tasks_from_workloads(&reduce_workloads)
                    .reduce_stats(PhaseStats::new(
                        self.reduce_duration.mean(),
                        finite_or(self.reduce_duration.std_dev(), self.reduce_duration.mean()),
                    ));
                if self.attach_distributions {
                    b = b.reduce_distribution(self.reduce_duration.clone());
                }
            }
            jobs.push(b.build());
        }
        Trace::new(jobs).expect("generated jobs are valid by construction")
    }
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        Self::new()
    }
}

fn finite_or(value: f64, fallback: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_produces_valid_trace() {
        let trace = WorkloadBuilder::new().build(1);
        assert_eq!(trace.len(), 10);
        for job in trace.iter() {
            assert!(job.validate().is_ok());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let b = WorkloadBuilder::new().num_jobs(25);
        assert_eq!(b.build(5), b.build(5));
        assert_ne!(b.build(5), b.build(6));
    }

    #[test]
    fn bulk_arrivals_all_zero() {
        let trace = WorkloadBuilder::new()
            .arrivals(ArrivalProcess::Bulk)
            .num_jobs(15)
            .build(2);
        assert!(trace.iter().all(|j| j.arrival == 0));
    }

    #[test]
    fn poisson_arrivals_are_nondecreasing() {
        let trace = WorkloadBuilder::new()
            .num_jobs(50)
            .arrivals(ArrivalProcess::Poisson {
                mean_interarrival: 10.0,
            })
            .build(3);
        let arrivals: Vec<u64> = trace.iter().map(|j| j.arrival).collect();
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        assert_eq!(arrivals, sorted);
        assert!(*arrivals.last().unwrap() > 0);
    }

    #[test]
    fn periodic_arrivals_spacing() {
        let trace = WorkloadBuilder::new()
            .num_jobs(5)
            .arrivals(ArrivalProcess::Periodic { interval: 100 })
            .build(4);
        let arrivals: Vec<u64> = trace.iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn uniform_window_respects_bounds() {
        let trace = WorkloadBuilder::new()
            .num_jobs(100)
            .arrivals(ArrivalProcess::UniformWindow { window: 500 })
            .build(5);
        assert!(trace.iter().all(|j| j.arrival <= 500));
    }

    #[test]
    fn task_count_ranges_are_respected() {
        let trace = WorkloadBuilder::new()
            .num_jobs(60)
            .map_tasks_per_job(3, 7)
            .reduce_tasks_per_job(0, 2)
            .build(6);
        for job in trace.iter() {
            assert!((3..=7).contains(&job.num_map_tasks()));
            assert!(job.num_reduce_tasks() <= 2);
        }
    }

    #[test]
    fn weights_come_from_choices() {
        let trace = WorkloadBuilder::new()
            .num_jobs(40)
            .weights(&[1.0, 5.0, 12.0])
            .build(7);
        for job in trace.iter() {
            assert!([1.0, 5.0, 12.0].contains(&job.weight));
        }
    }

    #[test]
    fn attach_distributions_toggle() {
        let with = WorkloadBuilder::new().num_jobs(3).build(8);
        assert!(with.jobs()[0].map_distribution.is_some());
        let without = WorkloadBuilder::new()
            .num_jobs(3)
            .attach_distributions(false)
            .build(8);
        assert!(without.jobs()[0].map_distribution.is_none());
    }

    #[test]
    #[should_panic(expected = "invalid map task range")]
    fn rejects_zero_map_tasks() {
        WorkloadBuilder::new().map_tasks_per_job(0, 3);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_non_positive_weights() {
        WorkloadBuilder::new().weights(&[0.0]);
    }
}
