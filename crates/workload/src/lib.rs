//! Workload model for the MapReduce task-cloning reproduction.
//!
//! This crate provides everything the schedulers and the cluster simulator
//! need to know about *work*:
//!
//! * [`ids`] — strongly-typed identifiers for jobs, tasks and phases.
//! * [`distribution`] — task-duration distributions (Pareto, bounded Pareto,
//!   log-normal, …) together with moment queries and fitting helpers.
//! * [`job`] — [`JobSpec`], [`TaskSpec`] and [`PhaseStats`]: the ground-truth
//!   workload of every task plus the first/second moments that schedulers are
//!   allowed to observe (the paper assumes only `E` and `σ` are known a
//!   priori).
//! * [`trace`] — the [`Trace`] container, summary statistics mirroring
//!   Table II of the paper, and JSON import/export.
//! * [`google`] — a synthetic trace generator calibrated against the Google
//!   cluster-usage trace statistics reported in the paper (Table II).
//! * [`generator`] — a generic [`WorkloadBuilder`] for tests, ablations and
//!   custom experiments (bulk arrivals, Poisson arrivals, bursts, …).
//!
//! # Quick example
//!
//! ```
//! use mapreduce_workload::google::GoogleTraceProfile;
//!
//! // A scaled-down Google-like trace: 100 jobs, deterministic given the seed.
//! let trace = GoogleTraceProfile::scaled(100).generate(42);
//! assert_eq!(trace.jobs().len(), 100);
//! let stats = trace.stats();
//! assert!(stats.mean_tasks_per_job > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod generator;
pub mod google;
pub mod ids;
pub mod job;
pub mod trace;

pub use distribution::DurationDistribution;
pub use generator::{ArrivalProcess, WorkloadBuilder};
pub use google::{GoogleTraceGenerator, GoogleTraceProfile};
pub use ids::{JobId, Phase, TaskId};
pub use job::{JobSpec, JobSpecBuilder, PhaseStats, TaskSpec};
pub use trace::{Trace, TraceError, TraceStats};
