//! Workload model for the MapReduce task-cloning reproduction.
//!
//! This crate provides everything the schedulers and the cluster simulator
//! need to know about *work*:
//!
//! * [`ids`] — strongly-typed identifiers for jobs, tasks and phases.
//! * [`distribution`] — task-duration distributions (Pareto, bounded Pareto,
//!   log-normal, …) together with moment queries and fitting helpers.
//! * [`job`] — [`JobSpec`], [`TaskSpec`] and [`PhaseStats`]: the ground-truth
//!   workload of every task plus the first/second moments that schedulers are
//!   allowed to observe (the paper assumes only `E` and `σ` are known a
//!   priori).
//! * [`trace`] — the [`Trace`] container, summary statistics mirroring
//!   Table II of the paper, and JSON import/export.
//! * [`google`] — a synthetic trace generator calibrated against the Google
//!   cluster-usage trace statistics reported in the paper (Table II).
//! * [`generator`] — a generic [`WorkloadBuilder`] for tests, ablations and
//!   custom experiments (bulk arrivals, Poisson arrivals, bursts, …).
//! * [`source`] — the streaming side: the [`JobSource`] trait (jobs in
//!   arrival order, on demand) with [`MaterializedSource`] (wraps a
//!   [`Trace`]) and [`StreamingGenerator`] (lazy Google-profile synthesis
//!   with per-job RNG streams, bounded memory at 100k+ jobs).
//! * [`google_csv`] — an incremental converter from the public Google
//!   cluster-usage `task_events` CSV schema into traces and sources.
//!
//! # Quick example
//!
//! ```
//! use mapreduce_workload::google::GoogleTraceProfile;
//!
//! // A scaled-down Google-like trace: 100 jobs, deterministic given the seed.
//! let trace = GoogleTraceProfile::scaled(100).generate(42);
//! assert_eq!(trace.jobs().len(), 100);
//! let stats = trace.stats();
//! assert!(stats.mean_tasks_per_job > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod generator;
pub mod google;
pub mod google_csv;
pub mod ids;
pub mod job;
pub mod source;
pub mod trace;

pub use distribution::DurationDistribution;
pub use generator::{ArrivalProcess, WorkloadBuilder};
pub use google::{GoogleTraceGenerator, GoogleTraceProfile};
pub use google_csv::{GoogleCsvError, GoogleCsvOptions, GoogleTraceSource};
pub use ids::{JobId, Phase, TaskId};
pub use job::{JobSpec, JobSpecBuilder, PhaseStats, TaskSpec};
pub use source::{JobSource, MaterializedSource, StreamingGenerator};
pub use trace::{Trace, TraceError, TraceStats};
