//! Strongly-typed identifiers for jobs, tasks and MapReduce phases.
//!
//! The simulator, the schedulers and the metrics layer all exchange these ids,
//! so they live in the workload crate which everything depends on.

use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use std::fmt;

/// Identifier of a job within a [`crate::Trace`].
///
/// Job ids are dense indices assigned by the trace generator (0, 1, 2, …) so
/// they can double as vector indices in the simulator.
///
/// ```
/// use mapreduce_workload::JobId;
/// let id = JobId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(format!("{id}"), "J7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job id from its dense index.
    pub fn new(index: u64) -> Self {
        JobId(index)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns the index as a `usize` for direct vector indexing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for JobId {
    fn from(v: u64) -> Self {
        JobId::new(v)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl ToJson for JobId {
    fn to_json(&self) -> JsonValue {
        self.0.to_json()
    }
}

impl FromJson for JobId {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        u64::from_json(value).map(JobId::new)
    }
}

/// The two phases of a MapReduce job.
///
/// The paper writes `c ∈ {m, r}` for map/reduce-related statements; this enum
/// is the typed equivalent. `Phase::ALL` is handy for iterating over both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The Map phase. All map tasks of a job must finish before any reduce
    /// task of that job can make progress.
    Map,
    /// The Reduce phase.
    Reduce,
}

impl Phase {
    /// Both phases, in precedence order (Map before Reduce).
    pub const ALL: [Phase; 2] = [Phase::Map, Phase::Reduce];

    /// Returns the phase that must complete before this one may start, if any.
    ///
    /// ```
    /// use mapreduce_workload::Phase;
    /// assert_eq!(Phase::Reduce.predecessor(), Some(Phase::Map));
    /// assert_eq!(Phase::Map.predecessor(), None);
    /// ```
    pub fn predecessor(self) -> Option<Phase> {
        match self {
            Phase::Map => None,
            Phase::Reduce => Some(Phase::Map),
        }
    }

    /// Short lowercase label (`"map"` / `"reduce"`), useful in reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Map => "map",
            Phase::Reduce => "reduce",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl ToJson for Phase {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(
            match self {
                Phase::Map => "Map",
                Phase::Reduce => "Reduce",
            }
            .to_string(),
        )
    }
}

impl FromJson for Phase {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Map") => Ok(Phase::Map),
            Some("Reduce") => Ok(Phase::Reduce),
            _ => Err(JsonError::new("expected \"Map\" or \"Reduce\"")),
        }
    }
}

/// Identifier of a single task: the job it belongs to, its phase, and its
/// index within that phase.
///
/// Mirrors the paper's `δ^{c,j}_i` notation (task `j` of phase `c` in job
/// `J_i`).
///
/// ```
/// use mapreduce_workload::{JobId, Phase, TaskId};
/// let t = TaskId::new(JobId::new(3), Phase::Reduce, 5);
/// assert_eq!(format!("{t}"), "J3/reduce/5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// The job this task belongs to.
    pub job: JobId,
    /// The phase (map or reduce) this task belongs to.
    pub phase: Phase,
    /// Index of the task within its phase (0-based).
    pub index: u32,
}

impl TaskId {
    /// Creates a task id.
    pub fn new(job: JobId, phase: Phase, index: u32) -> Self {
        TaskId { job, phase, index }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.job, self.phase, self.index)
    }
}

impl ToJson for TaskId {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("job", self.job.to_json()),
            ("phase", self.phase.to_json()),
            ("index", self.index.to_json()),
        ])
    }
}

impl FromJson for TaskId {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(TaskId {
            job: JobId::from_json(value.field("job")?)?,
            phase: Phase::from_json(value.field("phase")?)?,
            index: u32::from_json(value.field("index")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn job_id_roundtrip() {
        let id = JobId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(JobId::from(42u64), id);
    }

    #[test]
    fn job_id_display() {
        assert_eq!(JobId::new(0).to_string(), "J0");
        assert_eq!(JobId::new(123).to_string(), "J123");
    }

    #[test]
    fn job_id_ordering_follows_index() {
        assert!(JobId::new(1) < JobId::new(2));
        assert!(JobId::new(10) > JobId::new(2));
    }

    #[test]
    fn phase_precedence() {
        assert_eq!(Phase::Map.predecessor(), None);
        assert_eq!(Phase::Reduce.predecessor(), Some(Phase::Map));
    }

    #[test]
    fn phase_labels_and_order() {
        assert_eq!(Phase::Map.label(), "map");
        assert_eq!(Phase::Reduce.label(), "reduce");
        assert_eq!(Phase::ALL[0], Phase::Map);
        assert_eq!(Phase::ALL[1], Phase::Reduce);
        assert!(Phase::Map < Phase::Reduce);
    }

    #[test]
    fn task_id_display_and_hash() {
        let a = TaskId::new(JobId::new(1), Phase::Map, 0);
        let b = TaskId::new(JobId::new(1), Phase::Map, 1);
        let c = TaskId::new(JobId::new(1), Phase::Reduce, 0);
        assert_eq!(a.to_string(), "J1/map/0");
        let set: HashSet<_> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn task_id_json_roundtrip() {
        let t = TaskId::new(JobId::new(9), Phase::Reduce, 3);
        let json = t.to_json().to_compact_string();
        let back = TaskId::from_json(&JsonValue::parse(&json).expect("parse")).expect("decode");
        assert_eq!(back, t);
    }
}
