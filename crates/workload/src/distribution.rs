//! Task-duration (workload) distributions.
//!
//! The paper models straggling through the *workload* of a task: every task of
//! a phase draws its workload i.i.d. from a phase-specific distribution with
//! known mean `E` and standard deviation `σ`, and measurement studies cited in
//! the paper ([4], [26]) report heavy-tailed (Pareto-like) task durations.
//!
//! [`DurationDistribution`] is the single enum the rest of the workspace uses:
//! the trace generator samples ground-truth workloads from it, the simulator
//! resamples clone durations from it, and the schedulers only ever see its
//! first two moments through [`crate::PhaseStats`].

use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use mapreduce_support::rng::{LogNormal, Normal, Rng};
use std::fmt;

/// Error produced when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionError {
    message: String,
}

impl DistributionError {
    fn new(message: impl Into<String>) -> Self {
        DistributionError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters: {}", self.message)
    }
}

impl std::error::Error for DistributionError {}

/// A distribution over task workloads (equivalently, task durations on a
/// unit-speed machine).
///
/// All variants produce strictly positive samples. The enum is serializable so
/// traces carrying their generating distributions can be exported to JSON.
///
/// ```
/// use mapreduce_workload::DurationDistribution;
/// use mapreduce_support::rng::SimRng;
///
/// let d = DurationDistribution::pareto_from_mean(100.0, 1.8).unwrap();
/// assert!((d.mean() - 100.0).abs() < 1e-9);
/// let mut rng = SimRng::seed_from_u64(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum DurationDistribution {
    /// Every task takes exactly `value` time units. Zero variance; used for
    /// the "negligible variance" offline analysis (Remark 2).
    Deterministic {
        /// The constant workload.
        value: f64,
    },
    /// Uniform on `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Pareto distribution with CDF `1 - (scale/t)^shape` for `t >= scale`.
    ///
    /// This is exactly the heavy-tail model used in Section III-A of the paper
    /// to derive the speedup function `s(r) = rα−1 over r(α−1)`... more
    /// precisely `s(r) = (rα − 1) / (r(α − 1))`.
    Pareto {
        /// Scale parameter `µ` (minimum value).
        scale: f64,
        /// Shape parameter `α`. Must exceed 2 for a finite variance.
        shape: f64,
    },
    /// Pareto truncated at `max` (rejection-free: samples above `max` are
    /// clamped). Mirrors the bounded task durations observed in the Google
    /// trace (12.8 s … 22 919.3 s).
    BoundedPareto {
        /// Scale parameter `µ` (minimum value).
        scale: f64,
        /// Shape parameter `α`.
        shape: f64,
        /// Upper clamp applied to samples.
        max: f64,
    },
    /// Log-normal with the given parameters of the underlying normal.
    LogNormal {
        /// Mean of the underlying normal distribution.
        mu: f64,
        /// Standard deviation of the underlying normal distribution.
        sigma: f64,
    },
    /// A truncated normal distribution (resampled below `min`), convenient for
    /// low-variance workloads that are still not deterministic.
    TruncatedNormal {
        /// Mean of the (untruncated) normal.
        mean: f64,
        /// Standard deviation of the (untruncated) normal.
        std_dev: f64,
        /// Lower truncation bound.
        min: f64,
    },
}

impl DurationDistribution {
    /// Constructs a Pareto distribution with the requested mean and shape.
    ///
    /// The Pareto mean is `scale · shape / (shape − 1)`, so the scale is
    /// derived from the mean.
    ///
    /// # Errors
    /// Returns an error if `mean <= 0` or `shape <= 1` (infinite mean).
    pub fn pareto_from_mean(mean: f64, shape: f64) -> Result<Self, DistributionError> {
        if mean.is_nan() || mean <= 0.0 {
            return Err(DistributionError::new("mean must be positive"));
        }
        if shape.is_nan() || shape <= 1.0 {
            return Err(DistributionError::new("Pareto shape must exceed 1"));
        }
        let scale = mean * (shape - 1.0) / shape;
        Ok(DurationDistribution::Pareto { scale, shape })
    }

    /// Constructs a log-normal distribution with the requested mean and
    /// standard deviation (of the log-normal itself, not of the underlying
    /// normal).
    ///
    /// # Errors
    /// Returns an error if `mean <= 0` or `std_dev < 0`.
    pub fn lognormal_from_moments(mean: f64, std_dev: f64) -> Result<Self, DistributionError> {
        if mean.is_nan() || mean <= 0.0 {
            return Err(DistributionError::new("mean must be positive"));
        }
        if std_dev < 0.0 {
            return Err(DistributionError::new("std_dev must be non-negative"));
        }
        if std_dev == 0.0 {
            return Ok(DurationDistribution::Deterministic { value: mean });
        }
        let cv2 = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Ok(DurationDistribution::LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        })
    }

    /// Fits a distribution to a target mean and standard deviation, choosing
    /// the family by the coefficient of variation: deterministic for zero σ,
    /// truncated normal for CV ≤ 0.3, log-normal otherwise.
    ///
    /// # Errors
    /// Returns an error if `mean <= 0` or `std_dev < 0`.
    pub fn fit(mean: f64, std_dev: f64) -> Result<Self, DistributionError> {
        if mean.is_nan() || mean <= 0.0 {
            return Err(DistributionError::new("mean must be positive"));
        }
        if std_dev < 0.0 {
            return Err(DistributionError::new("std_dev must be non-negative"));
        }
        if std_dev == 0.0 {
            Ok(DurationDistribution::Deterministic { value: mean })
        } else if std_dev / mean <= 0.3 {
            Ok(DurationDistribution::TruncatedNormal {
                mean,
                std_dev,
                min: (mean - 4.0 * std_dev).max(mean * 0.01),
            })
        } else {
            Self::lognormal_from_moments(mean, std_dev)
        }
    }

    /// The mean of the distribution (the `E^c_i` the scheduler observes).
    pub fn mean(&self) -> f64 {
        match *self {
            DurationDistribution::Deterministic { value } => value,
            DurationDistribution::Uniform { min, max } => (min + max) / 2.0,
            DurationDistribution::Exponential { mean } => mean,
            DurationDistribution::Pareto { scale, shape } => {
                if shape > 1.0 {
                    scale * shape / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            DurationDistribution::BoundedPareto { scale, shape, max } => {
                // Mean of a Pareto clamped at `max`:
                // E[min(X, max)] = ∫_scale^max (1-F(t)) dt + scale
                //               = scale + ∫_scale^max (scale/t)^shape dt
                if (shape - 1.0).abs() < 1e-12 {
                    scale + scale * (max / scale).ln()
                } else {
                    scale
                        + scale.powf(shape) / (1.0 - shape)
                            * (max.powf(1.0 - shape) - scale.powf(1.0 - shape))
                }
            }
            DurationDistribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            DurationDistribution::TruncatedNormal { mean, .. } => mean,
        }
    }

    /// The variance of the distribution.
    ///
    /// For the clamped/truncated families this is the variance of the
    /// *untruncated* parent, which is the quantity the trace generator
    /// advertises to schedulers; the small bias is irrelevant to the
    /// algorithms (they only use `σ` as a pessimism knob).
    pub fn variance(&self) -> f64 {
        match *self {
            DurationDistribution::Deterministic { .. } => 0.0,
            DurationDistribution::Uniform { min, max } => (max - min).powi(2) / 12.0,
            DurationDistribution::Exponential { mean } => mean * mean,
            DurationDistribution::Pareto { scale, shape }
            | DurationDistribution::BoundedPareto { scale, shape, .. } => {
                if shape > 2.0 {
                    scale * scale * shape / ((shape - 1.0).powi(2) * (shape - 2.0))
                } else {
                    f64::INFINITY
                }
            }
            DurationDistribution::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                (s2.exp() - 1.0) * (2.0 * mu + s2).exp()
            }
            DurationDistribution::TruncatedNormal { std_dev, .. } => std_dev * std_dev,
        }
    }

    /// The standard deviation of the distribution (the `σ^c_i` the scheduler
    /// observes).
    pub fn std_dev(&self) -> f64 {
        let v = self.variance();
        if v.is_finite() {
            v.sqrt()
        } else {
            f64::INFINITY
        }
    }

    /// Draws a single workload sample. Samples are always strictly positive
    /// and at least `f64::MIN_POSITIVE`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = match *self {
            DurationDistribution::Deterministic { value } => value,
            DurationDistribution::Uniform { min, max } => {
                if max > min {
                    rng.gen_range(min..=max)
                } else {
                    min
                }
            }
            DurationDistribution::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
            DurationDistribution::Pareto { scale, shape } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                scale / u.powf(1.0 / shape)
            }
            DurationDistribution::BoundedPareto { scale, shape, max } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (scale / u.powf(1.0 / shape)).min(max)
            }
            DurationDistribution::LogNormal { mu, sigma } => {
                let dist = LogNormal::new(mu, sigma).expect("validated at construction");
                dist.sample(rng)
            }
            DurationDistribution::TruncatedNormal { mean, std_dev, min } => {
                let dist = Normal::new(mean, std_dev).expect("validated at construction");
                let mut v = dist.sample(rng);
                let mut tries = 0;
                while v < min && tries < 64 {
                    v = dist.sample(rng);
                    tries += 1;
                }
                v.max(min)
            }
        };
        x.max(f64::MIN_POSITIVE)
    }

    /// Draws `n` samples into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The coefficient of variation `σ / E`, a convenient measure of how
    /// straggler-prone the workload is.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m > 0.0 {
            self.std_dev() / m
        } else {
            0.0
        }
    }

    /// Returns a copy of this distribution rescaled so its mean becomes
    /// `new_mean` (shape/CV preserved where the family allows it).
    pub fn with_mean(&self, new_mean: f64) -> Self {
        let old_mean = self.mean();
        let ratio = if old_mean > 0.0 && old_mean.is_finite() {
            new_mean / old_mean
        } else {
            1.0
        };
        match *self {
            DurationDistribution::Deterministic { .. } => {
                DurationDistribution::Deterministic { value: new_mean }
            }
            DurationDistribution::Uniform { min, max } => DurationDistribution::Uniform {
                min: min * ratio,
                max: max * ratio,
            },
            DurationDistribution::Exponential { .. } => {
                DurationDistribution::Exponential { mean: new_mean }
            }
            DurationDistribution::Pareto { scale, shape } => DurationDistribution::Pareto {
                scale: scale * ratio,
                shape,
            },
            DurationDistribution::BoundedPareto { scale, shape, max } => {
                DurationDistribution::BoundedPareto {
                    scale: scale * ratio,
                    shape,
                    max: max * ratio,
                }
            }
            DurationDistribution::LogNormal { mu, sigma } => DurationDistribution::LogNormal {
                mu: mu + ratio.ln(),
                sigma,
            },
            DurationDistribution::TruncatedNormal { mean, std_dev, min } => {
                let _ = mean;
                DurationDistribution::TruncatedNormal {
                    mean: new_mean,
                    std_dev: std_dev * ratio,
                    min: min * ratio,
                }
            }
        }
    }
}

impl ToJson for DurationDistribution {
    fn to_json(&self) -> JsonValue {
        // Externally tagged, mirroring serde's default enum representation.
        let (tag, body) = match *self {
            DurationDistribution::Deterministic { value } => (
                "Deterministic",
                JsonValue::object([("value", value.to_json())]),
            ),
            DurationDistribution::Uniform { min, max } => (
                "Uniform",
                JsonValue::object([("min", min.to_json()), ("max", max.to_json())]),
            ),
            DurationDistribution::Exponential { mean } => {
                ("Exponential", JsonValue::object([("mean", mean.to_json())]))
            }
            DurationDistribution::Pareto { scale, shape } => (
                "Pareto",
                JsonValue::object([("scale", scale.to_json()), ("shape", shape.to_json())]),
            ),
            DurationDistribution::BoundedPareto { scale, shape, max } => (
                "BoundedPareto",
                JsonValue::object([
                    ("scale", scale.to_json()),
                    ("shape", shape.to_json()),
                    ("max", max.to_json()),
                ]),
            ),
            DurationDistribution::LogNormal { mu, sigma } => (
                "LogNormal",
                JsonValue::object([("mu", mu.to_json()), ("sigma", sigma.to_json())]),
            ),
            DurationDistribution::TruncatedNormal { mean, std_dev, min } => (
                "TruncatedNormal",
                JsonValue::object([
                    ("mean", mean.to_json()),
                    ("std_dev", std_dev.to_json()),
                    ("min", min.to_json()),
                ]),
            ),
        };
        JsonValue::object([(tag, body)])
    }
}

impl FromJson for DurationDistribution {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let f = |body: &JsonValue, key: &str| -> Result<f64, JsonError> {
            f64::from_json(body.field(key)?)
        };
        if let Some(body) = value.get("Deterministic") {
            Ok(DurationDistribution::Deterministic {
                value: f(body, "value")?,
            })
        } else if let Some(body) = value.get("Uniform") {
            Ok(DurationDistribution::Uniform {
                min: f(body, "min")?,
                max: f(body, "max")?,
            })
        } else if let Some(body) = value.get("Exponential") {
            Ok(DurationDistribution::Exponential {
                mean: f(body, "mean")?,
            })
        } else if let Some(body) = value.get("Pareto") {
            Ok(DurationDistribution::Pareto {
                scale: f(body, "scale")?,
                shape: f(body, "shape")?,
            })
        } else if let Some(body) = value.get("BoundedPareto") {
            Ok(DurationDistribution::BoundedPareto {
                scale: f(body, "scale")?,
                shape: f(body, "shape")?,
                max: f(body, "max")?,
            })
        } else if let Some(body) = value.get("LogNormal") {
            Ok(DurationDistribution::LogNormal {
                mu: f(body, "mu")?,
                sigma: f(body, "sigma")?,
            })
        } else if let Some(body) = value.get("TruncatedNormal") {
            Ok(DurationDistribution::TruncatedNormal {
                mean: f(body, "mean")?,
                std_dev: f(body, "std_dev")?,
                min: f(body, "min")?,
            })
        } else {
            Err(JsonError::new("unknown DurationDistribution variant"))
        }
    }
}

impl fmt::Display for DurationDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurationDistribution::Deterministic { value } => write!(f, "Det({value:.1})"),
            DurationDistribution::Uniform { min, max } => write!(f, "U({min:.1},{max:.1})"),
            DurationDistribution::Exponential { mean } => write!(f, "Exp({mean:.1})"),
            DurationDistribution::Pareto { scale, shape } => {
                write!(f, "Pareto(µ={scale:.1},α={shape:.2})")
            }
            DurationDistribution::BoundedPareto { scale, shape, max } => {
                write!(f, "BPareto(µ={scale:.1},α={shape:.2},max={max:.0})")
            }
            DurationDistribution::LogNormal { mu, sigma } => {
                write!(f, "LogN(µ={mu:.2},σ={sigma:.2})")
            }
            DurationDistribution::TruncatedNormal { mean, std_dev, .. } => {
                write!(f, "TN({mean:.1},{std_dev:.1})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_support::rng::SimRng;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xC0FFEE)
    }

    fn empirical_moments(d: &DurationDistribution, n: usize) -> (f64, f64) {
        let mut r = rng();
        let samples = d.sample_n(&mut r, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn deterministic_has_zero_variance() {
        let d = DurationDistribution::Deterministic { value: 5.0 };
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.std_dev(), 0.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    fn pareto_from_mean_matches_requested_mean() {
        let d = DurationDistribution::pareto_from_mean(1179.7, 2.5).unwrap();
        assert!((d.mean() - 1179.7).abs() < 1e-9);
        let (emp_mean, _) = empirical_moments(&d, 200_000);
        assert!(
            (emp_mean - 1179.7).abs() / 1179.7 < 0.05,
            "empirical mean {emp_mean} too far from 1179.7"
        );
    }

    #[test]
    fn pareto_rejects_bad_parameters() {
        assert!(DurationDistribution::pareto_from_mean(-1.0, 2.0).is_err());
        assert!(DurationDistribution::pareto_from_mean(10.0, 1.0).is_err());
        assert!(DurationDistribution::pareto_from_mean(10.0, 0.5).is_err());
    }

    #[test]
    fn lognormal_from_moments_matches_moments() {
        let d = DurationDistribution::lognormal_from_moments(100.0, 80.0).unwrap();
        assert!((d.mean() - 100.0).abs() < 1e-6);
        assert!((d.std_dev() - 80.0).abs() < 1e-6);
        let (emp_mean, emp_std) = empirical_moments(&d, 300_000);
        assert!((emp_mean - 100.0).abs() < 2.0, "empirical mean {emp_mean}");
        assert!((emp_std - 80.0).abs() < 5.0, "empirical std {emp_std}");
    }

    #[test]
    fn lognormal_zero_std_becomes_deterministic() {
        let d = DurationDistribution::lognormal_from_moments(50.0, 0.0).unwrap();
        assert_eq!(d, DurationDistribution::Deterministic { value: 50.0 });
    }

    #[test]
    fn fit_selects_family_by_cv() {
        assert!(matches!(
            DurationDistribution::fit(10.0, 0.0).unwrap(),
            DurationDistribution::Deterministic { .. }
        ));
        assert!(matches!(
            DurationDistribution::fit(10.0, 1.0).unwrap(),
            DurationDistribution::TruncatedNormal { .. }
        ));
        assert!(matches!(
            DurationDistribution::fit(10.0, 20.0).unwrap(),
            DurationDistribution::LogNormal { .. }
        ));
        assert!(DurationDistribution::fit(0.0, 1.0).is_err());
        assert!(DurationDistribution::fit(1.0, -1.0).is_err());
    }

    #[test]
    fn exponential_moments() {
        let d = DurationDistribution::Exponential { mean: 30.0 };
        assert_eq!(d.mean(), 30.0);
        assert_eq!(d.std_dev(), 30.0);
        let (emp_mean, emp_std) = empirical_moments(&d, 200_000);
        assert!((emp_mean - 30.0).abs() < 0.5);
        assert!((emp_std - 30.0).abs() < 0.7);
    }

    #[test]
    fn uniform_moments_and_bounds() {
        let d = DurationDistribution::Uniform {
            min: 10.0,
            max: 20.0,
        };
        assert_eq!(d.mean(), 15.0);
        assert!((d.variance() - 100.0 / 12.0).abs() < 1e-12);
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((10.0..=20.0).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let d = DurationDistribution::BoundedPareto {
            scale: 12.8,
            shape: 1.3,
            max: 22_919.3,
        };
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((12.8..=22_919.3).contains(&x));
        }
        assert!(d.mean() > 12.8 && d.mean() < 22_919.3);
    }

    #[test]
    fn bounded_pareto_mean_close_to_empirical() {
        let d = DurationDistribution::BoundedPareto {
            scale: 10.0,
            shape: 1.5,
            max: 1000.0,
        };
        let (emp_mean, _) = empirical_moments(&d, 400_000);
        assert!(
            (emp_mean - d.mean()).abs() / d.mean() < 0.03,
            "analytic {} vs empirical {emp_mean}",
            d.mean()
        );
    }

    #[test]
    fn truncated_normal_never_below_min() {
        let d = DurationDistribution::TruncatedNormal {
            mean: 10.0,
            std_dev: 5.0,
            min: 1.0,
        };
        let mut r = rng();
        for _ in 0..5000 {
            assert!(d.sample(&mut r) >= 1.0);
        }
    }

    #[test]
    fn with_mean_rescales() {
        let base = DurationDistribution::pareto_from_mean(100.0, 2.2).unwrap();
        let scaled = base.with_mean(250.0);
        assert!((scaled.mean() - 250.0).abs() < 1e-6);
        // CV preserved for Pareto
        assert!((scaled.coefficient_of_variation() - base.coefficient_of_variation()).abs() < 1e-9);

        let log = DurationDistribution::lognormal_from_moments(100.0, 150.0).unwrap();
        let log2 = log.with_mean(40.0);
        assert!((log2.mean() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn samples_are_strictly_positive() {
        let dists = vec![
            DurationDistribution::Deterministic { value: 1.0 },
            DurationDistribution::Exponential { mean: 0.001 },
            DurationDistribution::pareto_from_mean(5.0, 3.0).unwrap(),
            DurationDistribution::lognormal_from_moments(2.0, 10.0).unwrap(),
        ];
        let mut r = rng();
        for d in dists {
            for _ in 0..1000 {
                assert!(d.sample(&mut r) > 0.0, "{d} produced non-positive sample");
            }
        }
    }

    #[test]
    fn json_roundtrip_covers_every_variant() {
        let dists = vec![
            DurationDistribution::Deterministic { value: 5.0 },
            DurationDistribution::Uniform { min: 1.0, max: 2.0 },
            DurationDistribution::Exponential { mean: 30.0 },
            DurationDistribution::Pareto {
                scale: 12.8,
                shape: 1.9,
            },
            DurationDistribution::BoundedPareto {
                scale: 12.8,
                shape: 1.3,
                max: 22_919.3,
            },
            DurationDistribution::LogNormal {
                mu: 1.5,
                sigma: 0.25,
            },
            DurationDistribution::TruncatedNormal {
                mean: 10.0,
                std_dev: 2.0,
                min: 1.0,
            },
        ];
        for d in dists {
            let text = d.to_json().to_compact_string();
            let back = DurationDistribution::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(back, d, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn display_is_nonempty() {
        let d = DurationDistribution::pareto_from_mean(10.0, 2.0).unwrap();
        assert!(!format!("{d}").is_empty());
        assert!(!format!("{d:?}").is_empty());
    }

    #[test]
    fn sample_n_length() {
        let d = DurationDistribution::Exponential { mean: 1.0 };
        let mut r = rng();
        assert_eq!(d.sample_n(&mut r, 17).len(), 17);
    }
}
