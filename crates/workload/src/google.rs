//! Synthetic Google-cluster-like trace generation.
//!
//! The paper drives its evaluation with ~6 000 jobs extracted from the public
//! Google cluster-usage trace and summarises them in Table II:
//!
//! | Statistic | Value |
//! |---|---|
//! | Total number of jobs | 6064 |
//! | Trace duration (s) | 35032 |
//! | Average number of tasks per job | 26.31 |
//! | Minimum task duration (s) | 12.8 |
//! | Maximum task duration (s) | 22919.3 |
//! | Average task duration (s) | 1179.7 |
//!
//! The raw trace is not redistributable, so [`GoogleTraceGenerator`] produces
//! a *synthetic* trace whose marginals match those statistics: a heavy-tailed
//! job-size distribution (most jobs are small, a few are huge), per-job task
//! durations correlated with job size (small jobs have short tasks — this is
//! what makes "cutting down the elapsed time of small jobs" possible at all),
//! Poisson arrivals over the 12-hour window, and integer priorities 0–11 used
//! as job weights (shifted by one so that weight 0 never occurs).
//!
//! Everything is parameterised through [`GoogleTraceProfile`], so scaled-down
//! versions (for tests and Criterion benches) use the same machinery.

use crate::distribution::DurationDistribution;
use crate::ids::JobId;
use crate::job::{JobSpecBuilder, PhaseStats};
use crate::trace::Trace;
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use mapreduce_support::rng::{Rng, SimRng};

/// One job-size class of the synthetic workload mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct JobClass {
    /// Human-readable label ("small", "medium", "large").
    pub name: String,
    /// Probability that a job belongs to this class; the profile normalises
    /// the weights of all classes.
    pub fraction: f64,
    /// Minimum number of tasks of a job of this class.
    pub min_tasks: usize,
    /// Mean number of tasks of a job of this class (geometric-ish spread
    /// between `min_tasks` and `max_tasks`).
    pub mean_tasks: f64,
    /// Maximum number of tasks of a job of this class.
    pub max_tasks: usize,
    /// Mean task duration (seconds) of a job of this class. The per-job mean
    /// is drawn from a log-normal around this value.
    pub mean_task_duration: f64,
    /// Coefficient of variation of the per-job mean duration across jobs of
    /// this class (job-to-job heterogeneity).
    pub job_duration_cv: f64,
    /// Coefficient of variation of task durations *within* one job phase
    /// (this is the variance the cloning algorithms fight).
    pub task_duration_cv: f64,
}

/// Full description of the synthetic trace to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct GoogleTraceProfile {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Length of the arrival window in seconds (jobs arrive Poisson-uniformly
    /// within it).
    pub duration: u64,
    /// Job-size mixture.
    pub classes: Vec<JobClass>,
    /// Fraction of a job's tasks that are map tasks (the rest are reduce
    /// tasks); every job keeps at least one map task.
    pub map_fraction: f64,
    /// Minimum task duration (Table II: 12.8 s). Sampled durations are clamped
    /// from below.
    pub min_task_duration: f64,
    /// Maximum task duration (Table II: 22 919.3 s). Sampled durations are
    /// clamped from above.
    pub max_task_duration: f64,
    /// Highest priority value (inclusive). Priorities are sampled
    /// geometrically in `0..=max_priority` and the job weight is
    /// `priority + 1`.
    pub max_priority: u32,
    /// Parameter of the geometric priority distribution (probability of
    /// stepping down one priority level); larger means more low-priority jobs.
    pub priority_decay: f64,
    /// Fraction of jobs whose arrivals are concentrated into short submission
    /// bursts instead of being spread uniformly over the window. Real
    /// cluster traces (including the Google trace) have strongly bursty
    /// submission patterns; the transient contention that bursts create is
    /// what makes job-level prioritisation matter at an otherwise moderate
    /// average load.
    pub burst_fraction: f64,
    /// Number of burst windows spread evenly over the trace duration. Each
    /// burst window is 2 % of the trace long.
    pub num_bursts: usize,
}

impl GoogleTraceProfile {
    /// The full-scale profile calibrated against Table II of the paper:
    /// 6 064 jobs over 35 032 s, ≈26.3 tasks/job, mean task duration
    /// ≈1 180 s, durations within [12.8 s, 22 919.3 s].
    pub fn paper() -> Self {
        GoogleTraceProfile {
            num_jobs: 6064,
            duration: 35_032,
            classes: vec![
                JobClass {
                    name: "small".to_string(),
                    fraction: 0.60,
                    min_tasks: 1,
                    mean_tasks: 4.0,
                    max_tasks: 15,
                    mean_task_duration: 60.0,
                    job_duration_cv: 0.8,
                    task_duration_cv: 0.2,
                },
                JobClass {
                    name: "medium".to_string(),
                    fraction: 0.30,
                    min_tasks: 10,
                    mean_tasks: 25.0,
                    max_tasks: 80,
                    mean_task_duration: 300.0,
                    job_duration_cv: 0.8,
                    task_duration_cv: 0.2,
                },
                JobClass {
                    name: "large".to_string(),
                    fraction: 0.10,
                    min_tasks: 60,
                    mean_tasks: 165.0,
                    max_tasks: 600,
                    mean_task_duration: 1750.0,
                    job_duration_cv: 1.0,
                    task_duration_cv: 0.25,
                },
            ],
            map_fraction: 0.7,
            min_task_duration: 12.8,
            max_task_duration: 22_919.3,
            max_priority: 11,
            priority_decay: 0.45,
            burst_fraction: 0.4,
            num_bursts: 8,
        }
    }

    /// A scaled-down profile with `num_jobs` jobs spread over the *same*
    /// 12-hour arrival window as the paper profile. The arrival rate is
    /// therefore thinned proportionally, so that running the trace on a
    /// cluster whose machine count is scaled by the same factor keeps the
    /// offered load (≈45 % at paper scale) unchanged — this is what preserves
    /// the qualitative behaviour of the figures at laptop scale.
    pub fn scaled(num_jobs: usize) -> Self {
        GoogleTraceProfile {
            num_jobs,
            ..Self::paper()
        }
    }

    /// Returns a copy with the arrival window overridden.
    ///
    /// [`Self::scaled`] keeps the paper's fixed 35 032 s window and thins the
    /// arrival rate, which preserves offered load only while jobs and
    /// machines shrink by the same factor. Regimes that grow the
    /// jobs-per-machine ratio instead (the million-job tier runs ~10
    /// jobs/machine against the paper's ~0.5) must stretch the window by
    /// that ratio to keep the cluster at the paper's ≈45 % load rather than
    /// collapsing every arrival into a 10-hour pile-up.
    pub fn with_arrival_window(mut self, duration: u64) -> Self {
        self.duration = duration;
        self
    }

    /// Returns a copy of the profile with the within-job task-duration
    /// coefficient of variation overridden for every class. Useful for the
    /// "negligible variance" offline experiments and for ablations.
    pub fn with_task_cv(mut self, cv: f64) -> Self {
        for class in &mut self.classes {
            class.task_duration_cv = cv;
        }
        self
    }

    /// Returns a copy with every arrival forced to zero (bulk arrival).
    pub fn with_bulk_arrivals(mut self) -> Self {
        self.duration = 0;
        self
    }

    /// Builds the generator and produces a trace with the given seed.
    pub fn generate(&self, seed: u64) -> Trace {
        GoogleTraceGenerator::new(self.clone()).generate(seed)
    }
}

impl Default for GoogleTraceProfile {
    fn default() -> Self {
        Self::paper()
    }
}

impl ToJson for JobClass {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", self.name.to_json()),
            ("fraction", self.fraction.to_json()),
            ("min_tasks", self.min_tasks.to_json()),
            ("mean_tasks", self.mean_tasks.to_json()),
            ("max_tasks", self.max_tasks.to_json()),
            ("mean_task_duration", self.mean_task_duration.to_json()),
            ("job_duration_cv", self.job_duration_cv.to_json()),
            ("task_duration_cv", self.task_duration_cv.to_json()),
        ])
    }
}

impl FromJson for JobClass {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(JobClass {
            name: String::from_json(value.field("name")?)?,
            fraction: f64::from_json(value.field("fraction")?)?,
            min_tasks: usize::from_json(value.field("min_tasks")?)?,
            mean_tasks: f64::from_json(value.field("mean_tasks")?)?,
            max_tasks: usize::from_json(value.field("max_tasks")?)?,
            mean_task_duration: f64::from_json(value.field("mean_task_duration")?)?,
            job_duration_cv: f64::from_json(value.field("job_duration_cv")?)?,
            task_duration_cv: f64::from_json(value.field("task_duration_cv")?)?,
        })
    }
}

impl ToJson for GoogleTraceProfile {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("num_jobs", self.num_jobs.to_json()),
            ("duration", self.duration.to_json()),
            ("classes", self.classes.to_json()),
            ("map_fraction", self.map_fraction.to_json()),
            ("min_task_duration", self.min_task_duration.to_json()),
            ("max_task_duration", self.max_task_duration.to_json()),
            ("max_priority", self.max_priority.to_json()),
            ("priority_decay", self.priority_decay.to_json()),
            ("burst_fraction", self.burst_fraction.to_json()),
            ("num_bursts", self.num_bursts.to_json()),
        ])
    }
}

impl FromJson for GoogleTraceProfile {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(GoogleTraceProfile {
            num_jobs: usize::from_json(value.field("num_jobs")?)?,
            duration: u64::from_json(value.field("duration")?)?,
            classes: Vec::from_json(value.field("classes")?)?,
            map_fraction: f64::from_json(value.field("map_fraction")?)?,
            min_task_duration: f64::from_json(value.field("min_task_duration")?)?,
            max_task_duration: f64::from_json(value.field("max_task_duration")?)?,
            max_priority: u32::from_json(value.field("max_priority")?)?,
            priority_decay: f64::from_json(value.field("priority_decay")?)?,
            burst_fraction: f64::from_json(value.field("burst_fraction")?)?,
            num_bursts: usize::from_json(value.field("num_bursts")?)?,
        })
    }
}

/// Generator turning a [`GoogleTraceProfile`] into a [`Trace`].
#[derive(Debug, Clone)]
pub struct GoogleTraceGenerator {
    profile: GoogleTraceProfile,
}

/// Everything sampled about one job except its arrival, priority and id;
/// produced by [`GoogleTraceGenerator::sample_job_body`] and consumed by
/// [`GoogleTraceGenerator::build_job`].
pub(crate) struct JobBody {
    map_workloads: Vec<f64>,
    reduce_workloads: Vec<f64>,
    map_dist: DurationDistribution,
    reduce_dist: DurationDistribution,
}

impl GoogleTraceGenerator {
    /// Creates a generator for the given profile.
    ///
    /// # Panics
    /// Panics if the profile has no classes, a non-positive total class
    /// weight, or `map_fraction` outside `(0, 1]`.
    pub fn new(profile: GoogleTraceProfile) -> Self {
        assert!(
            !profile.classes.is_empty(),
            "profile needs at least one job class"
        );
        let total: f64 = profile.classes.iter().map(|c| c.fraction).sum();
        assert!(total > 0.0, "class fractions must sum to a positive value");
        assert!(
            profile.map_fraction > 0.0 && profile.map_fraction <= 1.0,
            "map_fraction must be in (0, 1]"
        );
        GoogleTraceGenerator { profile }
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &GoogleTraceProfile {
        &self.profile
    }

    /// Generates a trace. The same seed always produces the same trace.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = SimRng::seed_from_u64(seed);
        let total_fraction = self.total_fraction();

        let mut jobs = Vec::with_capacity(self.profile.num_jobs);
        for idx in 0..self.profile.num_jobs {
            let body = self.sample_job_body(&mut rng, total_fraction);
            let arrival = self.sample_arrival(&mut rng);
            let priority = self.sample_priority(&mut rng);
            jobs.push(self.build_job(JobId::new(idx as u64), arrival, priority, body));
        }

        Trace::new(jobs).expect("generated jobs are valid by construction")
    }

    /// Sum of the (unnormalised) class fractions.
    pub(crate) fn total_fraction(&self) -> f64 {
        self.profile.classes.iter().map(|c| c.fraction).sum()
    }

    /// Samples everything about one job except its arrival, priority and id.
    ///
    /// Shared by the batch [`GoogleTraceGenerator::generate`] path and the
    /// streaming per-job path
    /// ([`crate::source::StreamingGenerator`]); both consume the same draws in
    /// the same order, so a job's tasks depend only on the RNG stream handed
    /// in.
    pub(crate) fn sample_job_body(&self, rng: &mut SimRng, total_fraction: f64) -> JobBody {
        let p = &self.profile;
        let class = self.pick_class(rng, total_fraction);
        let num_tasks = self.sample_num_tasks(rng, class);
        let num_map = ((num_tasks as f64 * p.map_fraction).round() as usize).clamp(1, num_tasks);
        let num_reduce = num_tasks - num_map;

        // Per-job mean task duration: log-normal around the class mean.
        let job_mean_dist = DurationDistribution::lognormal_from_moments(
            class.mean_task_duration,
            class.mean_task_duration * class.job_duration_cv,
        )
        .expect("class parameters validated");
        let job_mean = job_mean_dist
            .sample(rng)
            .clamp(p.min_task_duration, p.max_task_duration / 2.0);

        // Reduce tasks tend to be longer than map tasks (they aggregate);
        // keep a fixed 1.5× ratio, as the combined mean stays `job_mean`.
        let map_mean = job_mean * 0.9;
        let reduce_mean = job_mean * 1.5;

        let map_dist = self.phase_distribution(map_mean, class.task_duration_cv);
        let reduce_dist = self.phase_distribution(reduce_mean, class.task_duration_cv);

        let map_workloads: Vec<f64> = (0..num_map)
            .map(|_| {
                map_dist
                    .sample(rng)
                    .clamp(p.min_task_duration, p.max_task_duration)
            })
            .collect();
        let reduce_workloads: Vec<f64> = (0..num_reduce)
            .map(|_| {
                reduce_dist
                    .sample(rng)
                    .clamp(p.min_task_duration, p.max_task_duration)
            })
            .collect();
        JobBody {
            map_workloads,
            reduce_workloads,
            map_dist,
            reduce_dist,
        }
    }

    /// Assembles the [`JobSpec`] of one sampled job.
    pub(crate) fn build_job(
        &self,
        id: JobId,
        arrival: u64,
        priority: u32,
        body: JobBody,
    ) -> crate::job::JobSpec {
        let p = &self.profile;
        let weight = (priority + 1) as f64;
        let mut builder = JobSpecBuilder::new(id)
            .arrival(arrival)
            .weight(weight)
            .map_tasks_from_workloads(&body.map_workloads)
            .map_stats(PhaseStats::new(
                body.map_dist
                    .mean()
                    .clamp(p.min_task_duration, p.max_task_duration),
                body.map_dist.std_dev(),
            ))
            .map_distribution(body.map_dist);
        if !body.reduce_workloads.is_empty() {
            builder = builder
                .reduce_tasks_from_workloads(&body.reduce_workloads)
                .reduce_stats(PhaseStats::new(
                    body.reduce_dist
                        .mean()
                        .clamp(p.min_task_duration, p.max_task_duration),
                    body.reduce_dist.std_dev(),
                ))
                .reduce_distribution(body.reduce_dist);
        }
        builder.build()
    }

    fn pick_class<'a>(&'a self, rng: &mut SimRng, total_fraction: f64) -> &'a JobClass {
        let mut x: f64 = rng.gen_range(0.0..total_fraction);
        for class in &self.profile.classes {
            if x < class.fraction {
                return class;
            }
            x -= class.fraction;
        }
        self.profile
            .classes
            .last()
            .expect("validated: at least one class")
    }

    /// Samples an arrival time: with probability `burst_fraction` inside one
    /// of `num_bursts` short submission bursts, otherwise uniformly over the
    /// window.
    pub(crate) fn sample_arrival(&self, rng: &mut SimRng) -> u64 {
        let p = &self.profile;
        if p.duration == 0 {
            return 0;
        }
        let bursty = p.num_bursts > 0
            && p.burst_fraction > 0.0
            && rng.gen_bool(p.burst_fraction.clamp(0.0, 1.0));
        if bursty {
            let burst_len = (p.duration / 50).max(1);
            let which = rng.gen_range(0..p.num_bursts as u64);
            let start = which * p.duration / p.num_bursts as u64;
            (start + rng.gen_range(0..=burst_len)).min(p.duration)
        } else {
            rng.gen_range(0..=p.duration)
        }
    }

    fn sample_num_tasks(&self, rng: &mut SimRng, class: &JobClass) -> usize {
        // Shifted-geometric-ish sampler: exponential spread around the class
        // mean, clamped to [min_tasks, max_tasks].
        let span_mean = (class.mean_tasks - class.min_tasks as f64).max(0.5);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let extra = -span_mean * u.ln();
        let n = class.min_tasks as f64 + extra;
        (n.round() as usize).clamp(class.min_tasks.max(1), class.max_tasks.max(1))
    }

    pub(crate) fn sample_priority(&self, rng: &mut SimRng) -> u32 {
        let p = self.profile.priority_decay.clamp(0.01, 0.99);
        let mut priority = 0u32;
        while priority < self.profile.max_priority && rng.gen_bool(p) {
            priority += 1;
        }
        priority
    }

    fn phase_distribution(&self, mean: f64, cv: f64) -> DurationDistribution {
        let mean = mean.max(self.profile.min_task_duration);
        if cv <= 0.0 {
            DurationDistribution::Deterministic { value: mean }
        } else {
            DurationDistribution::lognormal_from_moments(mean, mean * cv)
                .expect("mean positive by construction")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Phase;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let profile = GoogleTraceProfile::scaled(50);
        let a = profile.generate(7);
        let b = profile.generate(7);
        let c = profile.generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn profile_json_roundtrip() {
        // The experiment service fingerprints scenarios through this JSON
        // form, so it must roundtrip exactly (classes included).
        let profile = GoogleTraceProfile::scaled(123).with_task_cv(0.3);
        let json = profile.to_json().to_compact_string();
        let back = GoogleTraceProfile::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, profile);
        assert!(GoogleTraceProfile::from_json(&JsonValue::Null).is_err());
        assert!(JobClass::from_json(&JsonValue::object([])).is_err());
    }

    #[test]
    fn scaled_profile_counts() {
        let trace = GoogleTraceProfile::scaled(120).generate(1);
        assert_eq!(trace.len(), 120);
        assert!(trace.total_tasks() > 120);
    }

    #[test]
    fn durations_respect_clamps() {
        let profile = GoogleTraceProfile::scaled(150);
        let trace = profile.generate(3);
        for job in trace.iter() {
            for t in job.map_tasks.iter().chain(job.reduce_tasks.iter()) {
                assert!(t.workload >= profile.min_task_duration - 1e-9);
                assert!(t.workload <= profile.max_task_duration + 1e-9);
            }
        }
    }

    #[test]
    fn weights_are_in_priority_range() {
        let profile = GoogleTraceProfile::scaled(200);
        let trace = profile.generate(11);
        for job in trace.iter() {
            assert!(job.weight >= 1.0);
            assert!(job.weight <= (profile.max_priority + 1) as f64);
        }
        // Priorities should not all be identical.
        let distinct: std::collections::HashSet<u64> =
            trace.iter().map(|j| j.weight as u64).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn every_job_has_a_map_task() {
        let trace = GoogleTraceProfile::scaled(150).generate(5);
        for job in trace.iter() {
            assert!(job.num_map_tasks() >= 1);
            assert!(!job.tasks(Phase::Map).is_empty());
        }
    }

    #[test]
    fn paper_scale_statistics_are_in_the_right_ballpark() {
        // Full-scale generation (6 064 jobs) — the statistics should land close
        // to Table II. Allow generous tolerances: this is a synthetic stand-in,
        // not a fit to the raw trace.
        let trace = GoogleTraceProfile::paper().generate(2015);
        let stats = trace.stats();
        assert_eq!(stats.total_jobs, 6064);
        assert!(
            (stats.mean_tasks_per_job - 26.31).abs() / 26.31 < 0.25,
            "mean tasks/job {} too far from 26.31",
            stats.mean_tasks_per_job
        );
        assert!(
            (stats.mean_task_duration - 1179.7).abs() / 1179.7 < 0.35,
            "mean task duration {} too far from 1179.7",
            stats.mean_task_duration
        );
        assert!(stats.min_task_duration >= 12.8 - 1e-9);
        assert!(stats.max_task_duration <= 22_919.3 + 1e-9);
        assert!(stats.duration <= 35_032);
        assert!(stats.duration > 30_000);
    }

    #[test]
    fn small_jobs_have_shorter_tasks_than_large_jobs() {
        let trace = GoogleTraceProfile::scaled(600).generate(9);
        let mut small_mean = (0.0, 0usize);
        let mut large_mean = (0.0, 0usize);
        for job in trace.iter() {
            let mean_dur = job.true_total_workload() / job.num_tasks() as f64;
            if job.num_tasks() <= 10 {
                small_mean.0 += mean_dur;
                small_mean.1 += 1;
            } else if job.num_tasks() >= 60 {
                large_mean.0 += mean_dur;
                large_mean.1 += 1;
            }
        }
        assert!(small_mean.1 > 0 && large_mean.1 > 0);
        let small = small_mean.0 / small_mean.1 as f64;
        let large = large_mean.0 / large_mean.1 as f64;
        assert!(
            small < large,
            "small-job tasks ({small:.1}s) should be shorter than large-job tasks ({large:.1}s)"
        );
    }

    #[test]
    fn with_task_cv_zero_gives_deterministic_phases() {
        let profile = GoogleTraceProfile::scaled(30).with_task_cv(0.0);
        let trace = profile.generate(4);
        for job in trace.iter() {
            if job.num_map_tasks() >= 2 {
                let w0 = job.map_tasks[0].workload;
                for t in &job.map_tasks {
                    assert!((t.workload - w0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn bulk_arrival_profile_puts_everything_at_zero() {
        let trace = GoogleTraceProfile::scaled(40)
            .with_bulk_arrivals()
            .generate(1);
        assert!(trace.iter().all(|j| j.arrival == 0));
    }

    #[test]
    #[should_panic(expected = "at least one job class")]
    fn generator_rejects_empty_classes() {
        let mut profile = GoogleTraceProfile::paper();
        profile.classes.clear();
        GoogleTraceGenerator::new(profile);
    }

    #[test]
    #[should_panic(expected = "map_fraction")]
    fn generator_rejects_bad_map_fraction() {
        let mut profile = GoogleTraceProfile::paper();
        profile.map_fraction = 0.0;
        GoogleTraceGenerator::new(profile);
    }
}
