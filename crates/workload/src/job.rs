//! Job and task specifications.
//!
//! A [`JobSpec`] is the static description of one MapReduce job exactly as the
//! paper's model needs it (Section III): an arrival time `a_i`, a weight
//! `w_i`, `m_i` map tasks and `r_i` reduce tasks, plus per-phase first and
//! second moments (`E^c_i`, `σ^c_i`) which are the only statistics schedulers
//! are allowed to consult. Each [`TaskSpec`] additionally carries its sampled
//! ground-truth workload `p^{c,j}_i`, which only the simulator may look at.

use crate::distribution::DurationDistribution;
use crate::ids::{JobId, Phase, TaskId};
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use std::fmt;

/// Ground-truth description of a single task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Identity of the task.
    pub id: TaskId,
    /// The sampled workload `p^{c,j}_i` (processing time on a unit-speed
    /// machine). Only the simulator consumes this; schedulers must not.
    pub workload: f64,
}

impl TaskSpec {
    /// Creates a task spec.
    ///
    /// # Panics
    /// Panics if `workload` is not strictly positive and finite.
    pub fn new(id: TaskId, workload: f64) -> Self {
        assert!(
            workload.is_finite() && workload > 0.0,
            "task workload must be positive and finite, got {workload}"
        );
        TaskSpec { id, workload }
    }
}

impl ToJson for TaskSpec {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("id", self.id.to_json()),
            ("workload", self.workload.to_json()),
        ])
    }
}

impl FromJson for TaskSpec {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let workload = f64::from_json(value.field("workload")?)?;
        if !(workload.is_finite() && workload > 0.0) {
            return Err(JsonError::new("task workload must be positive and finite"));
        }
        Ok(TaskSpec {
            id: TaskId::from_json(value.field("id")?)?,
            workload,
        })
    }
}

/// First and second moments of the task-workload distribution of one phase —
/// the a-priori knowledge the paper grants the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Mean task workload `E^c_i` of this phase.
    pub mean: f64,
    /// Standard deviation `σ^c_i` of the task workload of this phase.
    pub std_dev: f64,
}

impl PhaseStats {
    /// Creates phase statistics.
    ///
    /// # Panics
    /// Panics if `mean` is not positive/finite or `std_dev` is negative.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "phase mean must be positive and finite, got {mean}"
        );
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "phase std_dev must be non-negative and finite, got {std_dev}"
        );
        PhaseStats { mean, std_dev }
    }

    /// The *effective* per-task workload `E + r·σ` used throughout the paper
    /// (Equations (2) and (4)); `r` is the pessimism factor.
    pub fn effective_task_workload(&self, r: f64) -> f64 {
        self.mean + r * self.std_dev
    }

    /// Derives the stats of a distribution.
    pub fn from_distribution(dist: &DurationDistribution) -> Self {
        let std = dist.std_dev();
        PhaseStats::new(dist.mean(), if std.is_finite() { std } else { dist.mean() })
    }
}

impl Default for PhaseStats {
    fn default() -> Self {
        PhaseStats {
            mean: 1.0,
            std_dev: 0.0,
        }
    }
}

impl fmt::Display for PhaseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E={:.1} σ={:.1}", self.mean, self.std_dev)
    }
}

impl ToJson for PhaseStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("mean", self.mean.to_json()),
            ("std_dev", self.std_dev.to_json()),
        ])
    }
}

impl FromJson for PhaseStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(PhaseStats {
            mean: f64::from_json(value.field("mean")?)?,
            std_dev: f64::from_json(value.field("std_dev")?)?,
        })
    }
}

/// Static description of one MapReduce job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Identity of the job.
    pub id: JobId,
    /// Arrival time `a_i` in slots (seconds at the default slot length).
    pub arrival: u64,
    /// Weight `w_i` (the Google trace priority 0–11 is used as the weight in
    /// the paper's evaluation; we require it to be ≥ a small positive value so
    /// priority ratios stay finite).
    pub weight: f64,
    /// Map tasks with their ground-truth workloads.
    pub map_tasks: Vec<TaskSpec>,
    /// Reduce tasks with their ground-truth workloads.
    pub reduce_tasks: Vec<TaskSpec>,
    /// Scheduler-visible moments of the map-phase workload distribution.
    pub map_stats: PhaseStats,
    /// Scheduler-visible moments of the reduce-phase workload distribution.
    pub reduce_stats: PhaseStats,
    /// The distribution map-task workloads (and clone resamples) are drawn
    /// from. `None` means clones re-use the original workload.
    pub map_distribution: Option<DurationDistribution>,
    /// The distribution reduce-task workloads (and clone resamples) are drawn
    /// from.
    pub reduce_distribution: Option<DurationDistribution>,
}

impl JobSpec {
    /// Starts building a job with the given id.
    pub fn builder(id: JobId) -> JobSpecBuilder {
        JobSpecBuilder::new(id)
    }

    /// Number of map tasks `m_i`.
    pub fn num_map_tasks(&self) -> usize {
        self.map_tasks.len()
    }

    /// Number of reduce tasks `r_i`.
    pub fn num_reduce_tasks(&self) -> usize {
        self.reduce_tasks.len()
    }

    /// Total number of tasks in the job.
    pub fn num_tasks(&self) -> usize {
        self.map_tasks.len() + self.reduce_tasks.len()
    }

    /// Tasks of the given phase.
    pub fn tasks(&self, phase: Phase) -> &[TaskSpec] {
        match phase {
            Phase::Map => &self.map_tasks,
            Phase::Reduce => &self.reduce_tasks,
        }
    }

    /// Scheduler-visible stats of the given phase.
    pub fn stats(&self, phase: Phase) -> PhaseStats {
        match phase {
            Phase::Map => self.map_stats,
            Phase::Reduce => self.reduce_stats,
        }
    }

    /// Workload-sampling distribution of the given phase, if any.
    pub fn distribution(&self, phase: Phase) -> Option<&DurationDistribution> {
        match phase {
            Phase::Map => self.map_distribution.as_ref(),
            Phase::Reduce => self.reduce_distribution.as_ref(),
        }
    }

    /// Total *effective* workload `φ_i = m_i(E^m + rσ^m) + r_i(E^r + rσ^r)`
    /// (Equation (2) of the paper).
    pub fn effective_workload(&self, r: f64) -> f64 {
        self.num_map_tasks() as f64 * self.map_stats.effective_task_workload(r)
            + self.num_reduce_tasks() as f64 * self.reduce_stats.effective_task_workload(r)
    }

    /// Total ground-truth workload (sum of every task's sampled workload) —
    /// used by metrics and oracle baselines, never by the paper's schedulers.
    pub fn true_total_workload(&self) -> f64 {
        self.map_tasks
            .iter()
            .chain(self.reduce_tasks.iter())
            .map(|t| t.workload)
            .sum()
    }

    /// The job's SRPT priority `w_i / φ_i` used by the offline algorithm.
    pub fn priority(&self, r: f64) -> f64 {
        let phi = self.effective_workload(r);
        if phi > 0.0 {
            self.weight / phi
        } else {
            f64::INFINITY
        }
    }

    /// A quick validity check used by the trace importer: ids are consistent,
    /// workloads positive, at least one task.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_tasks() == 0 {
            return Err(format!("{}: job has no tasks", self.id));
        }
        if self.weight.is_nan() || self.weight <= 0.0 {
            return Err(format!("{}: weight must be positive", self.id));
        }
        for (phase, tasks) in [
            (Phase::Map, &self.map_tasks),
            (Phase::Reduce, &self.reduce_tasks),
        ] {
            for (idx, t) in tasks.iter().enumerate() {
                if t.id.job != self.id || t.id.phase != phase || t.id.index as usize != idx {
                    return Err(format!("{}: task id {} inconsistent", self.id, t.id));
                }
                if t.workload.is_nan() || t.workload <= 0.0 || !t.workload.is_finite() {
                    return Err(format!("{}: task {} has invalid workload", self.id, t.id));
                }
            }
        }
        Ok(())
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("id", self.id.to_json()),
            ("arrival", self.arrival.to_json()),
            ("weight", self.weight.to_json()),
            ("map_tasks", self.map_tasks.to_json()),
            ("reduce_tasks", self.reduce_tasks.to_json()),
            ("map_stats", self.map_stats.to_json()),
            ("reduce_stats", self.reduce_stats.to_json()),
            ("map_distribution", self.map_distribution.to_json()),
            ("reduce_distribution", self.reduce_distribution.to_json()),
        ])
    }
}

impl FromJson for JobSpec {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(JobSpec {
            id: JobId::from_json(value.field("id")?)?,
            arrival: u64::from_json(value.field("arrival")?)?,
            weight: f64::from_json(value.field("weight")?)?,
            map_tasks: Vec::from_json(value.field("map_tasks")?)?,
            reduce_tasks: Vec::from_json(value.field("reduce_tasks")?)?,
            map_stats: PhaseStats::from_json(value.field("map_stats")?)?,
            reduce_stats: PhaseStats::from_json(value.field("reduce_stats")?)?,
            map_distribution: Option::from_json(value.field("map_distribution")?)?,
            reduce_distribution: Option::from_json(value.field("reduce_distribution")?)?,
        })
    }
}

/// Builder for [`JobSpec`] (C-BUILDER).
///
/// ```
/// use mapreduce_workload::{JobId, JobSpecBuilder, PhaseStats};
///
/// let job = JobSpecBuilder::new(JobId::new(0))
///     .arrival(10)
///     .weight(3.0)
///     .map_tasks_from_workloads(&[5.0, 6.0, 7.0])
///     .reduce_tasks_from_workloads(&[12.0])
///     .map_stats(PhaseStats::new(6.0, 1.0))
///     .reduce_stats(PhaseStats::new(12.0, 0.0))
///     .build();
/// assert_eq!(job.num_map_tasks(), 3);
/// assert_eq!(job.num_reduce_tasks(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    id: JobId,
    arrival: u64,
    weight: f64,
    map_workloads: Vec<f64>,
    reduce_workloads: Vec<f64>,
    map_stats: Option<PhaseStats>,
    reduce_stats: Option<PhaseStats>,
    map_distribution: Option<DurationDistribution>,
    reduce_distribution: Option<DurationDistribution>,
}

impl JobSpecBuilder {
    /// Starts a builder for the job with the given id.
    pub fn new(id: JobId) -> Self {
        JobSpecBuilder {
            id,
            arrival: 0,
            weight: 1.0,
            map_workloads: Vec::new(),
            reduce_workloads: Vec::new(),
            map_stats: None,
            reduce_stats: None,
            map_distribution: None,
            reduce_distribution: None,
        }
    }

    /// Sets the arrival slot (default 0).
    pub fn arrival(mut self, arrival: u64) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the weight (default 1.0).
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Appends map tasks with the given ground-truth workloads.
    pub fn map_tasks_from_workloads(mut self, workloads: &[f64]) -> Self {
        self.map_workloads.extend_from_slice(workloads);
        self
    }

    /// Appends reduce tasks with the given ground-truth workloads.
    pub fn reduce_tasks_from_workloads(mut self, workloads: &[f64]) -> Self {
        self.reduce_workloads.extend_from_slice(workloads);
        self
    }

    /// Sets the scheduler-visible map-phase moments. If omitted they are
    /// computed from the supplied workloads.
    pub fn map_stats(mut self, stats: PhaseStats) -> Self {
        self.map_stats = Some(stats);
        self
    }

    /// Sets the scheduler-visible reduce-phase moments. If omitted they are
    /// computed from the supplied workloads.
    pub fn reduce_stats(mut self, stats: PhaseStats) -> Self {
        self.reduce_stats = Some(stats);
        self
    }

    /// Sets the map-phase resampling distribution (used for clone workloads).
    pub fn map_distribution(mut self, dist: DurationDistribution) -> Self {
        self.map_distribution = Some(dist);
        self
    }

    /// Sets the reduce-phase resampling distribution (used for clone
    /// workloads).
    pub fn reduce_distribution(mut self, dist: DurationDistribution) -> Self {
        self.reduce_distribution = Some(dist);
        self
    }

    /// Builds the [`JobSpec`].
    ///
    /// # Panics
    /// Panics if the job ends up with zero tasks or a non-positive weight.
    pub fn build(self) -> JobSpec {
        assert!(
            !self.map_workloads.is_empty() || !self.reduce_workloads.is_empty(),
            "job {} must have at least one task",
            self.id
        );
        assert!(self.weight > 0.0, "job {} weight must be positive", self.id);

        let empirical = |workloads: &[f64]| -> PhaseStats {
            if workloads.is_empty() {
                // Phase not present; keep harmless defaults.
                return PhaseStats::default();
            }
            let n = workloads.len() as f64;
            let mean = workloads.iter().sum::<f64>() / n;
            let var = workloads.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / n;
            PhaseStats::new(mean, var.sqrt())
        };

        let map_stats = self
            .map_stats
            .unwrap_or_else(|| empirical(&self.map_workloads));
        let reduce_stats = self
            .reduce_stats
            .unwrap_or_else(|| empirical(&self.reduce_workloads));

        let map_tasks = self
            .map_workloads
            .iter()
            .enumerate()
            .map(|(i, &w)| TaskSpec::new(TaskId::new(self.id, Phase::Map, i as u32), w))
            .collect();
        let reduce_tasks = self
            .reduce_workloads
            .iter()
            .enumerate()
            .map(|(i, &w)| TaskSpec::new(TaskId::new(self.id, Phase::Reduce, i as u32), w))
            .collect();

        JobSpec {
            id: self.id,
            arrival: self.arrival,
            weight: self.weight,
            map_tasks,
            reduce_tasks,
            map_stats,
            reduce_stats,
            map_distribution: self.map_distribution,
            reduce_distribution: self.reduce_distribution,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job() -> JobSpec {
        JobSpecBuilder::new(JobId::new(1))
            .arrival(5)
            .weight(2.0)
            .map_tasks_from_workloads(&[10.0, 20.0, 30.0])
            .reduce_tasks_from_workloads(&[40.0, 50.0])
            .build()
    }

    #[test]
    fn builder_counts_and_ids() {
        let job = sample_job();
        assert_eq!(job.num_map_tasks(), 3);
        assert_eq!(job.num_reduce_tasks(), 2);
        assert_eq!(job.num_tasks(), 5);
        assert_eq!(
            job.map_tasks[2].id,
            TaskId::new(JobId::new(1), Phase::Map, 2)
        );
        assert_eq!(
            job.reduce_tasks[0].id,
            TaskId::new(JobId::new(1), Phase::Reduce, 0)
        );
        assert!(job.validate().is_ok());
    }

    #[test]
    fn builder_computes_empirical_stats_when_missing() {
        let job = sample_job();
        assert!((job.map_stats.mean - 20.0).abs() < 1e-12);
        assert!((job.reduce_stats.mean - 45.0).abs() < 1e-12);
        assert!(job.map_stats.std_dev > 0.0);
    }

    #[test]
    fn explicit_stats_override_empirical() {
        let job = JobSpecBuilder::new(JobId::new(2))
            .map_tasks_from_workloads(&[1.0, 100.0])
            .map_stats(PhaseStats::new(7.0, 3.0))
            .build();
        assert_eq!(job.map_stats.mean, 7.0);
        assert_eq!(job.map_stats.std_dev, 3.0);
    }

    #[test]
    fn effective_workload_matches_equation_2() {
        let job = JobSpecBuilder::new(JobId::new(3))
            .weight(4.0)
            .map_tasks_from_workloads(&[1.0; 10])
            .reduce_tasks_from_workloads(&[1.0; 5])
            .map_stats(PhaseStats::new(10.0, 2.0))
            .reduce_stats(PhaseStats::new(20.0, 4.0))
            .build();
        // φ = 10·(10 + 3·2) + 5·(20 + 3·4) = 160 + 160 = 320
        assert!((job.effective_workload(3.0) - 320.0).abs() < 1e-12);
        // priority = w/φ
        assert!((job.priority(3.0) - 4.0 / 320.0).abs() < 1e-15);
        // r = 0 ignores the variance term.
        assert!((job.effective_workload(0.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn true_total_workload_sums_tasks() {
        let job = sample_job();
        assert!((job.true_total_workload() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn tasks_and_stats_accessors_by_phase() {
        let job = sample_job();
        assert_eq!(job.tasks(Phase::Map).len(), 3);
        assert_eq!(job.tasks(Phase::Reduce).len(), 2);
        assert_eq!(job.stats(Phase::Map), job.map_stats);
        assert_eq!(job.stats(Phase::Reduce), job.reduce_stats);
    }

    #[test]
    fn phase_stats_effective_workload() {
        let s = PhaseStats::new(100.0, 25.0);
        assert_eq!(s.effective_task_workload(0.0), 100.0);
        assert_eq!(s.effective_task_workload(2.0), 150.0);
    }

    #[test]
    fn phase_stats_from_distribution() {
        let d = DurationDistribution::Exponential { mean: 42.0 };
        let s = PhaseStats::from_distribution(&d);
        assert!((s.mean - 42.0).abs() < 1e-12);
        assert!((s.std_dev - 42.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "workload must be positive")]
    fn task_spec_rejects_zero_workload() {
        TaskSpec::new(TaskId::new(JobId::new(0), Phase::Map, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn builder_rejects_empty_job() {
        JobSpecBuilder::new(JobId::new(0)).build();
    }

    #[test]
    fn validate_catches_inconsistent_ids() {
        let mut job = sample_job();
        job.map_tasks[0].id = TaskId::new(JobId::new(99), Phase::Map, 0);
        assert!(job.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_weight() {
        let mut job = sample_job();
        job.weight = 0.0;
        assert!(job.validate().is_err());
    }

    #[test]
    fn map_only_job_is_valid() {
        let job = JobSpecBuilder::new(JobId::new(5))
            .map_tasks_from_workloads(&[3.0])
            .build();
        assert!(job.validate().is_ok());
        assert_eq!(job.num_reduce_tasks(), 0);
        assert!(job.effective_workload(1.0) > 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut job = sample_job();
        job.map_distribution = Some(DurationDistribution::Exponential { mean: 20.0 });
        let json = job.to_json().to_pretty_string();
        let back = JobSpec::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, job);
    }
}
