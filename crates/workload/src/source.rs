//! Streaming job sources: jobs delivered in arrival order, on demand.
//!
//! A [`Trace`] materialises every [`JobSpec`] of a run up front, which caps
//! scenario scale: at 100 000+ jobs the job specifications (task workload
//! vectors, per-phase distributions) dominate memory long before the
//! simulator itself does. A [`JobSource`] is the lazy counterpart — a
//! pull-based stream of jobs in arrival order — so the engine can admit jobs
//! as they arrive and never needs the whole workload in memory at once.
//!
//! Three implementations ship with the crate:
//!
//! * [`MaterializedSource`] wraps an existing [`Trace`]. Feeding the engine
//!   from it is **bit-identical** to handing the trace over directly; it is
//!   the adapter that lets every trace-based code path run through the
//!   streaming seam.
//! * [`StreamingGenerator`] synthesizes Google-profile jobs lazily with
//!   **deterministic per-job RNG streams**: job `k`'s content depends only on
//!   `(seed, k)`, never on how many jobs were pulled before it. Only the
//!   arrival schedule (16 bytes per job) is precomputed; job bodies — the
//!   expensive part — are synthesized one at a time as the cursor advances,
//!   and [`StreamingGenerator::materialize`] produces the exact [`Trace`] the
//!   stream corresponds to (same jobs, same dense ids).
//! * [`crate::google_csv::GoogleTraceSource`] feeds jobs converted from the
//!   public Google cluster-usage `task_events` CSV schema (see
//!   [`crate::google_csv`]).
//!
//! # Contract
//!
//! Implementations must yield jobs in **non-decreasing arrival order** with
//! **dense job ids**: the `i`-th job returned by [`JobSource::next_job`]
//! carries `JobId(i)` and task ids consistent with it — exactly the invariant
//! [`Trace::new`] enforces, so a consumer can use job ids as vector indices.

use crate::google::{GoogleTraceGenerator, GoogleTraceProfile};
use crate::ids::JobId;
use crate::job::JobSpec;
use crate::trace::Trace;
use mapreduce_support::rng::SimRng;

/// A pull-based stream of jobs in arrival order.
///
/// See the [module documentation](self) for the ordering/id contract.
///
/// `Send` is a supertrait so the simulation engine's pipeline mode can run
/// the producer on its own thread; every source here is a plain owned value
/// (materialised specs, an RNG cursor, a converted trace), so the bound
/// costs implementors nothing.
pub trait JobSource: Send {
    /// Short stable label for reports and benchmark ids.
    fn name(&self) -> &str;

    /// Total number of jobs this source will yield over its lifetime.
    fn total_jobs(&self) -> usize;

    /// The next job in arrival order, or `None` once all jobs were yielded.
    fn next_job(&mut self) -> Option<JobSpec>;

    /// Number of fully materialised [`JobSpec`]s the source currently keeps
    /// resident (memory visibility for benchmarks): a wrapped trace counts
    /// its not-yet-yielded jobs, a lazy generator counts none.
    fn resident_jobs(&self) -> usize;
}

/// A [`JobSource`] over a fully materialised [`Trace`].
///
/// Yields the trace's jobs **by move**, in order — a run through this
/// adapter deep-copies each job exactly once (into the engine's runtime
/// state), the same cost as the pre-streaming trace-vector path. Since
/// [`Trace::new`] already sorted the jobs by arrival and assigned dense ids,
/// the source contract holds by construction.
#[derive(Debug, Clone)]
pub struct MaterializedSource {
    /// Not-yet-yielded jobs, consumed front to back.
    jobs: std::vec::IntoIter<JobSpec>,
    total: usize,
}

impl MaterializedSource {
    /// Wraps an owned trace.
    pub fn new(trace: Trace) -> Self {
        let jobs = trace.into_jobs();
        MaterializedSource {
            total: jobs.len(),
            jobs: jobs.into_iter(),
        }
    }

    /// Wraps a clone of a borrowed trace.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::new(trace.clone())
    }
}

impl JobSource for MaterializedSource {
    fn name(&self) -> &str {
        "materialized"
    }

    fn total_jobs(&self) -> usize {
        self.total
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        self.jobs.next()
    }

    fn resident_jobs(&self) -> usize {
        self.jobs.as_slice().len()
    }
}

/// Lazily synthesizes a Google-profile workload with deterministic per-job
/// RNG streams and constant per-job memory.
///
/// Construction samples only the **arrival schedule**: one arrival draw per
/// job from that job's own stream (derived from `(seed, original index)` via
/// [`SimRng::derive_stream`]), stably sorted by `(arrival, index)` — the
/// exact order [`Trace::new`]'s stable arrival sort produces. Everything else
/// about a job (class, task counts, workloads, distributions, priority) is
/// synthesized on demand when the cursor reaches it, from the same per-job
/// stream, so:
///
/// * pulling the stream twice — or materialising it with
///   [`StreamingGenerator::materialize`] and reading the trace — yields
///   bit-identical jobs, and
/// * memory stays bounded by the 16-byte-per-job schedule (a padded
///   `(u64, u32)` pair) instead of the full job specifications.
///
/// Note the per-job streams make this a *different* (equally valid) trace
/// than [`GoogleTraceProfile::generate`], which threads one sequential RNG
/// through all jobs and therefore cannot synthesize job `k` without
/// synthesizing every job before it.
#[derive(Debug, Clone)]
pub struct StreamingGenerator {
    generator: GoogleTraceGenerator,
    base: SimRng,
    total_fraction: f64,
    /// `(arrival, original job index)`, sorted ascending.
    schedule: Vec<(u64, u32)>,
    cursor: usize,
}

impl StreamingGenerator {
    /// Creates the stream for a profile and seed.
    ///
    /// # Panics
    /// Panics if the profile is invalid (see [`GoogleTraceGenerator::new`])
    /// or has more than `u32::MAX` jobs.
    pub fn new(profile: GoogleTraceProfile, seed: u64) -> Self {
        assert!(
            profile.num_jobs <= u32::MAX as usize,
            "streaming generator supports at most u32::MAX jobs"
        );
        let generator = GoogleTraceGenerator::new(profile);
        let base = SimRng::seed_from_u64(seed);
        let total_fraction = generator.total_fraction();
        let num_jobs = generator.profile().num_jobs;
        let mut schedule: Vec<(u64, u32)> = Vec::with_capacity(num_jobs);
        for k in 0..num_jobs as u32 {
            let mut rng = base.derive_stream(k as u64);
            schedule.push((generator.sample_arrival(&mut rng), k));
        }
        schedule.sort_unstable();
        StreamingGenerator {
            generator,
            base,
            total_fraction,
            schedule,
            cursor: 0,
        }
    }

    /// The profile driving the synthesis.
    pub fn profile(&self) -> &GoogleTraceProfile {
        self.generator.profile()
    }

    /// Synthesizes job `original`'s spec under the given id from its per-job
    /// stream: the canonical draw order (arrival, body, priority) shared by
    /// the streaming cursor and [`StreamingGenerator::materialize`], so the
    /// two can never drift apart.
    fn synthesize_job(&self, original: u32, id: JobId) -> JobSpec {
        let mut rng = self.base.derive_stream(original as u64);
        let arrival = self.generator.sample_arrival(&mut rng);
        let body = self
            .generator
            .sample_job_body(&mut rng, self.total_fraction);
        let priority = self.generator.sample_priority(&mut rng);
        self.generator.build_job(id, arrival, priority, body)
    }

    /// Synthesizes the job at schedule position `dense`. `build_job` derives
    /// the task ids from the job id, so handing it the dense schedule
    /// position reproduces exactly what `Trace::new`'s id reassignment would
    /// have produced.
    fn synthesize(&self, dense: usize) -> JobSpec {
        let (arrival, original) = self.schedule[dense];
        let job = self.synthesize_job(original, JobId::new(dense as u64));
        debug_assert_eq!(job.arrival, arrival, "arrival schedule out of sync");
        job
    }

    /// Materialises the whole stream as a [`Trace`].
    ///
    /// Jobs are synthesized in original-index order and run through
    /// [`Trace::new`] (stable arrival sort + dense id reassignment); the
    /// result is bit-identical to pulling the stream job by job, which is
    /// what the streaming-equivalence proptest pins.
    pub fn materialize(&self) -> Trace {
        let num_jobs = self.generator.profile().num_jobs;
        let jobs: Vec<JobSpec> = (0..num_jobs as u32)
            .map(|k| self.synthesize_job(k, JobId::new(k as u64)))
            .collect();
        Trace::new(jobs).expect("streamed jobs are valid by construction")
    }

    /// Resets the cursor so the stream can be pulled again from the start.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

impl JobSource for StreamingGenerator {
    fn name(&self) -> &str {
        "streaming"
    }

    fn total_jobs(&self) -> usize {
        self.schedule.len()
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        if self.cursor >= self.schedule.len() {
            return None;
        }
        let job = self.synthesize(self.cursor);
        self.cursor += 1;
        Some(job)
    }

    fn resident_jobs(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(source: &mut dyn JobSource) -> Vec<JobSpec> {
        std::iter::from_fn(|| source.next_job()).collect()
    }

    #[test]
    fn materialized_source_yields_the_trace_in_order() {
        let trace = GoogleTraceProfile::scaled(40).generate(3);
        let mut source = MaterializedSource::from_trace(&trace);
        assert_eq!(source.total_jobs(), 40);
        assert_eq!(source.resident_jobs(), 40);
        assert_eq!(source.name(), "materialized");
        let jobs = drain(&mut source);
        assert_eq!(jobs.len(), 40);
        assert_eq!(jobs, trace.jobs());
        assert!(source.next_job().is_none());
    }

    #[test]
    fn streaming_generator_matches_its_materialization() {
        let profile = GoogleTraceProfile::scaled(60);
        let mut stream = StreamingGenerator::new(profile.clone(), 11);
        assert_eq!(stream.total_jobs(), 60);
        assert_eq!(stream.resident_jobs(), 0);
        let materialized = stream.materialize();
        let jobs = drain(&mut stream);
        assert_eq!(jobs.len(), 60);
        assert_eq!(jobs, materialized.jobs());
    }

    #[test]
    fn streaming_jobs_arrive_in_order_with_dense_ids() {
        let mut stream = StreamingGenerator::new(GoogleTraceProfile::scaled(80), 5);
        let jobs = drain(&mut stream);
        let mut prev = 0;
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, JobId::new(i as u64));
            assert!(job.arrival >= prev, "arrivals must be non-decreasing");
            assert!(job.validate().is_ok());
            prev = job.arrival;
        }
    }

    #[test]
    fn streaming_is_deterministic_per_seed_and_independent_of_pull_order() {
        let profile = GoogleTraceProfile::scaled(30);
        let mut a = StreamingGenerator::new(profile.clone(), 7);
        let mut b = StreamingGenerator::new(profile.clone(), 7);
        // Pull b partially, reset, and pull fully: same jobs either way.
        for _ in 0..10 {
            b.next_job();
        }
        b.reset();
        assert_eq!(drain(&mut a), drain(&mut b));
        let mut c = StreamingGenerator::new(profile, 8);
        a.reset();
        assert_ne!(drain(&mut a), drain(&mut c));
    }

    #[test]
    fn streaming_respects_profile_clamps() {
        let profile = GoogleTraceProfile::scaled(50);
        let min = profile.min_task_duration;
        let max = profile.max_task_duration;
        let duration = profile.duration;
        let mut stream = StreamingGenerator::new(profile, 2);
        for job in drain(&mut stream) {
            assert!(job.arrival <= duration);
            assert!(job.num_map_tasks() >= 1);
            for t in job.map_tasks.iter().chain(job.reduce_tasks.iter()) {
                assert!(t.workload >= min - 1e-9);
                assert!(t.workload <= max + 1e-9);
            }
        }
    }
}
