//! Bench-regression guard for CI.
//!
//! Reads a bench report (by default the smoke-mode report the bench-smoke
//! step just merged into `target/BENCH_smoke.json`) and fails — exit code 1 —
//! if any benchmark id regressed by more than the given factor against its
//! recorded `prev_mean_ns`, or any peak-memory extra (keys containing
//! `peak`, e.g. `peak_resident_jobs`, `stream100k_peak_copy_slots`) grew
//! beyond the memory factor against its `prev_extras` baseline, or any
//! telemetry-overhead extra (keys containing `overhead_ratio`, the
//! observed-vs-bare wall-clock ratio) exceeds the absolute overhead ceiling.
//! Ids and extras without a recorded baseline (first run on a fresh cache,
//! newly added benchmarks) pass trivially — except the overhead ceiling,
//! which is absolute and needs no history.
//!
//! Entries carrying frozen `*_reference` ids are compared in host-normalized
//! terms: the candidate observation is divided by the reference slowdown of
//! the same run, so a uniformly slow runner does not read as a code
//! regression (and a genuine regression cannot hide behind one). See
//! [`mapreduce_bench::find_regressions`]. The reported "regressed N.NNx"
//! ratio is therefore in baseline-host time for those entries.
//!
//! ```console
//! $ cargo run -p mapreduce-bench --bin bench-guard            # smoke report, 2× / 1.5× / 1.5×
//! $ cargo run -p mapreduce-bench --bin bench-guard -- path.json 1.5 1.2 1.3
//! ```

use mapreduce_bench::{
    find_memory_regressions, find_overhead_regressions, find_regressions, SMOKE_REPORT_PATH,
};
use mapreduce_support::json::JsonValue;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| SMOKE_REPORT_PATH.to_string());
    let factor: f64 = args
        .next()
        .map(|f| f.parse().expect("factor must be a number"))
        .unwrap_or(2.0);
    // Memory counters are deterministic (no timing noise), so the default
    // allowance is tighter than the timing factor.
    let memory_factor: f64 = args
        .next()
        .map(|f| f.parse().expect("memory factor must be a number"))
        .unwrap_or(1.5);
    // The observability contract: attaching the full observer stack must not
    // cost more than 1.5x the bare engine. Absolute (no baseline needed) —
    // the ratio self-normalizes for host speed.
    let overhead_limit: f64 = args
        .next()
        .map(|f| f.parse().expect("overhead limit must be a number"))
        .unwrap_or(1.5);

    let report = match std::fs::read_to_string(&path) {
        Ok(text) => match JsonValue::parse(&text) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("bench-guard: {path} is not valid JSON ({e}); failing");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => {
            // No report yet (fresh cache): nothing to compare against.
            println!("bench-guard: no report at {path}, nothing to check");
            return ExitCode::SUCCESS;
        }
    };

    let regressions = find_regressions(&report, factor);
    let memory_regressions = find_memory_regressions(&report, memory_factor);
    let overhead_violations = find_overhead_regressions(&report, overhead_limit);
    if regressions.is_empty() && memory_regressions.is_empty() && overhead_violations.is_empty() {
        println!(
            "bench-guard: no >{factor}x timing, >{memory_factor}x memory, or \
             >{overhead_limit}x observer-overhead regressions in {path}"
        );
        return ExitCode::SUCCESS;
    }
    for (id, prev, mean) in &regressions {
        eprintln!(
            "bench-guard: {id} regressed {:.2}x ({:.3} ms -> {:.3} ms)",
            mean / prev,
            prev / 1e6,
            mean / 1e6,
        );
    }
    for (id, prev, current) in &memory_regressions {
        eprintln!(
            "bench-guard: {id} memory grew {:.2}x ({prev:.0} -> {current:.0})",
            current / prev,
        );
    }
    for (id, limit, observed) in &overhead_violations {
        eprintln!(
            "bench-guard: {id} observer overhead {observed:.3}x exceeds the {limit}x ceiling"
        );
    }
    ExitCode::FAILURE
}
