//! Benchmark support crate.
//!
//! The actual Criterion benchmarks live in `benches/`, one file per table or
//! figure of the paper (see DESIGN.md §4 and EXPERIMENTS.md). This library
//! only hosts the shared scenario used by every bench so that all benchmarks
//! measure the same workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mapreduce_experiments::Scenario;
use mapreduce_sim::{Scheduler, SimConfig, SimOutcome, Simulation};
use mapreduce_support::criterion::BenchResult;
use mapreduce_support::json::{JsonValue, ToJson};
use mapreduce_workload::Trace;
use std::collections::HashMap;
use std::path::Path;

/// The scenario every benchmark runs: a scaled-down Google-like trace
/// (300 jobs, ~590 machines, single seed) that preserves the paper's
/// jobs-per-machine ratio while keeping a single simulation run in the
/// tens-of-milliseconds range so Criterion can repeat it.
pub fn bench_scenario() -> Scenario {
    Scenario::bench()
}

/// A smaller scenario for the more expensive sweeps (Fig. 1–3), where one
/// benchmark iteration runs the full parameter sweep.
pub fn sweep_scenario() -> Scenario {
    Scenario::scaled(150, 1)
}

/// Runs one scheduler over a trace under exactly the configuration the
/// experiment harness uses (`mapreduce_experiments::run_scheduler`), so
/// reference and optimized bench entries always compare identical
/// simulations. Shared by `engine_smoke` and `engine_fullscale` for their
/// frozen pre-optimization baselines.
///
/// # Panics
/// Panics if the simulation fails — a bench baseline that cannot complete is
/// a bug, not a recoverable condition.
pub fn run_reference(
    scheduler: &mut dyn Scheduler,
    trace: &Trace,
    machines: usize,
    seed: u64,
) -> SimOutcome {
    let config = SimConfig::new(machines).with_seed(seed);
    Simulation::new(config, trace)
        .run(scheduler)
        .unwrap_or_else(|e| panic!("reference run with {} failed: {e}", scheduler.name()))
}

/// Path of the tracked engine-performance report at the workspace root.
pub const BENCH_REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");

/// Path of the **untracked** smoke-mode report (`MAPREDUCE_BENCH_SAMPLES`
/// runs). Lives under `target/` so it never pollutes the curated report but
/// survives across CI runs through the cargo cache, giving the bench-guard a
/// same-machine-class `prev_mean_ns` to compare against.
pub const SMOKE_REPORT_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_smoke.json");

/// Merges one benchmark's results into the engine-performance report,
/// **append-or-update by benchmark name** rather than overwriting the file,
/// so the perf trajectory accumulates across benches and PRs.
///
/// The report is a single JSON object `{"benchmarks": [entry, ...]}` with one
/// entry per benchmark name. When an entry is updated, each result id that
/// already existed keeps the previous run's mean as `prev_mean_ns`, so the
/// before/after of the latest change is recorded in the file itself. The
/// legacy single-benchmark schema (a bare entry at the top level) is migrated
/// on first contact.
///
/// Smoke-mode runs (`MAPREDUCE_BENCH_SAMPLES` set — CI and local
/// reproductions of it) leave the tracked report untouched: a one-sample
/// timing would overwrite the curated means and their `prev_mean_ns`
/// trajectory with noise. They merge into [`SMOKE_REPORT_PATH`] instead,
/// whose `prev_mean_ns` trail feeds the CI bench-regression guard
/// (`bench-guard`).
pub fn merge_bench_report(benchmark: &str, jobs: usize, machines: usize, results: &[BenchResult]) {
    merge_bench_report_with(benchmark, jobs, machines, results, &[]);
}

/// [`merge_bench_report`] with extra entry-level fields (e.g. the peak
/// resident job counts the `engine_fullscale` and `workload_stream` benches
/// record next to their timings, so memory behaviour is visible in the
/// report alongside speed).
pub fn merge_bench_report_with(
    benchmark: &str,
    jobs: usize,
    machines: usize,
    results: &[BenchResult],
    extras: &[(&'static str, JsonValue)],
) {
    if mapreduce_support::criterion::env_sample_override().is_some() {
        println!(
            "MAPREDUCE_BENCH_SAMPLES set: smoke run, leaving {BENCH_REPORT_PATH} untouched \
             (merging into {SMOKE_REPORT_PATH})"
        );
        merge_bench_report_at_with(
            Path::new(SMOKE_REPORT_PATH),
            benchmark,
            jobs,
            machines,
            results,
            extras,
        );
        return;
    }
    merge_bench_report_at_with(
        Path::new(BENCH_REPORT_PATH),
        benchmark,
        jobs,
        machines,
        results,
        extras,
    );
}

/// Scans a bench report for regressions: any result whose **best** sample
/// (`min_ns`, falling back to `mean_ns`), after host-speed normalization,
/// exceeds `factor × prev_mean_ns` is returned as
/// `(id, prev_mean_ns, normalized_observed_ns)`.
///
/// Two defenses against noisy shared runners:
/// * Comparing the current minimum against the previous mean — a single
///   slow sample cannot trip the guard as long as one sample ran at normal
///   speed.
/// * **Reference normalization**: a benchmark entry that carries frozen
///   `*_reference` ids (pre-optimization scheduler implementations whose
///   code never changes) uses them as a same-run host speedometer. The
///   candidate ids' observations are divided by the reference slowdown
///   `Σ reference mean_ns / Σ reference prev_mean_ns` before the comparison,
///   so a uniformly slow runner — which drags the frozen code down by the
///   same factor as the candidate — cancels out, while a genuine candidate
///   regression (reference steady, candidate slow) survives normalization
///   intact. The `*_reference` ids themselves are never candidates: their
///   timing moves only with the host. Entries without a usable reference
///   ratio fall back to the raw gate.
///
/// Results without a recorded previous mean (first run on a machine, new
/// benchmark id) are skipped.
pub fn find_regressions(report: &JsonValue, factor: f64) -> Vec<(String, f64, f64)> {
    let mut regressions = Vec::new();
    let Some(benchmarks) = report.get("benchmarks").and_then(|b| b.as_array()) else {
        return regressions;
    };
    for entry in benchmarks {
        let Some(results) = entry.get("results").and_then(|r| r.as_array()) else {
            continue;
        };
        // The entry's host speedometer: aggregate current-vs-previous mean
        // of every frozen `*_reference` id with history. Means on both
        // sides (not the best sample) so the ratio estimates host speed,
        // not sampling luck.
        let (mut ref_now, mut ref_prev) = (0.0_f64, 0.0_f64);
        for result in results {
            let (Some(id), Some(mean), Some(prev)) = (
                result.get("id").and_then(|v| v.as_str()),
                result.get("mean_ns").and_then(|v| v.as_f64()),
                result.get("prev_mean_ns").and_then(|v| v.as_f64()),
            ) else {
                continue;
            };
            if id.ends_with("_reference") {
                ref_now += mean;
                ref_prev += prev;
            }
        }
        let host_scale = if ref_now > 0.0 && ref_prev > 0.0 && (ref_now / ref_prev).is_finite() {
            ref_now / ref_prev
        } else {
            1.0
        };
        for result in results {
            let (Some(id), Some(mean), Some(prev)) = (
                result.get("id").and_then(|v| v.as_str()),
                result.get("mean_ns").and_then(|v| v.as_f64()),
                result.get("prev_mean_ns").and_then(|v| v.as_f64()),
            ) else {
                continue;
            };
            if id.ends_with("_reference") {
                continue;
            }
            let best = result
                .get("min_ns")
                .and_then(|v| v.as_f64())
                .unwrap_or(mean);
            let normalized = best / host_scale;
            if prev > 0.0 && normalized > factor * prev {
                regressions.push((id.to_string(), prev, normalized));
            }
        }
    }
    regressions
}

/// Scans a bench report for **memory** regressions: any peak-footprint extra
/// (an entry-level extra whose key contains `"peak"`, e.g.
/// `peak_resident_jobs`, `stream100k_peak_copy_slots`,
/// `stream1m_srptmsc_peak_copy_slots`) that grew beyond `factor ×` its
/// recorded `prev_extras` baseline is returned as
/// `(benchmark:key, prev, current)`.
///
/// Peak counters are deterministic for a given engine build (they count
/// simulation state, not wall clock), so unlike the timing guard there is no
/// noise allowance to design around — the factor exists only to let
/// legitimate workload growth land together with its re-baselined report.
/// Extras without a recorded baseline (first run, new key) are skipped.
pub fn find_memory_regressions(report: &JsonValue, factor: f64) -> Vec<(String, f64, f64)> {
    let mut regressions = Vec::new();
    let Some(benchmarks) = report.get("benchmarks").and_then(|b| b.as_array()) else {
        return regressions;
    };
    for entry in benchmarks {
        let Some(benchmark) = entry.get("benchmark").and_then(|b| b.as_str()) else {
            continue;
        };
        let Some(JsonValue::Object(prev_extras)) = entry.get("prev_extras") else {
            continue;
        };
        for (key, prev_value) in prev_extras {
            if !key.contains("peak") {
                continue;
            }
            let (Some(prev), Some(current)) =
                (prev_value.as_f64(), entry.get(key).and_then(|v| v.as_f64()))
            else {
                continue;
            };
            if prev > 0.0 && current > factor * prev {
                regressions.push((format!("{benchmark}:{key}"), prev, current));
            }
        }
    }
    regressions
}

/// Scans a bench report for **observability overhead** violations: any
/// entry-level extra whose key contains `"overhead_ratio"` (e.g.
/// `stream100k_telemetry_overhead_ratio`, the observed-vs-bare wall-clock
/// ratio of the 100k-job telemetry gate) that exceeds the absolute `limit`
/// is returned as `(benchmark:key, limit, observed)`.
///
/// Unlike the timing guard this is not a trend check against
/// `prev_mean_ns`: the ratio is self-normalizing (both runs execute in the
/// same process back to back, so host speed cancels), which makes a hard
/// ceiling meaningful on noisy shared runners. The contract it enforces is
/// the telemetry subsystem's "observation must stay cheap" invariant —
/// observers fold integers per event and must never dominate the engine.
pub fn find_overhead_regressions(report: &JsonValue, limit: f64) -> Vec<(String, f64, f64)> {
    let mut violations = Vec::new();
    let Some(benchmarks) = report.get("benchmarks").and_then(|b| b.as_array()) else {
        return violations;
    };
    for entry in benchmarks {
        let Some(benchmark) = entry.get("benchmark").and_then(|b| b.as_str()) else {
            continue;
        };
        let JsonValue::Object(fields) = entry else {
            continue;
        };
        for (key, value) in fields {
            if !key.contains("overhead_ratio") {
                continue;
            }
            if let Some(ratio) = value.as_f64() {
                if ratio > limit {
                    violations.push((format!("{benchmark}:{key}"), limit, ratio));
                }
            }
        }
    }
    violations
}

/// [`merge_bench_report`] against an explicit path (tests use a temp file).
pub fn merge_bench_report_at(
    path: &Path,
    benchmark: &str,
    jobs: usize,
    machines: usize,
    results: &[BenchResult],
) {
    merge_bench_report_at_with(path, benchmark, jobs, machines, results, &[]);
}

/// [`merge_bench_report_with`] against an explicit path.
pub fn merge_bench_report_at_with(
    path: &Path,
    benchmark: &str,
    jobs: usize,
    machines: usize,
    results: &[BenchResult],
    extras: &[(&'static str, JsonValue)],
) {
    let existing = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| JsonValue::parse(&s).ok());
    let mut entries: Vec<JsonValue> = match &existing {
        Some(v) => match v.get("benchmarks").and_then(|b| b.as_array()) {
            Some(list) => list.to_vec(),
            // Legacy schema: the file was one bare benchmark entry.
            None if v.get("benchmark").is_some() => vec![v.clone()],
            None => Vec::new(),
        },
        None => Vec::new(),
    };

    // Previous means for this benchmark, keyed by result id, so the updated
    // entry records its own before/after. Numeric extras get the same
    // treatment: the old entry's value for every extra key being re-recorded
    // lands in a `prev_extras` object, giving the memory guard
    // ([`find_memory_regressions`]) a baseline the way `prev_mean_ns` feeds
    // the timing guard.
    let mut prev_means: HashMap<String, f64> = HashMap::new();
    let mut prev_extras: std::collections::BTreeMap<String, JsonValue> = Default::default();
    if let Some(old) = entries
        .iter()
        .find(|e| e.get("benchmark").and_then(|b| b.as_str()) == Some(benchmark))
    {
        if let Some(old_results) = old.get("results").and_then(|r| r.as_array()) {
            for r in old_results {
                if let (Some(id), Some(mean)) = (
                    r.get("id").and_then(|v| v.as_str()),
                    r.get("mean_ns").and_then(|v| v.as_f64()),
                ) {
                    prev_means.insert(id.to_string(), mean);
                }
            }
        }
        for (key, _) in extras {
            if let Some(old_value) = old.get(key).filter(|v| v.as_f64().is_some()) {
                prev_extras.insert(key.to_string(), old_value.clone());
            }
        }
    }

    let result_values: Vec<JsonValue> = results
        .iter()
        .map(|r| {
            let mut fields: Vec<(&'static str, JsonValue)> = vec![
                ("id", r.id.to_json()),
                ("mean_ns", r.mean_ns.to_json()),
                ("min_ns", r.min_ns.to_json()),
                ("max_ns", r.max_ns.to_json()),
                ("samples", r.samples.to_json()),
            ];
            if let Some(prev) = prev_means.get(&r.id) {
                fields.push(("prev_mean_ns", prev.to_json()));
            }
            JsonValue::object(fields)
        })
        .collect();
    let mut entry_fields: Vec<(&'static str, JsonValue)> = vec![
        ("benchmark", JsonValue::String(benchmark.to_string())),
        ("jobs", jobs.to_json()),
        ("machines", machines.to_json()),
        ("results", JsonValue::Array(result_values)),
    ];
    for (key, value) in extras {
        entry_fields.push((key, value.clone()));
    }
    if !prev_extras.is_empty() {
        entry_fields.push(("prev_extras", JsonValue::Object(prev_extras)));
    }
    let entry = JsonValue::object(entry_fields);

    match entries
        .iter()
        .position(|e| e.get("benchmark").and_then(|b| b.as_str()) == Some(benchmark))
    {
        Some(pos) => entries[pos] = entry,
        None => entries.push(entry),
    }

    let report = JsonValue::object([("benchmarks", JsonValue::Array(entries))]);
    match std::fs::write(path, report.to_pretty_string()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_consistent() {
        assert_eq!(bench_scenario().profile.num_jobs, 300);
        assert_eq!(sweep_scenario().profile.num_jobs, 150);
        assert_eq!(bench_scenario().seeds.len(), 1);
    }

    fn result(id: &str, mean: f64) -> BenchResult {
        BenchResult {
            id: id.to_string(),
            mean_ns: mean,
            min_ns: mean * 0.9,
            max_ns: mean * 1.1,
            samples: 3,
        }
    }

    fn entry<'a>(report: &'a JsonValue, benchmark: &str) -> &'a JsonValue {
        report
            .get("benchmarks")
            .and_then(|b| b.as_array())
            .and_then(|list| {
                list.iter()
                    .find(|e| e.get("benchmark").and_then(|b| b.as_str()) == Some(benchmark))
            })
            .expect("benchmark entry present")
    }

    #[test]
    fn merge_report_appends_updates_and_records_prev_mean() {
        // Process-unique name: concurrent test runs must not share the file.
        let path = std::env::temp_dir().join(format!(
            "mapreduce_bench_merge_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        merge_bench_report_at(&path, "smoke", 10, 5, &[result("smoke/a", 100.0)]);
        merge_bench_report_at(&path, "full", 100, 50, &[result("full/a", 9000.0)]);
        // Updating a benchmark keeps the other entry and records the previous
        // mean of every id it had before.
        merge_bench_report_at(
            &path,
            "smoke",
            10,
            5,
            &[result("smoke/a", 40.0), result("smoke/b", 7.0)],
        );

        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            report.get("benchmarks").unwrap().as_array().unwrap().len(),
            2
        );
        let smoke = entry(&report, "smoke");
        let results = smoke.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("mean_ns").unwrap().as_f64(), Some(40.0));
        assert_eq!(
            results[0].get("prev_mean_ns").unwrap().as_f64(),
            Some(100.0)
        );
        // A brand-new id has no previous mean.
        assert!(results[1].get("prev_mean_ns").is_none());
        assert!(entry(&report, "full").get("results").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn find_regressions_flags_only_over_factor_ids_with_history() {
        let path = std::env::temp_dir().join(format!(
            "mapreduce_bench_guard_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // First merge: no history, guard has nothing to flag.
        merge_bench_report_at(
            &path,
            "smoke",
            10,
            5,
            &[result("smoke/fast", 100.0), result("smoke/slow", 100.0)],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(find_regressions(&report, 2.0).is_empty());

        // Second merge: one id regresses 3x, one improves, one is new.
        merge_bench_report_at(
            &path,
            "smoke",
            10,
            5,
            &[
                result("smoke/fast", 60.0),
                result("smoke/slow", 300.0),
                result("smoke/new", 9000.0),
            ],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let regressions = find_regressions(&report, 2.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].0, "smoke/slow");
        // The guard compares the current best sample (min_ns = 0.9 × mean in
        // this fixture) against the previous mean.
        assert_eq!((regressions[0].1, regressions[0].2), (100.0, 270.0));
        // A looser factor passes.
        assert!(find_regressions(&report, 4.0).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reference_normalization_cancels_uniform_host_slowdown() {
        let path = std::env::temp_dir().join(format!(
            "mapreduce_bench_refnorm_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        merge_bench_report_at(
            &path,
            "engine",
            300,
            593,
            &[
                result("engine/srptmsc", 100.0),
                result("engine/srptmsc_reference", 400.0),
            ],
        );
        // The whole host runs 3x slower: candidate AND frozen reference
        // degrade together. Raw best (270) is 2.7x the previous mean and
        // would trip a 2x gate; normalized by the reference slowdown
        // (1200/400 = 3x) it is 90 — faster than baseline, no alarm. The
        // reference id itself is never a candidate either.
        merge_bench_report_at(
            &path,
            "engine",
            300,
            593,
            &[
                result("engine/srptmsc", 300.0),
                result("engine/srptmsc_reference", 1200.0),
            ],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(find_regressions(&report, 2.0).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reference_normalization_still_flags_genuine_regressions() {
        let path = std::env::temp_dir().join(format!(
            "mapreduce_bench_refnorm_real_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        merge_bench_report_at(
            &path,
            "engine",
            300,
            593,
            &[
                result("engine/srptmsc", 100.0),
                result("engine/srptmsc_reference", 400.0),
            ],
        );
        // The reference holds steady while the candidate triples: the host
        // did not change, the code did. Normalization (scale 1.0) must not
        // launder it away.
        merge_bench_report_at(
            &path,
            "engine",
            300,
            593,
            &[
                result("engine/srptmsc", 300.0),
                result("engine/srptmsc_reference", 400.0),
            ],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let regressions = find_regressions(&report, 2.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].0, "engine/srptmsc");
        assert_eq!((regressions[0].1, regressions[0].2), (100.0, 270.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn regressions_survive_normalization_when_exceeding_host_slowdown() {
        let path = std::env::temp_dir().join(format!(
            "mapreduce_bench_refnorm_mixed_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        merge_bench_report_at(
            &path,
            "engine",
            300,
            593,
            &[
                result("engine/srptmsc", 100.0),
                result("engine/srptmsc_reference", 400.0),
            ],
        );
        // Host 2x slower (reference 400 -> 800) but the candidate is 10x
        // slower: the 5x residual past the host movement still trips.
        merge_bench_report_at(
            &path,
            "engine",
            300,
            593,
            &[
                result("engine/srptmsc", 1000.0),
                result("engine/srptmsc_reference", 800.0),
            ],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let regressions = find_regressions(&report, 2.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].0, "engine/srptmsc");
        // Observed best 900, host scale 2.0 -> normalized 450 vs prev 100.
        assert_eq!((regressions[0].1, regressions[0].2), (100.0, 450.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_guard_tracks_peak_extras_through_prev_extras() {
        let path = std::env::temp_dir().join(format!(
            "mapreduce_bench_memory_guard_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        // First merge: records the extras, no baseline yet.
        merge_bench_report_at_with(
            &path,
            "stream",
            100_000,
            20_000,
            &[result("stream/fifo", 1e9)],
            &[
                ("peak_resident_jobs", 5_000usize.to_json()),
                ("stream100k_peak_copy_slots", 300_000usize.to_json()),
                ("stream100k_total_copies", 2_000_000usize.to_json()),
            ],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(entry(&report, "stream").get("prev_extras").is_none());
        assert!(find_memory_regressions(&report, 1.5).is_empty());

        // Second merge: one peak extra doubles, one shrinks, and the
        // non-peak total (which legitimately scales with the workload)
        // explodes without tripping anything.
        merge_bench_report_at_with(
            &path,
            "stream",
            100_000,
            20_000,
            &[result("stream/fifo", 1e9)],
            &[
                ("peak_resident_jobs", 10_000usize.to_json()),
                ("stream100k_peak_copy_slots", 200_000usize.to_json()),
                ("stream100k_total_copies", 9_000_000usize.to_json()),
            ],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let prev = entry(&report, "stream").get("prev_extras").unwrap();
        assert_eq!(
            prev.get("peak_resident_jobs").unwrap().as_f64(),
            Some(5_000.0)
        );
        let regressions = find_memory_regressions(&report, 1.5);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].0, "stream:peak_resident_jobs");
        assert_eq!((regressions[0].1, regressions[0].2), (5_000.0, 10_000.0));
        // A looser factor passes; the factor is inclusive of exactly-at-bound.
        assert!(find_memory_regressions(&report, 2.0).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overhead_guard_enforces_an_absolute_ceiling_without_history() {
        let path = std::env::temp_dir().join(format!(
            "mapreduce_bench_overhead_guard_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        // First (and only) merge: the overhead ratio needs no prev_* baseline
        // — the ceiling is absolute, so a fresh report can already fail.
        merge_bench_report_at_with(
            &path,
            "workload_stream",
            100_000,
            20_000,
            &[result("stream100k/fifo", 1e9)],
            &[
                ("stream100k_telemetry_overhead_ratio", 1.12f64.to_json()),
                ("stream100k_bare_ns", 4_000_000_000u64.to_json()),
            ],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(find_overhead_regressions(&report, 1.5).is_empty());
        // Tighten the ceiling below the observed ratio: the same report fails,
        // and only the *_overhead_ratio extra is a candidate.
        let violations = find_overhead_regressions(&report, 1.1);
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].0,
            "workload_stream:stream100k_telemetry_overhead_ratio"
        );
        assert_eq!((violations[0].1, violations[0].2), (1.1, 1.12));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_report_migrates_the_legacy_single_entry_schema() {
        let path = std::env::temp_dir().join(format!(
            "mapreduce_bench_legacy_test_{}.json",
            std::process::id()
        ));
        let legacy = JsonValue::object([
            ("benchmark", JsonValue::String("engine_smoke".into())),
            ("jobs", 300usize.to_json()),
            ("machines", 593usize.to_json()),
            (
                "results",
                JsonValue::Array(vec![JsonValue::object([
                    ("id", JsonValue::String("engine_smoke/mantri".into())),
                    ("mean_ns", 42000000.0.to_json()),
                    ("min_ns", 40000000.0.to_json()),
                    ("max_ns", 48000000.0.to_json()),
                    ("samples", 10usize.to_json()),
                ])]),
            ),
        ]);
        std::fs::write(&path, legacy.to_pretty_string()).unwrap();

        merge_bench_report_at(
            &path,
            "engine_smoke",
            300,
            593,
            &[result("engine_smoke/mantri", 15000000.0)],
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let smoke = entry(&report, "engine_smoke");
        let results = smoke.get("results").unwrap().as_array().unwrap();
        // The legacy entry's mean became the recorded baseline.
        assert_eq!(
            results[0].get("prev_mean_ns").unwrap().as_f64(),
            Some(42000000.0)
        );
        let _ = std::fs::remove_file(&path);
    }
}
