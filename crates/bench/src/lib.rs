//! Benchmark support crate.
//!
//! The actual Criterion benchmarks live in `benches/`, one file per table or
//! figure of the paper (see DESIGN.md §4 and EXPERIMENTS.md). This library
//! only hosts the shared scenario used by every bench so that all benchmarks
//! measure the same workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mapreduce_experiments::Scenario;

/// The scenario every benchmark runs: a scaled-down Google-like trace
/// (300 jobs, ~590 machines, single seed) that preserves the paper's
/// jobs-per-machine ratio while keeping a single simulation run in the
/// tens-of-milliseconds range so Criterion can repeat it.
pub fn bench_scenario() -> Scenario {
    Scenario::bench()
}

/// A smaller scenario for the more expensive sweeps (Fig. 1–3), where one
/// benchmark iteration runs the full parameter sweep.
pub fn sweep_scenario() -> Scenario {
    Scenario::scaled(150, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_consistent() {
        assert_eq!(bench_scenario().profile.num_jobs, 300);
        assert_eq!(sweep_scenario().profile.num_jobs, 150);
        assert_eq!(bench_scenario().seeds.len(), 1);
    }
}
