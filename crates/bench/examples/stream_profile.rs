//! Developer harness: one streaming run in the `stream1m` regime (10 jobs
//! per machine, offered load ≈45 %) at an arbitrary scale, with the engine's
//! per-stage wall-clock split printed at the end.
//!
//! Useful for iterating on engine/decision-path performance without paying
//! for a full million-job bench sample, and as the target for a sampling
//! profiler:
//!
//! ```text
//! cargo build --release --example stream_profile
//! gprofng collect app -o /tmp/prof.er \
//!     target/release/examples/stream_profile 200000 srptmsc
//! gprofng display text -functions /tmp/prof.er | head -40
//! ```
//!
//! Arguments: `[jobs] [fifo|srptmsc] [serial|pipeline]` (defaults:
//! `200000 srptmsc serial`).

use mapreduce_baselines::Fifo;
use mapreduce_experiments::{Scenario, WorkloadSource};
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{Scheduler, SimConfig, Simulation};
use mapreduce_workload::GoogleTraceProfile;

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args
        .next()
        .map(|s| s.parse().expect("jobs must be a number"))
        .unwrap_or(200_000);
    let which = args.next().unwrap_or_else(|| "srptmsc".into());
    let mode = args.next().unwrap_or_else(|| "serial".into());

    // The stream1m/stream10m construction at the requested scale: 10 jobs
    // per machine, arrival window stretched to hold the paper's ≈45 % load.
    let machines = (jobs / 10).max(8);
    let window = 35_032u64 * (jobs as u64) * 12_000 / (6_064 * machines as u64);
    let scenario = Scenario {
        profile: GoogleTraceProfile::scaled(jobs).with_arrival_window(window),
        machines,
        seeds: vec![2015],
        source: WorkloadSource::Streaming,
        fault: mapreduce_sim::FaultPlan::none(),
    };
    let seed = scenario.seeds[0];

    let mut scheduler: Box<dyn Scheduler> = match which.as_str() {
        "fifo" => Box::new(Fifo::new()),
        "srptmsc" => Box::new(SrptMsC::new(0.6, 3.0)),
        other => panic!("unknown scheduler {other:?} (use fifo|srptmsc)"),
    };
    let config = SimConfig::new(scenario.machines)
        .with_seed(seed)
        .with_profile_stages(true)
        .with_pipeline(match mode.as_str() {
            "serial" => false,
            "pipeline" => true,
            other => panic!("unknown mode {other:?} (use serial|pipeline)"),
        });

    let start = std::time::Instant::now();
    let outcome = Simulation::from_source(config, scenario.job_source(seed))
        .run(scheduler.as_mut())
        .expect("profile run must complete");
    let wall = start.elapsed();

    assert_eq!(outcome.records().len(), jobs);
    println!(
        "{} jobs / {} machines / {}: {:.3}s wall, mean flowtime {:.3}",
        jobs,
        scenario.machines,
        outcome.scheduler,
        wall.as_secs_f64(),
        outcome.mean_flowtime()
    );
    println!(
        "stages: source {:.3}s, events {:.3}s, decision {:.3}s, metrics {:.3}s",
        outcome.telemetry.stage_source_ns as f64 / 1e9,
        outcome.telemetry.stage_events_ns as f64 / 1e9,
        outcome.telemetry.stage_decision_ns as f64 / 1e9,
        outcome.telemetry.stage_metrics_ns as f64 / 1e9,
    );
    println!(
        "counters: {} copies, {} decision instants, peak resident {}, ranked prefix max {}",
        outcome.total_copies,
        outcome.telemetry.decision_instants,
        outcome.peak_resident_jobs,
        outcome.telemetry.ranked_prefix_len_max
    );
}
