//! Engine smoke benchmark: times one scaled-down `Scenario::paper()` run per
//! scheduler family and emits `BENCH_engine.json` at the workspace root, so
//! the engine's performance trajectory is tracked across PRs.
//!
//! The `*_reference` variants run the frozen pre-optimization scheduler
//! implementations (see `mapreduce_sched::reference` /
//! `mapreduce_baselines::reference`), so every report carries a same-machine
//! baseline next to the optimized numbers — absolute timings drift with the
//! host, the optimized/reference ratio does not.
//!
//! Run with `cargo bench -p mapreduce-bench --bench engine_smoke`.

use mapreduce_baselines::ReferenceMantri;
use mapreduce_experiments::{run_scheduler, Scenario, SchedulerKind};
use mapreduce_sched::ReferenceSrptMsC;
use mapreduce_sim::Scheduler;
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    // Scenario::paper() scaled down ~20x: same workload family and load
    // ratio, a few hundred milliseconds per simulation.
    let scenario = Scenario::scaled(300, 1);
    let seed = scenario.seeds[0];
    let trace = scenario.trace(seed);
    println!(
        "engine smoke: {} jobs / {} tasks / {} machines",
        trace.len(),
        trace.total_tasks(),
        scenario.machines
    );

    let mut group = c.benchmark_group("engine_smoke");
    let variants = [
        ("srptmsc", SchedulerKind::paper_default()),
        ("fifo", SchedulerKind::Fifo),
        ("mantri", SchedulerKind::Mantri),
    ];
    for (label, kind) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| {
                let outcome = run_scheduler(kind, black_box(&trace), scenario.machines, seed);
                black_box(outcome.mean_flowtime())
            })
        });
    }
    // Same-machine pre-optimization baselines.
    type MakeScheduler = fn() -> Box<dyn Scheduler>;
    let references: [(&str, MakeScheduler); 2] = [
        ("srptmsc_reference", || {
            Box::new(ReferenceSrptMsC::new(0.6, 3.0))
        }),
        ("mantri_reference", || Box::new(ReferenceMantri::new())),
    ];
    for (label, make) in references {
        group.bench_with_input(BenchmarkId::from_parameter(label), &seed, |b, &seed| {
            b.iter(|| {
                let mut scheduler = make();
                let outcome = mapreduce_bench::run_reference(
                    scheduler.as_mut(),
                    black_box(&trace),
                    scenario.machines,
                    seed,
                );
                black_box(outcome.mean_flowtime())
            })
        });
    }
    group.finish();

    // Append-or-update the keyed entry so the perf trajectory accumulates
    // across PRs instead of overwriting the file.
    mapreduce_bench::merge_bench_report(
        "engine_smoke",
        scenario.profile.num_jobs,
        scenario.machines,
        c.results(),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
