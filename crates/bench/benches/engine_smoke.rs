//! Engine smoke benchmark: times one scaled-down `Scenario::paper()` run per
//! scheduler family and emits `BENCH_engine.json` at the workspace root, so
//! the engine's performance trajectory is tracked across PRs.
//!
//! Run with `cargo bench -p mapreduce-bench --bench engine_smoke`.

use mapreduce_experiments::{run_scheduler, Scenario, SchedulerKind};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::json::{JsonValue, ToJson};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    // Scenario::paper() scaled down ~20x: same workload family and load
    // ratio, a few hundred milliseconds per simulation.
    let scenario = Scenario::scaled(300, 1);
    let seed = scenario.seeds[0];
    let trace = scenario.trace(seed);
    println!(
        "engine smoke: {} jobs / {} tasks / {} machines",
        trace.len(),
        trace.total_tasks(),
        scenario.machines
    );

    let mut group = c.benchmark_group("engine_smoke");
    let variants = [
        ("srptmsc", SchedulerKind::paper_default()),
        ("fifo", SchedulerKind::Fifo),
        ("mantri", SchedulerKind::Mantri),
    ];
    for (label, kind) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| {
                let outcome = run_scheduler(kind, black_box(&trace), scenario.machines, seed);
                black_box(outcome.mean_flowtime())
            })
        });
    }
    group.finish();

    write_report(c, &scenario);
}

/// Writes every measured result to `BENCH_engine.json` at the workspace root.
fn write_report(c: &Criterion, scenario: &Scenario) {
    let results: Vec<JsonValue> = c
        .results()
        .iter()
        .map(|r| {
            JsonValue::object([
                ("id", r.id.to_json()),
                ("mean_ns", r.mean_ns.to_json()),
                ("min_ns", r.min_ns.to_json()),
                ("max_ns", r.max_ns.to_json()),
                ("samples", r.samples.to_json()),
            ])
        })
        .collect();
    let report = JsonValue::object([
        ("benchmark", JsonValue::String("engine_smoke".into())),
        ("jobs", scenario.profile.num_jobs.to_json()),
        ("machines", scenario.machines.to_json()),
        ("results", JsonValue::Array(results)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    match std::fs::write(path, report.to_pretty_string()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
