//! Fig. 3 bench: SRPTMS+C (ε = 0.6, r = 3) across cluster sizes.

use mapreduce_bench::sweep_scenario;
use mapreduce_experiments::{fig3, run_scheduler, SchedulerKind};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let scenario = sweep_scenario();
    let rows = fig3::run(&scenario, &fig3::paper_fractions());
    println!("{}", fig3::render(&rows));

    let trace = scenario.trace(scenario.seeds[0]);
    let mut group = c.benchmark_group("fig3_machines");
    for fraction in [0.5, 0.75, 1.0] {
        let machines = ((scenario.machines as f64 * fraction) as usize).max(1);
        group.bench_with_input(
            BenchmarkId::from_parameter(machines),
            &machines,
            |b, &machines| {
                b.iter(|| {
                    let outcome = run_scheduler(
                        SchedulerKind::SrptMsC {
                            epsilon: 0.6,
                            r: 3.0,
                        },
                        black_box(&trace),
                        machines,
                        scenario.seeds[0],
                    );
                    black_box(outcome.mean_flowtime())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3
}
criterion_main!(benches);
