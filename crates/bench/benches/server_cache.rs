//! Experiment-service benchmark: cold vs warm sweep submission.
//!
//! One [`SweepRequest`] shaped like a figure sweep (the paper comparison
//! line-up over the sweep scenario, two seeds) submitted to a
//! [`SweepServer`]:
//!
//! * `cold/sweep` — a fresh in-memory cache per iteration: every cell is
//!   fingerprinted, simulated on the worker pool, and stored. This is the
//!   full first-run cost, cache overhead included.
//! * `warm/sweep` — a pre-warmed server: every cell is a cache hit and the
//!   response is assembled from stored outcomes. The bench asserts the warm
//!   response **simulates zero cells** and reproduces the cold averages bit
//!   for bit before any timing starts.
//!
//! The cold/warm ratio in `BENCH_engine.json` is the headline number of the
//! result cache: how much simulation work a repeated figure sweep avoids.
//!
//! Run with `cargo bench -p mapreduce-bench --bench server_cache`
//! (`MAPREDUCE_BENCH_SAMPLES=3` for the CI smoke pass). Results merge into
//! `BENCH_engine.json` / the smoke report and feed the CI bench-guard.

use mapreduce_bench::sweep_scenario;
use mapreduce_experiments::SchedulerKind;
use mapreduce_server::{ResultCache, SweepRequest, SweepServer};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::json::ToJson;
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_server_cache(c: &mut Criterion) {
    let mut scenario = sweep_scenario();
    scenario.seeds = vec![2015, 2016];
    let request = SweepRequest::new(scenario, SchedulerKind::paper_comparison());
    let cells = request.num_cells();

    // Correctness gate before timing: a warm submission must simulate
    // nothing and agree with the cold run exactly.
    let warm_server = SweepServer::new(ResultCache::in_memory());
    let cold_response = warm_server.submit(&request);
    assert_eq!(cold_response.simulated, cells);
    let warm_response = warm_server.submit(&request);
    assert_eq!(warm_response.simulated, 0, "warm sweep must not simulate");
    assert_eq!(warm_response.cache_hits, cells);
    assert_eq!(warm_response.averages, cold_response.averages);
    println!(
        "server cache: {} cells ({} schedulers x {} seeds)",
        cells,
        request.schedulers.len(),
        request.scenario.seeds.len()
    );

    let mut group = c.benchmark_group("server_cache");
    group.bench_with_input(BenchmarkId::from_parameter("cold/sweep"), &(), |b, ()| {
        b.iter(|| {
            let server = SweepServer::new(ResultCache::in_memory());
            let response = server.submit(black_box(&request));
            assert_eq!(response.simulated, cells);
            black_box(response.cache_hits)
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("warm/sweep"), &(), |b, ()| {
        b.iter(|| {
            let response = warm_server.submit(black_box(&request));
            assert_eq!(response.simulated, 0);
            black_box(response.cache_hits)
        })
    });
    group.finish();

    mapreduce_bench::merge_bench_report_with(
        "server_cache",
        request.scenario.profile.num_jobs,
        request.scenario.machines,
        c.results(),
        &[
            ("cells", cells.to_json()),
            ("warm_cache_hits", warm_response.cache_hits.to_json()),
        ],
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_server_cache
}
criterion_main!(benches);
