//! Fig. 1 bench: the ε sweep of SRPTMS+C (r = 0). One benchmark per ε value
//! plus a whole-sweep measurement; the regenerated table is printed once.

use mapreduce_bench::sweep_scenario;
use mapreduce_experiments::{fig1, run_scheduler, SchedulerKind};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let scenario = sweep_scenario();
    let rows = fig1::run(&scenario, &fig1::paper_epsilons());
    println!("{}", fig1::render(&rows));
    if let Some(best) = fig1::best_epsilon(&rows) {
        println!("best epsilon: {best:.1} (paper: 0.6)\n");
    }

    let trace = scenario.trace(scenario.seeds[0]);
    let mut group = c.benchmark_group("fig1_epsilon");
    for epsilon in [0.2, 0.6, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(epsilon),
            &epsilon,
            |b, &epsilon| {
                b.iter(|| {
                    let outcome = run_scheduler(
                        SchedulerKind::SrptMsC { epsilon, r: 0.0 },
                        black_box(&trace),
                        scenario.machines,
                        scenario.seeds[0],
                    );
                    black_box(outcome.mean_flowtime())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1
}
criterion_main!(benches);
