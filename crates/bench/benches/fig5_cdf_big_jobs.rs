//! Fig. 5 bench: big-job (300–4000 s) flowtime CDF for SRPTMS+C vs SCA vs
//! Mantri.

use mapreduce_bench::bench_scenario;
use mapreduce_experiments::{fig5, run_scheduler, SchedulerKind};
use mapreduce_metrics::Ecdf;
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let scenario = bench_scenario();
    let comparison = fig5::run(&scenario);
    println!("{}", fig5::render(&comparison));

    let trace = scenario.trace(scenario.seeds[0]);
    let mut group = c.benchmark_group("fig5_big_job_cdf");
    for kind in SchedulerKind::paper_comparison() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let outcome = run_scheduler(
                        kind,
                        black_box(&trace),
                        scenario.machines,
                        scenario.seeds[0],
                    );
                    let cdf = Ecdf::from_outcome(&outcome);
                    black_box(cdf.fraction_at_or_below(1000.0))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5
}
criterion_main!(benches);
