//! The million-job streaming tier: 1 000 000 jobs on 100 000 machines.
//!
//! This is the regime the streaming subsystem and the prefix-truncated
//! SRPTMS+C decision path exist for: the full trace would be several
//! gigabytes materialised, so jobs are synthesized on demand
//! ([`mapreduce_workload::StreamingGenerator`]) and released at completion —
//! the run's footprint is the alive window, not the workload. Two
//! schedulers:
//!
//! * `stream1m/fifo` — the cheapest decision path; measures the engine +
//!   feed floor at this scale.
//! * `stream1m/srptmsc` — the paper's online algorithm; its ε-prefix share
//!   walk and pooled decision scratch are what keep a million-job run
//!   tractable (the ranked-prefix counter recorded below shows how little of
//!   the alive set a decision actually touches).
//!
//! Peak-resident counters (jobs, copy slots) are recorded as report extras
//! and enforced by the CI bench-guard's memory check alongside the timings.
//!
//! Run with `cargo bench -p mapreduce-bench --bench stream1m`
//! (`MAPREDUCE_BENCH_SAMPLES=1` for the CI smoke pass). A real sample takes
//! minutes: one iteration simulates ≈8 days of cluster time for a million
//! jobs.

use mapreduce_baselines::Fifo;
use mapreduce_experiments::Scenario;
use mapreduce_metrics::QuantileSketch;
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{Scheduler, SimConfig, SimOutcome, Simulation};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::json::ToJson;
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

const TOTAL_JOBS: usize = 1_000_000;

/// Human-readable per-stage split of one outcome, for the bench log.
fn stage_split(outcome: &SimOutcome) -> String {
    format!(
        "source {:.2}s, events {:.2}s, decision {:.2}s, metrics {:.2}s",
        outcome.telemetry.stage_source_ns as f64 / 1e9,
        outcome.telemetry.stage_events_ns as f64 / 1e9,
        outcome.telemetry.stage_decision_ns as f64 / 1e9,
        outcome.telemetry.stage_metrics_ns as f64 / 1e9,
    )
}

/// One streaming run of the million-job scenario. Stage profiling is on:
/// the per-stage wall-clock split (source/events/decision/metrics) lands in
/// the report extras so regressions can be localised without a re-run.
fn run_million(scheduler: &mut dyn Scheduler, scenario: &Scenario, seed: u64) -> SimOutcome {
    let outcome = Simulation::from_source(
        SimConfig::new(scenario.machines)
            .with_seed(seed)
            .with_profile_stages(true),
        scenario.job_source(seed),
    )
    .run(scheduler)
    .expect("million-job streaming run must complete");
    assert_eq!(
        outcome.records().len(),
        TOTAL_JOBS,
        "{} completed only {} of {TOTAL_JOBS} jobs",
        outcome.scheduler,
        outcome.records().len()
    );
    outcome
}

fn bench_stream1m(c: &mut Criterion) {
    let scenario = Scenario::million();
    let seed = scenario.seeds[0];

    let mut group = c.benchmark_group("stream1m");
    let mut fifo_peak_jobs = 0usize;
    let mut fifo_peak_slots = 0usize;
    let mut fifo_copies = 0usize;
    let mut fifo_stages = (0u64, 0u64, 0u64, 0u64);
    let mut fifo_quantiles = (0u64, 0u64, 0u64);
    group.bench_with_input(BenchmarkId::from_parameter("fifo"), &seed, |b, &seed| {
        b.iter(|| {
            let outcome = run_million(&mut Fifo::new(), &scenario, seed);
            fifo_peak_jobs = outcome.peak_resident_jobs;
            fifo_peak_slots = outcome.peak_copy_slots;
            fifo_copies = outcome.total_copies;
            fifo_stages = (
                outcome.telemetry.stage_source_ns,
                outcome.telemetry.stage_events_ns,
                outcome.telemetry.stage_decision_ns,
                outcome.telemetry.stage_metrics_ns,
            );
            // The streaming quantile sketch is the only way to report tail
            // percentiles at this scale without sorting a million-record
            // vector in the timed path — 3 776 fixed buckets, ≤1/64
            // relative error (see `mapreduce_metrics::sketch`).
            let mut sketch = QuantileSketch::new();
            for record in outcome.records() {
                sketch.record(record.flowtime());
            }
            fifo_quantiles = (
                sketch.quantile(0.50).expect("million-job sketch non-empty"),
                sketch.quantile(0.95).expect("million-job sketch non-empty"),
                sketch.quantile(0.99).expect("million-job sketch non-empty"),
            );
            println!("stream1m/fifo stages: {}", stage_split(&outcome));
            black_box(outcome.mean_flowtime())
        })
    });
    println!(
        "stream1m/fifo: peak resident {fifo_peak_jobs} jobs, {fifo_peak_slots} copy slots \
         for {fifo_copies} copies; sketch p50/p95/p99 = {}/{}/{}",
        fifo_quantiles.0, fifo_quantiles.1, fifo_quantiles.2
    );

    let mut srpt_peak_jobs = 0usize;
    let mut srpt_peak_slots = 0usize;
    let mut srpt_copies = 0usize;
    let mut srpt_prefix_max = 0usize;
    let mut srpt_decisions = 0u64;
    let mut srpt_stages = (0u64, 0u64, 0u64, 0u64);
    group.bench_with_input(BenchmarkId::from_parameter("srptmsc"), &seed, |b, &seed| {
        b.iter(|| {
            let outcome = run_million(&mut SrptMsC::new(0.6, 3.0), &scenario, seed);
            srpt_peak_jobs = outcome.peak_resident_jobs;
            srpt_peak_slots = outcome.peak_copy_slots;
            srpt_copies = outcome.total_copies;
            srpt_prefix_max = outcome.telemetry.ranked_prefix_len_max;
            srpt_decisions = outcome.telemetry.decision_instants;
            srpt_stages = (
                outcome.telemetry.stage_source_ns,
                outcome.telemetry.stage_events_ns,
                outcome.telemetry.stage_decision_ns,
                outcome.telemetry.stage_metrics_ns,
            );
            println!("stream1m/srptmsc stages: {}", stage_split(&outcome));
            black_box(outcome.mean_flowtime())
        })
    });
    println!(
        "stream1m/srptmsc: peak resident {srpt_peak_jobs} jobs, {srpt_peak_slots} copy slots \
         for {srpt_copies} copies; {srpt_decisions} decision instants, ranked prefix max \
         {srpt_prefix_max}"
    );
    group.finish();

    mapreduce_bench::merge_bench_report_with(
        "stream1m",
        TOTAL_JOBS,
        scenario.machines,
        c.results(),
        &[
            ("stream1m_total_jobs", TOTAL_JOBS.to_json()),
            ("stream1m_sketch_p50", fifo_quantiles.0.to_json()),
            ("stream1m_sketch_p95", fifo_quantiles.1.to_json()),
            ("stream1m_sketch_p99", fifo_quantiles.2.to_json()),
            ("stream1m_peak_resident_jobs", fifo_peak_jobs.to_json()),
            ("stream1m_peak_copy_slots", fifo_peak_slots.to_json()),
            ("stream1m_total_copies", fifo_copies.to_json()),
            (
                "stream1m_srptmsc_peak_resident_jobs",
                srpt_peak_jobs.to_json(),
            ),
            (
                "stream1m_srptmsc_peak_copy_slots",
                srpt_peak_slots.to_json(),
            ),
            ("stream1m_srptmsc_total_copies", srpt_copies.to_json()),
            (
                "stream1m_srptmsc_decision_instants",
                srpt_decisions.to_json(),
            ),
            (
                "stream1m_srptmsc_ranked_prefix_len_max",
                srpt_prefix_max.to_json(),
            ),
            ("stream1m_fifo_stage_source_ns", fifo_stages.0.to_json()),
            ("stream1m_fifo_stage_events_ns", fifo_stages.1.to_json()),
            ("stream1m_fifo_stage_decision_ns", fifo_stages.2.to_json()),
            ("stream1m_fifo_stage_metrics_ns", fifo_stages.3.to_json()),
            ("stream1m_srptmsc_stage_source_ns", srpt_stages.0.to_json()),
            ("stream1m_srptmsc_stage_events_ns", srpt_stages.1.to_json()),
            (
                "stream1m_srptmsc_stage_decision_ns",
                srpt_stages.2.to_json(),
            ),
            ("stream1m_srptmsc_stage_metrics_ns", srpt_stages.3.to_json()),
        ],
    );
}

criterion_group! {
    name = benches;
    // One real sample is minutes of wall clock; two samples keep min/mean
    // meaningful without an hour-long bench. CI overrides via
    // MAPREDUCE_BENCH_SAMPLES=1.
    config = Criterion::default().sample_size(2);
    targets = bench_stream1m
}
criterion_main!(benches);
