//! Event-path micro-benchmark: the calendar queue against the frozen
//! binary-heap reference on synthetic event streams.
//!
//! Two regimes, each measured for both queue implementations by the same
//! binary in the same run:
//!
//! * **churn** — steady-state push/drain traffic shaped like an engine run
//!   (a standing population of pending finishes, bursty same-slot ties, a
//!   heavy tail of far-future slots exercising the overflow map);
//! * **cancel** — a clone-heavy schedule where half of all queued finishes
//!   are retracted before firing. The calendar retracts and compacts
//!   (tombstoned instants); the heap pays the historical lazy-deletion cost
//!   of popping and skipping every stale entry.
//!
//! Results are merged into `BENCH_engine.json` under `event_path`.
//!
//! Run with `cargo bench -p mapreduce-bench --bench event_path`.

use mapreduce_sim::{CopyId, Event, EventQueue, HeapEventQueue};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::rng::{Rng, SimRng};
use mapreduce_support::{criterion_group, criterion_main};
use mapreduce_workload::{JobId, Phase, TaskId};
use std::hint::black_box;

/// Events per measured iteration.
const EVENTS: usize = 200_000;

fn finish_event(at: u64, copy: u64) -> Event {
    // No slot recycling in these synthetic streams: seq == copy id.
    Event::CopyFinish {
        at,
        copy: CopyId(copy),
        task: TaskId::new(JobId::new(copy % 1024), Phase::Map, (copy % 64) as u32),
        seq: copy,
    }
}

/// Draws the next event offset: mostly near-future slots with ties, a tail
/// reaching past the calendar's ring window.
fn offset(rng: &mut SimRng) -> u64 {
    match rng.gen_range(0u32..10) {
        0..=6 => rng.gen_range(1u64..64),
        7..=8 => rng.gen_range(64u64..4_000),
        _ => rng.gen_range(4_000u64..500_000),
    }
}

/// Steady-state churn: keep ~`standing` events pending, pushing bursts and
/// draining instants until `EVENTS` events have flowed through. Generic over
/// the queue via two closures so both implementations run the identical
/// stream.
fn churn<Q>(
    queue: &mut Q,
    push: impl Fn(&mut Q, Event),
    mut drain: impl FnMut(&mut Q, u64) -> u64,
) -> u64 {
    let mut rng = SimRng::seed_from_u64(7);
    let mut now = 0u64;
    let mut pushed = 0usize;
    let mut delivered = 0u64;
    let standing = 16_384usize;
    let mut pending = 0isize;
    while pushed < EVENTS {
        let burst = rng.gen_range(1usize..8).min(EVENTS - pushed);
        for _ in 0..burst {
            push(queue, finish_event(now + offset(&mut rng), pushed as u64));
            pushed += 1;
            pending += 1;
        }
        if pending as usize > standing || rng.gen_range(0u32..4) == 0 {
            now += rng.gen_range(1u64..32);
            let n = drain(queue, now);
            delivered += n;
            pending -= n as isize;
        }
    }
    delivered + drain(queue, u64::MAX)
}

fn churn_calendar() -> u64 {
    let mut queue = EventQueue::new();
    let mut buf = Vec::new();
    churn(
        &mut queue,
        |q, e| q.push(e),
        |q, now| {
            buf.clear();
            q.drain_due(now, &mut buf);
            buf.len() as u64
        },
    )
}

fn churn_heap() -> u64 {
    let mut queue = HeapEventQueue::new();
    churn(
        &mut queue,
        |q, e| q.push(e),
        |q, now| {
            let mut n = 0;
            while q.pop_due(now).is_some() {
                n += 1;
            }
            n
        },
    )
}

/// Clone-heavy cancellation: every task queues `CLONES` finish events, the
/// earliest wins, the siblings are killed. The calendar retracts them; the
/// heap leaves them for pop-time skipping (the engine's historical cost).
fn cancel_calendar() -> u64 {
    const CLONES: u64 = 4;
    let mut rng = SimRng::seed_from_u64(11);
    let mut queue = EventQueue::new();
    let mut buf = Vec::new();
    let mut now = 0u64;
    let mut next = 0u64;
    let mut live = 0u64;
    for _ in 0..(EVENTS as u64 / CLONES) {
        let mut finishes = [0u64; CLONES as usize];
        for f in finishes.iter_mut() {
            *f = now + offset(&mut rng);
            queue.push(finish_event(*f, next));
            next += 1;
        }
        // First copy wins: retract the other clones' finish events.
        let winner = *finishes.iter().min().expect("clones");
        for (i, &f) in finishes.iter().enumerate() {
            let id = next - CLONES + i as u64;
            if f > winner {
                queue.retract(f, id);
            }
        }
        if rng.gen_range(0u32..4) == 0 {
            now += rng.gen_range(1u64..48);
            buf.clear();
            queue.drain_due(now, &mut buf);
            live += buf.len() as u64;
        }
    }
    buf.clear();
    queue.drain_due(u64::MAX, &mut buf);
    live + buf.len() as u64
}

fn cancel_heap() -> u64 {
    const CLONES: u64 = 4;
    let mut rng = SimRng::seed_from_u64(11);
    let mut queue = HeapEventQueue::new();
    let mut stale = std::collections::HashSet::new();
    let mut now = 0u64;
    let mut next = 0u64;
    let mut live = 0u64;
    let drain = |q: &mut HeapEventQueue, stale: &std::collections::HashSet<u64>, now: u64| {
        let mut n = 0u64;
        while let Some(event) = q.pop_due(now) {
            if !matches!(event, Event::CopyFinish { copy, .. } if stale.contains(&copy.0)) {
                n += 1;
            }
        }
        n
    };
    for _ in 0..(EVENTS as u64 / CLONES) {
        let mut finishes = [0u64; CLONES as usize];
        for f in finishes.iter_mut() {
            *f = now + offset(&mut rng);
            queue.push(finish_event(*f, next));
            next += 1;
        }
        let winner = *finishes.iter().min().expect("clones");
        for (i, &f) in finishes.iter().enumerate() {
            let id = next - CLONES + i as u64;
            if f > winner {
                stale.insert(id);
            }
        }
        if rng.gen_range(0u32..4) == 0 {
            now += rng.gen_range(1u64..48);
            live += drain(&mut queue, &stale, now);
        }
    }
    live + drain(&mut queue, &stale, u64::MAX)
}

fn bench_event_path(c: &mut Criterion) {
    // The two implementations must agree on delivered-event counts; checked
    // once up front so a silent divergence can't masquerade as a speedup.
    assert_eq!(churn_calendar(), churn_heap());
    assert_eq!(cancel_calendar(), cancel_heap());

    let mut group = c.benchmark_group("event_path");
    group.bench_with_input(
        BenchmarkId::from_parameter("calendar_churn"),
        &(),
        |b, _| b.iter(|| black_box(churn_calendar())),
    );
    group.bench_with_input(BenchmarkId::from_parameter("heap_churn"), &(), |b, _| {
        b.iter(|| black_box(churn_heap()))
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("calendar_cancel"),
        &(),
        |b, _| b.iter(|| black_box(cancel_calendar())),
    );
    group.bench_with_input(BenchmarkId::from_parameter("heap_cancel"), &(), |b, _| {
        b.iter(|| black_box(cancel_heap()))
    });
    group.finish();

    mapreduce_bench::merge_bench_report("event_path", EVENTS, 0, c.results());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_path
}
criterion_main!(benches);
