//! Fig. 6 bench: weighted/unweighted average flowtime of SRPTMS+C, SCA and
//! Mantri on the same trace, including the improvement-over-Mantri headline.

use mapreduce_bench::bench_scenario;
use mapreduce_experiments::{fig6, run_scheduler, SchedulerKind};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let scenario = bench_scenario();
    let result = fig6::run(&scenario);
    println!("{}", fig6::render(&result));

    let trace = scenario.trace(scenario.seeds[0]);
    let mut group = c.benchmark_group("fig6_comparison");
    for kind in SchedulerKind::paper_comparison() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let outcome = run_scheduler(
                        kind,
                        black_box(&trace),
                        scenario.machines,
                        scenario.seeds[0],
                    );
                    black_box((outcome.mean_flowtime(), outcome.weighted_mean_flowtime()))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
}
criterion_main!(benches);
