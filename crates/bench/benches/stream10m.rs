//! The ten-million-job streaming tier: 10 000 000 jobs on 100 000 machines.
//!
//! One order of magnitude past `stream1m`, and the regime the demand-gated
//! prefix ranking and bounded-memory streaming engine were built for: the
//! materialised workload would be tens of gigabytes, while the run's actual
//! footprint is the alive window — the peak-resident counters recorded below
//! stay around 2 % of the job count (residency follows Little's law, so it
//! scales with each scheduler's flowtime, not with workload length).
//! Two schedulers:
//!
//! * `stream10m/fifo` — the engine + feed floor at this scale.
//! * `stream10m/srptmsc` — the paper's online algorithm; the ranked-prefix
//!   counter shows how little of the alive set a decision touches even after
//!   ten million admissions.
//!
//! Peak-resident counters (jobs, copy slots) land in the report extras and
//! are enforced by the CI bench-guard's memory check; the per-stage
//! wall-clock split (source/events/decision/metrics) rides along for
//! localising regressions.
//!
//! Run with `MAPREDUCE_BENCH_WARMUP=0 cargo bench -p mapreduce-bench
//! --bench stream10m`. This tier is **not** part of the CI bench list: one
//! sample simulates ≈80 days of cluster time for ten million jobs and takes
//! tens of minutes of wall clock. `sample_size(1)` — the run is its own
//! population — and skipping the untimed warm-up halves the cost.

use mapreduce_baselines::Fifo;
use mapreduce_experiments::Scenario;
use mapreduce_metrics::StreamingFlowtime;
use mapreduce_sched::SrptMsC;
use mapreduce_sim::{Scheduler, SimConfig, SimOutcome, Simulation};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::json::ToJson;
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

const TOTAL_JOBS: usize = 10_000_000;

/// One streaming run of the ten-million-job scenario, stage profiling on.
fn run_ten_million(scheduler: &mut dyn Scheduler, scenario: &Scenario, seed: u64) -> SimOutcome {
    let outcome = Simulation::from_source(
        SimConfig::new(scenario.machines)
            .with_seed(seed)
            .with_profile_stages(true),
        scenario.job_source(seed),
    )
    .run(scheduler)
    .expect("ten-million-job streaming run must complete");
    assert_eq!(
        outcome.records().len(),
        TOTAL_JOBS,
        "{} completed only {} of {TOTAL_JOBS} jobs",
        outcome.scheduler,
        outcome.records().len()
    );
    outcome
}

/// Human-readable per-stage split of one outcome, for the bench log.
fn stage_split(outcome: &SimOutcome) -> String {
    format!(
        "source {:.2}s, events {:.2}s, decision {:.2}s, metrics {:.2}s",
        outcome.telemetry.stage_source_ns as f64 / 1e9,
        outcome.telemetry.stage_events_ns as f64 / 1e9,
        outcome.telemetry.stage_decision_ns as f64 / 1e9,
        outcome.telemetry.stage_metrics_ns as f64 / 1e9,
    )
}

fn bench_stream10m(c: &mut Criterion) {
    let scenario = Scenario::ten_million();
    let seed = scenario.seeds[0];

    let mut group = c.benchmark_group("stream10m");
    let mut fifo_peak_jobs = 0usize;
    let mut fifo_peak_slots = 0usize;
    let mut fifo_copies = 0usize;
    let mut fifo_stages = (0u64, 0u64, 0u64, 0u64);
    let mut fifo_flow = StreamingFlowtime::new();
    group.bench_with_input(BenchmarkId::from_parameter("fifo"), &seed, |b, &seed| {
        b.iter(|| {
            let outcome = run_ten_million(&mut Fifo::new(), &scenario, seed);
            fifo_peak_jobs = outcome.peak_resident_jobs;
            fifo_peak_slots = outcome.peak_copy_slots;
            fifo_copies = outcome.total_copies;
            fifo_stages = (
                outcome.telemetry.stage_source_ns,
                outcome.telemetry.stage_events_ns,
                outcome.telemetry.stage_decision_ns,
                outcome.telemetry.stage_metrics_ns,
            );
            fifo_flow = StreamingFlowtime::from_records(outcome.records());
            println!("stream10m/fifo stages: {}", stage_split(&outcome));
            black_box(outcome.mean_flowtime())
        })
    });
    println!(
        "stream10m/fifo: peak resident {fifo_peak_jobs} jobs, {fifo_peak_slots} copy slots \
         for {fifo_copies} copies; mean flowtime {:.3}",
        fifo_flow.mean()
    );

    let mut srpt_peak_jobs = 0usize;
    let mut srpt_peak_slots = 0usize;
    let mut srpt_copies = 0usize;
    let mut srpt_prefix_max = 0usize;
    let mut srpt_decisions = 0u64;
    let mut srpt_stages = (0u64, 0u64, 0u64, 0u64);
    let mut srpt_flow = StreamingFlowtime::new();
    group.bench_with_input(BenchmarkId::from_parameter("srptmsc"), &seed, |b, &seed| {
        b.iter(|| {
            let outcome = run_ten_million(&mut SrptMsC::new(0.6, 3.0), &scenario, seed);
            srpt_peak_jobs = outcome.peak_resident_jobs;
            srpt_peak_slots = outcome.peak_copy_slots;
            srpt_copies = outcome.total_copies;
            srpt_prefix_max = outcome.telemetry.ranked_prefix_len_max;
            srpt_decisions = outcome.telemetry.decision_instants;
            srpt_stages = (
                outcome.telemetry.stage_source_ns,
                outcome.telemetry.stage_events_ns,
                outcome.telemetry.stage_decision_ns,
                outcome.telemetry.stage_metrics_ns,
            );
            srpt_flow = StreamingFlowtime::from_records(outcome.records());
            println!("stream10m/srptmsc stages: {}", stage_split(&outcome));
            black_box(outcome.mean_flowtime())
        })
    });
    println!(
        "stream10m/srptmsc: peak resident {srpt_peak_jobs} jobs, {srpt_peak_slots} copy slots \
         for {srpt_copies} copies; {srpt_decisions} decision instants, ranked prefix max \
         {srpt_prefix_max}; mean flowtime {:.3}",
        srpt_flow.mean()
    );
    group.finish();

    mapreduce_bench::merge_bench_report_with(
        "stream10m",
        TOTAL_JOBS,
        scenario.machines,
        c.results(),
        &[
            ("stream10m_total_jobs", TOTAL_JOBS.to_json()),
            ("stream10m_peak_resident_jobs", fifo_peak_jobs.to_json()),
            ("stream10m_peak_copy_slots", fifo_peak_slots.to_json()),
            ("stream10m_total_copies", fifo_copies.to_json()),
            (
                "stream10m_srptmsc_peak_resident_jobs",
                srpt_peak_jobs.to_json(),
            ),
            (
                "stream10m_srptmsc_peak_copy_slots",
                srpt_peak_slots.to_json(),
            ),
            ("stream10m_srptmsc_total_copies", srpt_copies.to_json()),
            (
                "stream10m_srptmsc_decision_instants",
                srpt_decisions.to_json(),
            ),
            (
                "stream10m_srptmsc_ranked_prefix_len_max",
                srpt_prefix_max.to_json(),
            ),
            ("stream10m_fifo_mean_flowtime", fifo_flow.mean().to_json()),
            (
                "stream10m_srptmsc_mean_flowtime",
                srpt_flow.mean().to_json(),
            ),
            ("stream10m_fifo_stage_source_ns", fifo_stages.0.to_json()),
            ("stream10m_fifo_stage_events_ns", fifo_stages.1.to_json()),
            ("stream10m_fifo_stage_decision_ns", fifo_stages.2.to_json()),
            ("stream10m_fifo_stage_metrics_ns", fifo_stages.3.to_json()),
            ("stream10m_srptmsc_stage_source_ns", srpt_stages.0.to_json()),
            ("stream10m_srptmsc_stage_events_ns", srpt_stages.1.to_json()),
            (
                "stream10m_srptmsc_stage_decision_ns",
                srpt_stages.2.to_json(),
            ),
            (
                "stream10m_srptmsc_stage_metrics_ns",
                srpt_stages.3.to_json(),
            ),
        ],
    );
}

criterion_group! {
    name = benches;
    // One sample *is* the bench at this scale: a single iteration simulates
    // ≈80 days of cluster time. CI never runs this tier; the recorded
    // BENCH_engine.json entry comes from explicit full runs.
    config = Criterion::default().sample_size(1);
    targets = bench_stream10m
}
criterion_main!(benches);
