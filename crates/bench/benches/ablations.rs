//! Ablation bench: how much each design ingredient of SRPTMS+C contributes
//! (cloning, the rσ pessimism term, the ε-fraction sharing), plus the raw
//! scheduler-overhead microbenchmark (cost of one `schedule()` pass).

use mapreduce_bench::bench_scenario;
use mapreduce_experiments::{ablation, run_scheduler, SchedulerKind};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let scenario = bench_scenario();
    let rows = ablation::run(&scenario);
    println!("{}", ablation::render(&rows));

    let trace = scenario.trace(scenario.seeds[0]);
    let mut group = c.benchmark_group("ablation_variants");
    let variants = [
        ("full", SchedulerKind::paper_default()),
        (
            "no-cloning",
            SchedulerKind::SrptMsNoCloning {
                epsilon: 0.6,
                r: 3.0,
            },
        ),
        ("no-sharing", SchedulerKind::SrptNoClone { r: 3.0 }),
        ("fair", SchedulerKind::Fair),
    ];
    for (label, kind) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| {
                let outcome = run_scheduler(
                    kind,
                    black_box(&trace),
                    scenario.machines,
                    scenario.seeds[0],
                );
                black_box(outcome.weighted_mean_flowtime())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
