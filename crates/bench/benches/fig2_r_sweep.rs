//! Fig. 2 bench: the pessimism-factor (r) sweep of SRPTMS+C at ε = 0.6.

use mapreduce_bench::sweep_scenario;
use mapreduce_experiments::{fig2, run_scheduler, SchedulerKind};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let scenario = sweep_scenario();
    let rows = fig2::run(&scenario, &fig2::paper_rs());
    println!("{}", fig2::render(&rows));
    println!(
        "relative spread across r: {:.1} % (paper: small)\n",
        fig2::relative_spread(&rows) * 100.0
    );

    let trace = scenario.trace(scenario.seeds[0]);
    let mut group = c.benchmark_group("fig2_r");
    for r in [0.0, 3.0, 8.0] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                let outcome = run_scheduler(
                    SchedulerKind::SrptMsC { epsilon: 0.6, r },
                    black_box(&trace),
                    scenario.machines,
                    scenario.seeds[0],
                );
                black_box(outcome.weighted_mean_flowtime())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2
}
criterion_main!(benches);
