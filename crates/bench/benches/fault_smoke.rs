//! Fault-injection smoke benchmark: times the kill path — crash-heavy runs
//! where machines die under their copies, finish events retract, and tasks
//! re-execute — and records the fault counters next to the timings so a
//! regression in the kill/recovery path is visible in the report.
//!
//! Two MTBF levels per scheduler (mild and heavy churn) on the small bench
//! scenario; the `fault_peak_copy_slots` extra rides the bench-guard's
//! memory gate, pinning that arena recycling keeps the resident footprint
//! bounded even when crashes churn copies.
//!
//! Run with `cargo bench -p mapreduce-bench --bench fault_smoke`.

use mapreduce_experiments::{run_cell, Scenario, SchedulerKind};
use mapreduce_sim::{FaultClass, FaultPlan};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::json::ToJson;
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

/// One crash class covering the whole cluster, MTTR = MTBF / 8 (the same
/// shape as the fig7 failure sweep).
fn plan(scenario: &Scenario, mtbf: f64) -> FaultPlan {
    FaultPlan::new(vec![FaultClass::crashes(
        scenario.machines,
        mtbf,
        mtbf / 8.0,
    )])
}

fn bench_fault_smoke(c: &mut Criterion) {
    let base = Scenario::scaled(120, 1);
    let seed = base.seeds[0];
    let heavy = base.with_fault(plan(&base, 2_000.0));
    let mild = base.with_fault(plan(&base, 8_000.0));

    let mut group = c.benchmark_group("fault_smoke");
    let variants = [
        ("srptmsc_mtbf2k", SchedulerKind::paper_default(), &heavy),
        ("srptmsc_mtbf8k", SchedulerKind::paper_default(), &mild),
        ("fifo_mtbf2k", SchedulerKind::Fifo, &heavy),
        ("restart_mtbf2k", SchedulerKind::Restart, &heavy),
    ];
    for (label, kind, scenario) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| {
                let outcome = run_cell(kind, black_box(scenario), seed);
                black_box(outcome.mean_flowtime())
            })
        });
    }
    group.finish();

    // The counters are deterministic for a given engine build: a change in
    // how many copies die, how much progress is wasted, or how large the
    // arena footprint grows under churn shows up as a diff in the report.
    let probe = run_cell(SchedulerKind::paper_default(), &heavy, seed);
    assert!(
        probe.copies_killed_by_fault > 0,
        "the heavy-churn smoke scenario must actually kill copies"
    );
    println!(
        "fault smoke: {} copies killed, {} machine-slots wasted, {} slots downtime, \
         peak {} copy slots",
        probe.copies_killed_by_fault,
        probe.wasted_work,
        probe.machine_downtime,
        probe.peak_copy_slots
    );
    mapreduce_bench::merge_bench_report_with(
        "fault_smoke",
        base.profile.num_jobs,
        base.machines,
        c.results(),
        &[
            ("fault_wasted_work", probe.wasted_work.to_json()),
            (
                "fault_copies_killed",
                probe.copies_killed_by_fault.to_json(),
            ),
            ("fault_machine_downtime", probe.machine_downtime.to_json()),
            ("fault_peak_copy_slots", probe.peak_copy_slots.to_json()),
        ],
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fault_smoke
}
criterion_main!(benches);
