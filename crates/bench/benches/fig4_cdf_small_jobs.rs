//! Fig. 4 bench: small-job (0–300 s) flowtime CDF for SRPTMS+C vs SCA vs
//! Mantri. The regenerated series is printed once; the measured benchmark is
//! one full simulation + CDF extraction per scheduler.

use mapreduce_bench::bench_scenario;
use mapreduce_experiments::{fig4, run_scheduler, SchedulerKind};
use mapreduce_metrics::Ecdf;
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let scenario = bench_scenario();
    let comparison = fig4::run(&scenario);
    println!(
        "{}",
        fig4::render(
            &comparison,
            "Fig. 4 — cumulative fraction of jobs vs flowtime (0–300 s window)"
        )
    );

    let trace = scenario.trace(scenario.seeds[0]);
    let mut group = c.benchmark_group("fig4_small_job_cdf");
    for kind in SchedulerKind::paper_comparison() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let outcome = run_scheduler(
                        kind,
                        black_box(&trace),
                        scenario.machines,
                        scenario.seeds[0],
                    );
                    let cdf = Ecdf::from_outcome(&outcome);
                    black_box(cdf.fraction_at_or_below(100.0))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
