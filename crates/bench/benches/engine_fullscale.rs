//! Engine full-scale benchmark: the paper's 12 000-machine / 6 064-job
//! regime (Table II), timed end to end per scheduler and merged into
//! `BENCH_engine.json`.
//!
//! Besides the optimized schedulers, the bench runs the frozen
//! pre-optimization SRPTMS+C (`mapreduce_sched::ReferenceSrptMsC`) under the
//! id `engine_fullscale/srptmsc_reference`, so the report records the
//! pre-change baseline measured by the same binary on the same machine —
//! the optimized/reference ratio is the incremental-state speedup at full
//! scale.
//!
//! Run with `cargo bench -p mapreduce-bench --bench engine_fullscale`
//! (about a minute; `MAPREDUCE_BENCH_SAMPLES=1` for a quick pass).

use mapreduce_experiments::{run_scheduler, Scenario, SchedulerKind};
use mapreduce_sched::ReferenceSrptMsC;
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::json::ToJson;
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fullscale(c: &mut Criterion) {
    let scenario = Scenario::paper();
    let seed = scenario.seeds[0];
    let trace = scenario.trace(seed);
    println!(
        "engine fullscale: {} jobs / {} tasks / {} machines",
        trace.len(),
        trace.total_tasks(),
        scenario.machines
    );

    // Peak resident job count (engine-side alive window) of the workload:
    // identical for streaming and materialized feeds of the same trajectory.
    // A materialized feed additionally keeps the whole trace resident in the
    // source; a streaming feed keeps nothing, so its total residency is just
    // the alive window. Recorded in the report next to the timings.
    let peak_resident =
        run_scheduler(SchedulerKind::Fifo, &trace, scenario.machines, seed).peak_resident_jobs;
    println!(
        "engine fullscale: peak resident jobs {peak_resident} (materialized feed holds {} \
         source-resident jobs on top, streaming holds 0)",
        trace.len()
    );

    let mut group = c.benchmark_group("engine_fullscale");
    let variants = [
        ("srptmsc", SchedulerKind::paper_default()),
        ("fifo", SchedulerKind::Fifo),
        ("mantri", SchedulerKind::Mantri),
    ];
    for (label, kind) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| {
                let outcome = run_scheduler(kind, black_box(&trace), scenario.machines, seed);
                black_box(outcome.mean_flowtime())
            })
        });
    }
    // The recorded pre-change baseline: SRPTMS+C exactly as it was before the
    // incremental-state optimization.
    group.bench_with_input(
        BenchmarkId::from_parameter("srptmsc_reference"),
        &seed,
        |b, &seed| {
            b.iter(|| {
                let mut scheduler = ReferenceSrptMsC::new(0.6, 3.0);
                let outcome = mapreduce_bench::run_reference(
                    &mut scheduler,
                    black_box(&trace),
                    scenario.machines,
                    seed,
                );
                black_box(outcome.mean_flowtime())
            })
        },
    );
    group.finish();

    mapreduce_bench::merge_bench_report_with(
        "engine_fullscale",
        scenario.profile.num_jobs,
        scenario.machines,
        c.results(),
        &[
            ("peak_resident_jobs", peak_resident.to_json()),
            (
                "source_resident_jobs_materialized",
                scenario.profile.num_jobs.to_json(),
            ),
            ("source_resident_jobs_streaming", 0usize.to_json()),
        ],
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench_fullscale
}
criterion_main!(benches);
