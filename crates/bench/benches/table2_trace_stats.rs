//! Table II bench: generating the Google-like trace and computing its
//! statistics. Also prints the regenerated table once so `cargo bench`
//! output contains the paper-vs-measured comparison.

use mapreduce_bench::bench_scenario;
use mapreduce_experiments::table2;
use mapreduce_support::criterion::Criterion;
use mapreduce_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let scenario = bench_scenario();
    // Print the regenerated artefact once.
    println!("{}", table2::render(&table2::run(&scenario)));

    c.bench_function("table2/generate_trace_and_stats", |b| {
        b.iter(|| {
            let stats = table2::run(black_box(&scenario));
            black_box(stats)
        })
    });

    let trace = scenario.trace(scenario.seeds[0]);
    c.bench_function("table2/stats_only", |b| b.iter(|| black_box(trace.stats())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2
}
criterion_main!(benches);
