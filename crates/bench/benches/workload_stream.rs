//! Streaming vs materialized arrival feed at full scale.
//!
//! Three variants, all FIFO (the cheapest scheduler, so the feed path
//! dominates the measurement):
//!
//! * `materialized/fifo` — the paper-scale trace (6 064 jobs) pre-generated
//!   once, fed through a [`mapreduce_workload::MaterializedSource`] per
//!   iteration (trace generation is *outside* the timing, matching how
//!   experiment sweeps reuse a trace across schedulers).
//! * `streaming/fifo` — the same scale fed by a
//!   [`StreamingGenerator`], synthesis *inside* the timing: this is the
//!   full cost of a run that never materialises its trace.
//! * `stream100k/fifo` — the 100 000-job fullscale regime the streaming
//!   subsystem exists for, in bounded memory (peak resident jobs ≪ total;
//!   both counts are recorded in the report entry).
//!
//! Before any timing, the bench asserts that the streaming feed's outcome is
//! **bit-identical** to running its materialised twin — the same invariant
//! the `streaming_equivalence` proptest pins at randomized scales.
//!
//! Run with `cargo bench -p mapreduce-bench --bench workload_stream`
//! (`MAPREDUCE_BENCH_SAMPLES=1` for a quick pass). Results merge into
//! `BENCH_engine.json` / the smoke report and feed the CI bench-guard.

use mapreduce_baselines::Fifo;
use mapreduce_experiments::{run_scheduler, Scenario, SchedulerKind};
use mapreduce_sim::{SimConfig, SimOutcome, Simulation};
use mapreduce_support::criterion::{BenchmarkId, Criterion};
use mapreduce_support::json::ToJson;
use mapreduce_support::{criterion_group, criterion_main};
use mapreduce_workload::{JobSource, StreamingGenerator};
use std::hint::black_box;

/// One streaming FIFO run over a freshly built source.
fn run_streaming(source: Box<dyn JobSource>, machines: usize, seed: u64) -> SimOutcome {
    Simulation::from_source(SimConfig::new(machines).with_seed(seed), source)
        .run(&mut Fifo::new())
        .expect("streaming run must complete")
}

fn bench_workload_stream(c: &mut Criterion) {
    let scenario = Scenario::paper();
    let seed = scenario.seeds[0];
    let machines = scenario.machines;
    let stream = StreamingGenerator::new(scenario.profile.clone(), seed);

    // Equivalence gate: the streamed run must be bit-identical to running
    // the stream's materialised twin through the trace path.
    let streamed = run_streaming(Box::new(stream.clone()), machines, seed);
    let twin = stream.materialize();
    let materialized_twin = run_scheduler(SchedulerKind::Fifo, &twin, machines, seed);
    assert_eq!(
        streamed, materialized_twin,
        "streaming and materialized feeds diverged at paper scale"
    );
    println!(
        "workload stream: {} jobs / {} machines, peak resident {} jobs",
        twin.len(),
        machines,
        streamed.peak_resident_jobs
    );

    let mut group = c.benchmark_group("workload_stream");
    let trace = scenario.trace(seed);
    group.bench_with_input(
        BenchmarkId::from_parameter("materialized/fifo"),
        &seed,
        |b, &seed| {
            b.iter(|| {
                let outcome = run_scheduler(SchedulerKind::Fifo, black_box(&trace), machines, seed);
                black_box(outcome.mean_flowtime())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("streaming/fifo"),
        &seed,
        |b, &seed| {
            b.iter(|| {
                let source = StreamingGenerator::new(scenario.profile.clone(), seed);
                let outcome = run_streaming(Box::new(source), machines, seed);
                black_box(outcome.mean_flowtime())
            })
        },
    );

    // The 100k-job regime: streaming only — materialising this trace is
    // exactly what the subsystem avoids.
    let fullscale = Scenario::streaming(100_000, 1);
    let fullscale_seed = fullscale.seeds[0];
    let mut peak_100k = 0usize;
    let mut peak_slots_100k = 0usize;
    let mut copies_100k = 0usize;
    group.bench_with_input(
        BenchmarkId::from_parameter("stream100k/fifo"),
        &fullscale_seed,
        |b, &seed| {
            b.iter(|| {
                let outcome = run_streaming(fullscale.job_source(seed), fullscale.machines, seed);
                assert_eq!(outcome.records().len(), 100_000);
                peak_100k = outcome.peak_resident_jobs;
                peak_slots_100k = outcome.peak_copy_slots;
                copies_100k = outcome.total_copies;
                black_box(outcome.mean_flowtime())
            })
        },
    );
    println!(
        "workload stream: 100k-job streaming run peaked at {peak_100k} resident jobs and \
         {peak_slots_100k} copy slots for {copies_100k} copies ({} machines)",
        fullscale.machines
    );
    group.finish();

    // Pipeline gate (release mode, every CI run): the pipelined engine —
    // producer thread feeding admissions, consumer thread folding records —
    // must be bit-identical to the serial oracle at the 100k-job scale the
    // proptests can't reach.
    let serial = run_streaming(
        fullscale.job_source(fullscale_seed),
        fullscale.machines,
        fullscale_seed,
    );
    let piped = Simulation::from_source(
        SimConfig::new(fullscale.machines)
            .with_seed(fullscale_seed)
            .with_pipeline(true),
        fullscale.job_source(fullscale_seed),
    )
    .run(&mut Fifo::new())
    .expect("pipelined run must complete");
    assert_eq!(
        serial, piped,
        "pipelined and serial engines diverged at 100k-job scale"
    );
    println!("workload stream: pipelined 100k-job run is bit-identical to the serial oracle");

    // Telemetry gate (release mode, every CI run): the same 100k-job stream
    // with the full observer stack attached — counter/histogram fold, the
    // flowtime quantile sketches, plus Chrome-trace recorder — must be
    // bit-identical to the bare run, and the exported trace must
    // self-validate against the independently folded registry. The trace
    // lands next to the bench reports for Perfetto. Both runs are wall-clock
    // timed — interleaved, min of two repetitions each, so a transient stall
    // in either leg can't fake (or mask) observer cost — and the overhead
    // lands in the report as a ratio the CI bench-guard caps (see
    // `find_overhead_regressions`).
    let mut bare_ns = u64::MAX;
    let mut observed_ns = u64::MAX;
    let mut telemetry = mapreduce_metrics::SimTelemetry::new();
    let mut recorder = mapreduce_metrics::TraceRecorder::new(200_000);
    for _ in 0..2 {
        let bare_start = std::time::Instant::now();
        let bare = run_streaming(
            fullscale.job_source(fullscale_seed),
            fullscale.machines,
            fullscale_seed,
        );
        bare_ns = bare_ns.min(bare_start.elapsed().as_nanos().max(1) as u64);
        assert_eq!(serial, bare, "bare rerun diverged from the serial oracle");
        telemetry = mapreduce_metrics::SimTelemetry::new();
        recorder = mapreduce_metrics::TraceRecorder::new(200_000);
        let observed_start = std::time::Instant::now();
        let observed = Simulation::from_source(
            SimConfig::new(fullscale.machines).with_seed(fullscale_seed),
            fullscale.job_source(fullscale_seed),
        )
        .run_with_observer(&mut Fifo::new(), &mut (&mut telemetry, &mut recorder))
        .expect("observed run must complete");
        observed_ns = observed_ns.min(observed_start.elapsed().as_nanos().max(1) as u64);
        assert_eq!(
            serial, observed,
            "attaching observers changed the 100k-job outcome"
        );
    }
    let overhead_ratio = observed_ns as f64 / bare_ns as f64;
    let (registry, sketches) = telemetry.into_parts();
    assert_eq!(
        sketches.all.count(),
        100_000,
        "flowtime sketch missed job completions"
    );
    let sketch_p50 = sketches.all.quantile(0.50).expect("sketch is non-empty");
    let sketch_p95 = sketches.all.quantile(0.95).expect("sketch is non-empty");
    let sketch_p99 = sketches.all.quantile(0.99).expect("sketch is non-empty");
    println!(
        "workload stream: telemetry overhead {overhead_ratio:.3}x \
         (bare {:.2}s, observed {:.2}s); sketch p50/p95/p99 = \
         {sketch_p50}/{sketch_p95}/{sketch_p99}",
        bare_ns as f64 / 1e9,
        observed_ns as f64 / 1e9,
    );
    assert_eq!(
        registry.counter(mapreduce_metrics::telemetry::names::JOBS_COMPLETED),
        100_000,
        "telemetry registry missed job completions"
    );
    let trace_text = recorder.to_json().to_compact_string();
    mapreduce_metrics::validate_trace(&trace_text, &registry)
        .expect("stream100k trace must validate against its registry");
    // Anchored to the workspace root: `cargo bench` runs with the crate
    // directory as cwd, where a relative `target/` does not exist.
    let trace_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/trace_stream100k.json"
    );
    match std::fs::write(trace_path, &trace_text) {
        Ok(()) => println!(
            "workload stream: observed 100k-job run is bit-identical; trace with {} events \
             ({} dropped) validated and written to {trace_path}",
            recorder.retained(),
            recorder.dropped()
        ),
        Err(err) => println!("workload stream: could not write {trace_path}: {err}"),
    }

    mapreduce_bench::merge_bench_report_with(
        "workload_stream",
        scenario.profile.num_jobs,
        machines,
        c.results(),
        &[
            ("peak_resident_jobs", streamed.peak_resident_jobs.to_json()),
            ("stream100k_total_jobs", 100_000usize.to_json()),
            ("stream100k_peak_resident_jobs", peak_100k.to_json()),
            ("stream100k_total_copies", copies_100k.to_json()),
            ("stream100k_peak_copy_slots", peak_slots_100k.to_json()),
            ("stream100k_sketch_p50", sketch_p50.to_json()),
            ("stream100k_sketch_p95", sketch_p95.to_json()),
            ("stream100k_sketch_p99", sketch_p99.to_json()),
            ("stream100k_bare_ns", bare_ns.to_json()),
            ("stream100k_observed_ns", observed_ns.to_json()),
            (
                "stream100k_telemetry_overhead_ratio",
                overhead_ratio.to_json(),
            ),
        ],
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench_workload_stream
}
criterion_main!(benches);
