//! Flowtime metrics, empirical CDFs and comparison reports.
//!
//! The paper's evaluation reports three kinds of numbers, all of which are
//! produced by this crate from one or more [`mapreduce_sim::SimOutcome`]s:
//!
//! * weighted and unweighted **average job flowtime** (Figs. 1, 2, 3, 6) —
//!   [`FlowtimeSummary`];
//! * the **CDF of job flowtime**, restricted to small jobs (0–300 s, Fig. 4)
//!   or big jobs (300–4000 s, Fig. 5) — [`Ecdf`];
//! * side-by-side **algorithm comparisons** — [`ComparisonReport`].
//!
//! On top of the paper-figure metrics, the crate hosts the telemetry
//! consumers of the engine's [`mapreduce_sim::SimObserver`] seam: a
//! shard-mergeable counter/histogram [`MetricsRegistry`] with its folding
//! observer [`SimTelemetry`], the streaming [`QuantileSketch`] that yields
//! Fig. 4/5-shaped CDFs and percentiles in O(1) memory (see [`sketch`]),
//! and the bounded Chrome-trace exporter [`TraceRecorder`] (see
//! [`trace_export`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod registry;
pub mod report;
pub mod sketch;
pub mod summary;
pub mod telemetry;
pub mod trace_export;

pub use cdf::Ecdf;
pub use registry::{Log2Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use report::ComparisonReport;
pub use sketch::{FlowtimeSketches, QuantileSketch};
pub use summary::{FlowtimeBucket, FlowtimeSummary, StreamingFlowtime};
pub use telemetry::{fold_run_telemetry, SimTelemetry};
pub use trace_export::{validate_trace, TraceRecorder};
