//! Flowtime metrics, empirical CDFs and comparison reports.
//!
//! The paper's evaluation reports three kinds of numbers, all of which are
//! produced by this crate from one or more [`mapreduce_sim::SimOutcome`]s:
//!
//! * weighted and unweighted **average job flowtime** (Figs. 1, 2, 3, 6) —
//!   [`FlowtimeSummary`];
//! * the **CDF of job flowtime**, restricted to small jobs (0–300 s, Fig. 4)
//!   or big jobs (300–4000 s, Fig. 5) — [`Ecdf`];
//! * side-by-side **algorithm comparisons** — [`ComparisonReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod report;
pub mod summary;

pub use cdf::Ecdf;
pub use report::ComparisonReport;
pub use summary::{FlowtimeBucket, FlowtimeSummary, StreamingFlowtime};
