//! Bounded Chrome-trace-event exporter.
//!
//! [`TraceRecorder`] is a [`SimObserver`] that renders lifecycle events into
//! the Chrome trace-event JSON format (the `{"traceEvents": [...]}` object
//! form), viewable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Slots map to trace microseconds at 1 slot = 1 s
//! (`ts = slot × 1_000_000`), and the lanes are fixed process ids:
//!
//! | pid | lane |
//! |-----|------|
//! | 0 | scheduler (decision counters, task unlaunches) |
//! | 1 | jobs (one complete-event span per job, arrival → completion) |
//! | 2 | copies (one span per copy, launch → finish/cancel) |
//! | 3 | machines (down/up instants) |
//!
//! The recorder is **bounded**: construction fixes an event cap, events past
//! the cap are dropped, and a truncation counter records how many — the
//! exported file always says whether it is complete. Per-kind counts
//! (named exactly like the [`crate::telemetry::names`] counters) are
//! embedded in the export, and [`validate_trace`] cross-checks them against
//! a [`MetricsRegistry`] folded from the same run, which is how the CI trace
//! smoke asserts the exporter saw every event the registry counted.

use crate::registry::MetricsRegistry;
use crate::telemetry::{names, LifecycleCounts};
use mapreduce_sim::telemetry::{
    CopyCancelled, CopyFinished, CopyLaunched, DecisionInstant, SimObserver,
};
use mapreduce_sim::{CancelReason, JobRecord, Slot};
use mapreduce_support::json::{FromJson, JsonValue, ToJson};
use mapreduce_workload::{JobId, Phase, TaskId};

/// Microseconds per slot in the exported trace: 1 slot = 1 simulated second.
pub const MICROS_PER_SLOT: u64 = 1_000_000;

/// Trace lane (Chrome `pid`) of scheduler-level events.
pub const PID_SCHEDULER: u64 = 0;
/// Trace lane of per-job spans.
pub const PID_JOBS: u64 = 1;
/// Trace lane of per-copy spans.
pub const PID_COPIES: u64 = 2;
/// Trace lane of machine down/up instants.
pub const PID_MACHINES: u64 = 3;

/// The counter names a trace export embeds and [`validate_trace`] compares —
/// exactly the per-event-kind counters [`crate::SimTelemetry`] folds.
pub const VALIDATED_COUNTERS: [&str; 11] = [
    names::JOBS_ARRIVED,
    names::JOBS_COMPLETED,
    names::COPIES_LAUNCHED,
    names::COPIES_FINISHED,
    names::CANCELLED_SIBLING,
    names::CANCELLED_SCHEDULER,
    names::CANCELLED_FAULT,
    names::TASKS_UNLAUNCHED,
    names::MACHINES_DOWN,
    names::MACHINES_UP,
    names::DECISION_INSTANTS,
];

fn ts(slot: Slot) -> JsonValue {
    (slot * MICROS_PER_SLOT).to_json()
}

fn phase_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Map => "map",
        Phase::Reduce => "reduce",
    }
}

fn task_args(task: TaskId) -> JsonValue {
    JsonValue::object([
        ("job", task.job.to_json()),
        (
            "phase",
            JsonValue::String(phase_name(task.phase).to_string()),
        ),
        ("index", task.index.to_json()),
    ])
}

/// A bounded Chrome-trace-event recorder.
///
/// Spans are emitted when they *end* (job completion, copy finish/cancel) —
/// the lifecycle events carry their start slots, so no per-entity start map
/// is kept and recorder memory is exactly the retained event list.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    events: Vec<JsonValue>,
    cap: usize,
    /// Events dropped after the cap was reached.
    dropped: u64,
    /// Per-kind attempt counts — plain fields, so counting past the cap
    /// costs a field increment (see [`LifecycleCounts`]).
    counts: LifecycleCounts,
}

impl TraceRecorder {
    /// A recorder retaining at most `cap` events (counting continues past
    /// the cap; only the event list is bounded).
    pub fn new(cap: usize) -> Self {
        TraceRecorder {
            events: Vec::new(),
            cap,
            dropped: 0,
            counts: LifecycleCounts::default(),
        }
    }

    /// Number of events currently retained.
    pub fn retained(&self) -> usize {
        self.events.len()
    }

    /// Number of events dropped over the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The per-kind attempt counts (every event counts, retained or not),
    /// materialized as a registry under the canonical [`names`].
    pub fn counts(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.counts.fold_into(&mut registry);
        registry
    }

    /// Reserves one retained-event slot, or counts a drop. Handlers call
    /// this *before* rendering an event so that once the cap is reached the
    /// per-event cost collapses to two counter bumps — no JSON object is
    /// ever built just to be thrown away (at 10M-job scale the dropped tail
    /// is the overwhelming majority of events).
    fn reserve(&mut self) -> bool {
        if self.events.len() < self.cap {
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    fn push(&mut self, event: JsonValue) {
        debug_assert!(self.events.len() < self.cap, "push without reserve");
        self.events.push(event);
    }

    /// Renders the trace as a Chrome trace-event JSON document.
    ///
    /// Top-level shape: `traceEvents` (the event array, metadata first),
    /// `displayTimeUnit`, and an `exportStats` object carrying the cap, the
    /// drop counter and the per-kind counts that [`validate_trace`] checks.
    pub fn to_json(&self) -> JsonValue {
        let mut events: Vec<JsonValue> = Vec::with_capacity(self.events.len() + 4);
        for (pid, name) in [
            (PID_SCHEDULER, "scheduler"),
            (PID_JOBS, "jobs"),
            (PID_COPIES, "copies"),
            (PID_MACHINES, "machines"),
        ] {
            events.push(JsonValue::object([
                ("name", JsonValue::String("process_name".to_string())),
                ("ph", JsonValue::String("M".to_string())),
                ("pid", pid.to_json()),
                (
                    "args",
                    JsonValue::object([("name", JsonValue::String(name.to_string()))]),
                ),
            ]));
        }
        events.extend(self.events.iter().cloned());
        JsonValue::object([
            ("traceEvents", JsonValue::Array(events)),
            ("displayTimeUnit", JsonValue::String("ms".to_string())),
            (
                "exportStats",
                JsonValue::object([
                    ("cap", self.cap.to_json()),
                    ("retained", self.events.len().to_json()),
                    ("dropped", self.dropped.to_json()),
                    ("counts", self.counts().to_json()),
                ]),
            ),
        ])
    }

    /// The complete-event span of a finished or cancelled copy.
    fn copy_span(&mut self, name: &str, at: Slot, launched_at: Slot, copy: u64, task: TaskId) {
        if !self.reserve() {
            return;
        }
        let dur = at.saturating_sub(launched_at) * MICROS_PER_SLOT;
        self.push(JsonValue::object([
            ("name", JsonValue::String(name.to_string())),
            ("ph", JsonValue::String("X".to_string())),
            ("pid", PID_COPIES.to_json()),
            ("tid", copy.to_json()),
            ("ts", ts(launched_at)),
            ("dur", dur.to_json()),
            ("args", task_args(task)),
        ]));
    }
}

impl SimObserver for TraceRecorder {
    fn on_job_arrived(&mut self, _at: Slot, _job: JobId) {
        // Arrival is the start of the job span emitted at completion; only
        // the count is recorded here.
        self.counts.jobs_arrived += 1;
    }

    fn on_job_completed(&mut self, record: &JobRecord) {
        self.counts.jobs_completed += 1;
        if !self.reserve() {
            return;
        }
        self.push(JsonValue::object([
            ("name", JsonValue::String(format!("job {}", record.job))),
            ("ph", JsonValue::String("X".to_string())),
            ("pid", PID_JOBS.to_json()),
            ("tid", record.job.to_json()),
            ("ts", ts(record.arrival)),
            ("dur", (record.flowtime() * MICROS_PER_SLOT).to_json()),
            (
                "args",
                JsonValue::object([
                    ("copies_launched", record.copies_launched.to_json()),
                    ("num_tasks", record.num_tasks().to_json()),
                    ("weight", record.weight.to_json()),
                ]),
            ),
        ]));
    }

    fn on_copy_launched(&mut self, _event: CopyLaunched) {
        // The launch slot rides on the finish/cancel event (spans are
        // emitted when they end); only the count is recorded here.
        self.counts.copies_launched += 1;
    }

    fn on_copy_finished(&mut self, event: CopyFinished) {
        self.counts.copies_finished += 1;
        self.copy_span(
            "copy",
            event.at,
            event.launched_at,
            event.copy.0,
            event.task,
        );
    }

    fn on_copy_cancelled(&mut self, event: CopyCancelled) {
        let name = match event.reason {
            CancelReason::SiblingFinished => {
                self.counts.cancelled_sibling += 1;
                "cancelled:sibling"
            }
            CancelReason::Scheduler => {
                self.counts.cancelled_scheduler += 1;
                "cancelled:scheduler"
            }
            CancelReason::Fault => {
                self.counts.cancelled_fault += 1;
                "cancelled:fault"
            }
        };
        self.copy_span(name, event.at, event.launched_at, event.copy.0, event.task);
    }

    fn on_task_unlaunched(&mut self, at: Slot, task: TaskId) {
        self.counts.tasks_unlaunched += 1;
        if !self.reserve() {
            return;
        }
        self.push(JsonValue::object([
            ("name", JsonValue::String("task_unlaunched".to_string())),
            ("ph", JsonValue::String("i".to_string())),
            ("s", JsonValue::String("p".to_string())),
            ("pid", PID_SCHEDULER.to_json()),
            ("tid", 0u64.to_json()),
            ("ts", ts(at)),
            ("args", task_args(task)),
        ]));
    }

    fn on_machine_down(&mut self, at: Slot, machine: u32, crash: bool) {
        self.counts.machines_down += 1;
        if !self.reserve() {
            return;
        }
        self.push(JsonValue::object([
            (
                "name",
                JsonValue::String(if crash { "crash" } else { "brownout" }.to_string()),
            ),
            ("ph", JsonValue::String("i".to_string())),
            ("s", JsonValue::String("t".to_string())),
            ("pid", PID_MACHINES.to_json()),
            ("tid", machine.to_json()),
            ("ts", ts(at)),
        ]));
    }

    fn on_machine_up(&mut self, at: Slot, machine: u32, crash: bool) {
        self.counts.machines_up += 1;
        if !self.reserve() {
            return;
        }
        self.push(JsonValue::object([
            (
                "name",
                JsonValue::String(if crash { "recovered" } else { "brownout_end" }.to_string()),
            ),
            ("ph", JsonValue::String("i".to_string())),
            ("s", JsonValue::String("t".to_string())),
            ("pid", PID_MACHINES.to_json()),
            ("tid", machine.to_json()),
            ("ts", ts(at)),
        ]));
    }

    fn on_decision_instant(&mut self, event: DecisionInstant) {
        self.counts.decision_instants += 1;
        if !self.reserve() {
            return;
        }
        self.push(JsonValue::object([
            ("name", JsonValue::String("scheduler_actions".to_string())),
            ("ph", JsonValue::String("C".to_string())),
            ("pid", PID_SCHEDULER.to_json()),
            ("ts", ts(event.at)),
            (
                "args",
                JsonValue::object([
                    ("launch_actions", event.launch_actions.to_json()),
                    ("cancel_actions", event.cancel_actions.to_json()),
                    ("copies_requested", event.copies_requested.to_json()),
                    ("ranked_prefix", event.ranked_prefix.to_json()),
                ]),
            ),
        ]));
    }
}

/// Validates an exported trace document against the registry folded from the
/// same run.
///
/// Checks, in order: the text parses as JSON; `traceEvents` is a non-empty
/// array whose every entry carries the mandatory `ph`/`pid` fields; the
/// retained + dropped accounting is consistent; and every
/// [`VALIDATED_COUNTERS`] entry of the embedded per-kind counts equals the
/// registry's counter of the same name. Returns a description of the first
/// mismatch.
pub fn validate_trace(text: &str, registry: &MetricsRegistry) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("trace does not parse: {e}"))?;
    let JsonValue::Array(events) = doc
        .field("traceEvents")
        .map_err(|e| format!("bad trace: {e}"))?
    else {
        return Err("traceEvents is not an array".to_string());
    };
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    let mut spans = 0u64;
    for event in events {
        let ph = event
            .field("ph")
            .map_err(|e| format!("event without ph: {e}"))?;
        event
            .field("pid")
            .map_err(|e| format!("event without pid: {e}"))?;
        if matches!(ph, JsonValue::String(s) if s == "X") {
            spans += 1;
        }
    }
    let stats = doc
        .field("exportStats")
        .map_err(|e| format!("bad trace: {e}"))?;
    let retained = stats
        .field("retained")
        .and_then(u64::from_json)
        .map_err(|e| format!("bad exportStats: {e}"))?;
    let dropped = stats
        .field("dropped")
        .and_then(u64::from_json)
        .map_err(|e| format!("bad exportStats: {e}"))?;
    // 4 process_name metadata events ride in front of the retained ones.
    if events.len() as u64 != retained + 4 {
        return Err(format!(
            "traceEvents carries {} events but exportStats.retained says {retained}",
            events.len()
        ));
    }
    let counts = MetricsRegistry::from_json(
        stats
            .field("counts")
            .map_err(|e| format!("bad exportStats: {e}"))?,
    )
    .map_err(|e| format!("bad exportStats.counts: {e}"))?;
    for name in VALIDATED_COUNTERS {
        let traced = counts.counter(name);
        let folded = registry.counter(name);
        if traced != folded {
            return Err(format!(
                "count mismatch for `{name}`: trace saw {traced}, registry folded {folded}"
            ));
        }
    }
    // Every span-producing kind either landed in the file or in `dropped`.
    let span_kinds = counts.counter(names::JOBS_COMPLETED)
        + counts.counter(names::COPIES_FINISHED)
        + counts.counter(names::CANCELLED_SIBLING)
        + counts.counter(names::CANCELLED_SCHEDULER)
        + counts.counter(names::CANCELLED_FAULT);
    if spans > span_kinds {
        return Err(format!(
            "{spans} complete-event spans exceed the {span_kinds} span-producing events counted"
        ));
    }
    if dropped == 0 && spans != span_kinds {
        return Err(format!(
            "nothing was dropped but {spans} spans != {span_kinds} span-producing events"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::SimTelemetry;
    use mapreduce_sim::schedulers::MaxCloneScheduler;
    use mapreduce_sim::{FaultClass, FaultPlan, SimConfig, Simulation};
    use mapreduce_workload::WorkloadBuilder;

    fn traced_run(cap: usize) -> (TraceRecorder, SimTelemetry) {
        let trace = WorkloadBuilder::new().num_jobs(30).build(5);
        let plan = FaultPlan::new(vec![FaultClass::crashes(4, 60.0, 20.0)]);
        let config = SimConfig::new(12).with_seed(5).with_fault_plan(plan);
        let mut recorder = TraceRecorder::new(cap);
        let mut telemetry = SimTelemetry::new();
        let mut observer = (&mut telemetry, &mut recorder);
        Simulation::new(config, &trace)
            .run_with_observer(&mut MaxCloneScheduler::new(2), &mut observer)
            .unwrap();
        (recorder, telemetry)
    }

    #[test]
    fn export_validates_against_registry() {
        let (recorder, telemetry) = traced_run(usize::MAX);
        assert_eq!(recorder.dropped(), 0);
        let text = recorder.to_json().to_compact_string();
        validate_trace(&text, &telemetry.registry()).expect("trace must validate");
    }

    #[test]
    fn cap_bounds_the_event_list_and_counts_drops() {
        let (capped, telemetry) = traced_run(10);
        assert_eq!(capped.retained(), 10);
        assert!(
            capped.dropped() > 0,
            "the run emits far more than 10 events"
        );
        // Counts keep going past the cap, so validation still matches.
        let text = capped.to_json().to_compact_string();
        validate_trace(&text, &telemetry.registry()).expect("capped trace must validate");
    }

    #[test]
    fn validation_catches_a_count_mismatch() {
        let (recorder, telemetry) = traced_run(usize::MAX);
        let text = recorder.to_json().to_compact_string();
        let mut wrong = telemetry.registry().clone();
        wrong.inc(names::COPIES_FINISHED, 1);
        let err = validate_trace(&text, &wrong).unwrap_err();
        assert!(err.contains("copies_finished"), "got: {err}");
    }
}
