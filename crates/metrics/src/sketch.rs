//! Streaming quantile sketch over `u64` flowtimes with a documented,
//! bounded relative error.
//!
//! [`QuantileSketch`] is the O(1)-memory answer to the question the exact
//! [`crate::Ecdf`] answers by sorting every sample: "what is the p95, and
//! what does the CDF look like?". It is HDR-histogram shaped: values are
//! classified by the position of their highest set bit (the *major* bucket,
//! exactly like [`crate::Log2Histogram`]) and then by the next
//! [`SUB_BITS`] bits below it (the *linear sub-bucket*), so every bucket
//! spans at most a `2^-SUB_BITS` relative slice of the value axis. Values
//! below [`SUB_BUCKETS`] get a bucket each and are represented exactly.
//!
//! # Error model
//!
//! With `SUB_BITS = 6` every bucket `[floor, floor + width)` with
//! `floor ≥ 64` satisfies `width / floor ≤ 2^-6`, so:
//!
//! * **Quantiles.** [`QuantileSketch::quantile`] uses the same rank rule as
//!   [`crate::Ecdf::quantile`] (`rank = round((n-1)·q)`) and returns a value
//!   from the bucket holding the rank-th smallest sample. Both the true
//!   rank-th sample `t` and the reported value live in that bucket, hence
//!   `|reported − t| ≤ t · 2^-6` ([`QuantileSketch::RELATIVE_ERROR`], about
//!   1.57 %). Values `< 64` and the extremes `q = 0` / `q = 1` (pinned to
//!   the exact tracked min/max) are exact.
//! * **CDF fractions.** [`QuantileSketch::fraction_at_or_below`]`(x)` counts
//!   every bucket whose floor is ≤ `x`, which equals the *exact* empirical
//!   fraction evaluated at some `x′` with `x ≤ x′ < x · (1 + 2^-6)` — the
//!   error is a bounded rightward nudge of the evaluation point, never a
//!   miscounted sample.
//!
//! # Merge discipline
//!
//! Like [`crate::StreamingFlowtime`] and [`crate::MetricsRegistry`], the
//! sketch is **shard-mergeable**: [`QuantileSketch::merge`] is associative
//! and commutative, so per-shard sketches folded by a pipelined engine (or
//! per-cell sketches of a sweep) combine in any tree order into the sketch
//! a single-pass fold would have produced — bit-identically, since every
//! field is an integer.
//!
//! Memory is a fixed `NUM_BUCKETS` (= 3 776) `u64` array — independent of
//! the number of samples, which is the whole point: the `stream10m` tier's
//! ten million flowtimes sketch into ~30 KiB.

use crate::summary::FlowtimeBucket;
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};

/// Number of linear sub-bucket bits per log2 major bucket.
pub const SUB_BITS: u32 = 6;

/// Linear sub-buckets per major bucket (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total bucket count: one exact bucket per value below [`SUB_BUCKETS`],
/// then [`SUB_BUCKETS`] sub-buckets for each of the `64 − SUB_BITS` major
/// buckets covering the rest of the `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// A deterministic, shard-mergeable streaming quantile sketch over `u64`
/// samples (see the [module docs](self) for the bucket scheme and error
/// model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    /// `u64::MAX` when empty.
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl QuantileSketch {
    /// The documented worst-case relative error of [`quantile`]
    /// (`2^-SUB_BITS`): the reported quantile `r` and the exact same-rank
    /// sample `t` always satisfy `|r − t| ≤ t · RELATIVE_ERROR`.
    ///
    /// [`quantile`]: QuantileSketch::quantile
    pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of a value.
    pub fn bucket_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        // Position of the highest set bit (≥ SUB_BITS here).
        let high = 63 - value.leading_zeros();
        let major = (high - SUB_BITS + 1) as usize;
        let sub = ((value >> (high - SUB_BITS)) as usize) - SUB_BUCKETS;
        major * SUB_BUCKETS + sub
    }

    /// The smallest value a bucket admits. Floors roundtrip:
    /// `bucket_of(bucket_floor(i)) == i` for every index.
    pub fn bucket_floor(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let major = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) as u64) << (major - 1)
    }

    /// The number of distinct values a bucket admits (1 below
    /// [`SUB_BUCKETS`], doubling with each major bucket above).
    pub fn bucket_width(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            1
        } else {
            1u64 << (index / SUB_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True iff no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest recorded sample, exact (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, exact (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another sketch in. Associative and commutative: any merge tree
    /// over the same shards yields the identical sketch.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples `≤ x`, counting every bucket whose floor is ≤ `x`
    /// (so the result equals the exact count at some `x′ ∈ [x, x·(1+2^-6))`,
    /// see the [module docs](self)).
    pub fn count_at_or_below(&self, x: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if x >= self.max {
            return self.count;
        }
        let last = Self::bucket_of(x);
        self.buckets[..=last].iter().sum()
    }

    /// Fraction of samples `≤ x`, in `[0, 1]` (0.0 when empty) — the sketch
    /// counterpart of [`crate::Ecdf::fraction_at_or_below`].
    pub fn fraction_at_or_below(&self, x: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.count_at_or_below(x) as f64 / self.count as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), or `None` for an empty sketch.
    ///
    /// Uses the same rank rule as [`crate::Ecdf::quantile`]
    /// (`rank = round((n−1)·q)`), so the two agree up to
    /// [`RELATIVE_ERROR`](Self::RELATIVE_ERROR); `q = 0` and `q = 1` return
    /// the exact tracked min/max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        if rank == 0 {
            return Some(self.min);
        }
        if rank >= self.count - 1 {
            return Some(self.max);
        }
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative > rank {
                // The rank-th smallest sample lies in this bucket; report the
                // bucket floor clamped into the feasible [min, max] range —
                // still inside the bucket, hence within the error bound.
                return Some(Self::bucket_floor(index).max(self.min).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Evaluates the sketched CDF at evenly spaced points in `[lo, hi]`,
    /// returning `(x, fraction ≤ x)` pairs — the sketch counterpart of
    /// [`crate::Ecdf::series`], producing Fig. 4/5-shaped curves without a
    /// per-job sample vector. `denominator` overrides the sample count used
    /// for the fraction (pass the total job count to mimic the paper's
    /// figures); `None` normalises by this sketch's own count.
    pub fn series(
        &self,
        lo: f64,
        hi: f64,
        points: usize,
        denominator: Option<u64>,
    ) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two points for a series");
        assert!(hi > lo, "hi must exceed lo");
        let denom = denominator.unwrap_or(self.count).max(1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                let count = if x < 0.0 {
                    0
                } else {
                    self.count_at_or_below(x.min(u64::MAX as f64) as u64)
                };
                (x, count as f64 / denom)
            })
            .collect()
    }
}

impl ToJson for QuantileSketch {
    fn to_json(&self) -> JsonValue {
        // Sparse bucket encoding: `[floor, count]` pairs for the non-empty
        // buckets, ascending — floors roundtrip through `bucket_of`.
        let buckets: Vec<JsonValue> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| JsonValue::Array(vec![Self::bucket_floor(i).to_json(), c.to_json()]))
            .collect();
        JsonValue::object([
            ("count", self.count.to_json()),
            // u128 exceeds the JSON number model of the parser; a decimal
            // string keeps the exact value.
            ("sum", self.sum.to_string().to_json()),
            ("min", self.min().to_json()),
            ("max", self.max.to_json()),
            ("buckets", JsonValue::Array(buckets)),
        ])
    }
}

impl FromJson for QuantileSketch {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let count = u64::from_json(value.field("count")?)?;
        let mut sketch = QuantileSketch {
            count,
            sum: String::from_json(value.field("sum")?)?
                .parse::<u128>()
                .map_err(|_| JsonError::new("sketch sum is not a decimal u128".to_string()))?,
            min: if count == 0 {
                u64::MAX
            } else {
                u64::from_json(value.field("min")?)?
            },
            max: u64::from_json(value.field("max")?)?,
            ..QuantileSketch::default()
        };
        let JsonValue::Array(pairs) = value.field("buckets")? else {
            return Err(JsonError::new(
                "sketch buckets must be an array".to_string(),
            ));
        };
        for pair in pairs {
            let JsonValue::Array(pair) = pair else {
                return Err(JsonError::new("sketch bucket must be a pair".to_string()));
            };
            if pair.len() != 2 {
                return Err(JsonError::new("sketch bucket must be a pair".to_string()));
            }
            let floor = u64::from_json(&pair[0])?;
            let count = u64::from_json(&pair[1])?;
            sketch.buckets[QuantileSketch::bucket_of(floor)] += count;
        }
        Ok(sketch)
    }
}

/// The flowtime sketch set a run folds: one sketch over **all** jobs plus
/// one per paper figure window ([`FlowtimeBucket::SMALL_JOBS`] for Fig. 4,
/// [`FlowtimeBucket::BIG_JOBS`] for Fig. 5), so both figure curves and the
/// overall percentiles stream out of a run in O(1) memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowtimeSketches {
    /// Sketch over every completed job.
    pub all: QuantileSketch,
    /// Sketch over jobs in the paper's small-job window `[0, 300)`.
    pub small: QuantileSketch,
    /// Sketch over jobs in the paper's big-job window `[300, 4000)`.
    pub big: QuantileSketch,
}

impl FlowtimeSketches {
    /// An empty sketch set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed job's flowtime into the `all` sketch and into
    /// whichever paper window contains it (jobs ≥ 4000 only count in `all`).
    pub fn fold(&mut self, flowtime: u64) {
        self.all.record(flowtime);
        if FlowtimeBucket::SMALL_JOBS.contains(flowtime) {
            self.small.record(flowtime);
        } else if FlowtimeBucket::BIG_JOBS.contains(flowtime) {
            self.big.record(flowtime);
        }
    }

    /// Absorbs another sketch set built over a disjoint set of jobs.
    pub fn merge(&mut self, other: &FlowtimeSketches) {
        self.all.merge(&other.all);
        self.small.merge(&other.small);
        self.big.merge(&other.big);
    }

    /// True iff no job was ever folded.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }
}

impl ToJson for FlowtimeSketches {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("all", self.all.to_json()),
            ("small", self.small.to_json()),
            ("big", self.big.to_json()),
        ])
    }
}

impl FromJson for FlowtimeSketches {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(FlowtimeSketches {
            all: QuantileSketch::from_json(value.field("all")?)?,
            small: QuantileSketch::from_json(value.field("small")?)?,
            big: QuantileSketch::from_json(value.field("big")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ecdf;

    #[test]
    fn bucket_floors_roundtrip() {
        for index in 0..NUM_BUCKETS {
            let floor = QuantileSketch::bucket_floor(index);
            assert_eq!(
                QuantileSketch::bucket_of(floor),
                index,
                "floor of bucket {index}"
            );
            // The last value of the bucket still maps to it (parenthesised
            // so the top bucket's `floor + width` never overflows).
            let last = floor + (QuantileSketch::bucket_width(index) - 1);
            assert_eq!(QuantileSketch::bucket_of(last), index, "last of {index}");
        }
        assert_eq!(QuantileSketch::bucket_of(u64::MAX), NUM_BUCKETS - 1);
        // Values below SUB_BUCKETS are their own bucket.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(QuantileSketch::bucket_of(v), v as usize);
        }
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for index in SUB_BUCKETS..NUM_BUCKETS {
            let floor = QuantileSketch::bucket_floor(index) as f64;
            let width = QuantileSketch::bucket_width(index) as f64;
            assert!(
                width / floor <= QuantileSketch::RELATIVE_ERROR + 1e-15,
                "bucket {index}: width {width} vs floor {floor}"
            );
        }
    }

    #[test]
    fn record_and_stats() {
        let mut s = QuantileSketch::new();
        for v in [0, 1, 1, 5, 1000, 63, 64, 65] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum(), 1199);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 1000);
        assert!((s.mean() - 1199.0 / 8.0).abs() < 1e-12);
        // Small values are exact.
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(1000));
    }

    #[test]
    fn empty_sketch_is_safe() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.fraction_at_or_below(10), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_match_exact_within_bound() {
        // A heavy-tailed-ish deterministic sample crossing many buckets.
        let values: Vec<u64> = (0..5000u64).map(|i| (i * i * 37) % 1_000_000).collect();
        let mut sketch = QuantileSketch::new();
        for &v in &values {
            sketch.record(v);
        }
        let exact = Ecdf::from_values(&values.iter().map(|&v| v as f64).collect::<Vec<_>>());
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let approx = sketch.quantile(q).unwrap() as f64;
            let truth = exact.quantile(q).unwrap();
            assert!(
                (approx - truth).abs() <= truth * QuantileSketch::RELATIVE_ERROR + 1e-9,
                "q={q}: sketch {approx} vs exact {truth}"
            );
        }
    }

    #[test]
    fn fractions_match_exact_at_a_nudged_point() {
        let values: Vec<u64> = (0..2000u64).map(|i| (i * 7919) % 100_000).collect();
        let mut sketch = QuantileSketch::new();
        for &v in &values {
            sketch.record(v);
        }
        let exact = Ecdf::from_values(&values.iter().map(|&v| v as f64).collect::<Vec<_>>());
        for x in [0u64, 63, 64, 100, 1000, 12345, 99_999, 200_000] {
            let reported = sketch.fraction_at_or_below(x);
            // The report equals the exact fraction at the end of x's bucket.
            let index = QuantileSketch::bucket_of(x);
            let nudged =
                QuantileSketch::bucket_floor(index) + QuantileSketch::bucket_width(index) - 1;
            assert!(nudged as f64 <= x as f64 * (1.0 + QuantileSketch::RELATIVE_ERROR) + 1.0);
            let truth = exact.fraction_at_or_below(nudged as f64);
            assert!(
                (reported - truth).abs() < 1e-12,
                "x={x}: sketch {reported} vs exact-at-{nudged} {truth}"
            );
        }
    }

    #[test]
    fn merge_matches_single_fold() {
        let shard = |values: &[u64]| {
            let mut s = QuantileSketch::new();
            for &v in values {
                s.record(v);
            }
            s
        };
        let a = shard(&[0, 3, 900, u64::MAX]);
        let b = shard(&[1, 3, 3, 17]);
        let c = shard(&[256, 255, 254]);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right_inner = b.clone();
        right_inner.merge(&c);
        let mut right = a.clone();
        right.merge(&right_inner);
        assert_eq!(left, right, "merge must be associative");

        let mut reversed = c.clone();
        reversed.merge(&b);
        reversed.merge(&a);
        assert_eq!(left, reversed, "merge must be commutative");

        let whole = shard(&[0, 3, 900, u64::MAX, 1, 3, 3, 17, 256, 255, 254]);
        assert_eq!(left, whole);
        // The empty sketch is the merge identity.
        let mut empty = QuantileSketch::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
    }

    #[test]
    fn series_is_monotone_and_matches_fractions() {
        let mut sketch = QuantileSketch::new();
        for v in 1..=100u64 {
            sketch.record(v);
        }
        let series = sketch.series(0.0, 120.0, 13, None);
        assert_eq!(series.len(), 13);
        let mut prev = -1.0;
        for &(x, y) in &series {
            assert!(y >= prev);
            assert!((0.0..=1.0).contains(&y));
            assert!((0.0..=120.0).contains(&x));
            prev = y;
        }
        assert_eq!(series.last().unwrap().1, 1.0);
        // External denominator caps the curve below 1.
        let partial = sketch.series(0.0, 120.0, 4, Some(1000));
        assert!((partial.last().unwrap().1 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let mut s = QuantileSketch::new();
        for v in [0, 1, 63, 64, 1000, 123_456_789, u64::MAX] {
            s.record(v);
        }
        let json = s.to_json().to_pretty_string();
        let back = QuantileSketch::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, s);
        // Empty sketches roundtrip too (min sentinel included).
        let empty = QuantileSketch::new();
        let back = QuantileSketch::from_json(
            &JsonValue::parse(&empty.to_json().to_compact_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn flowtime_sketches_split_paper_windows() {
        let mut set = FlowtimeSketches::new();
        for flowtime in [0, 150, 299, 300, 2000, 3999, 4000, 50_000] {
            set.fold(flowtime);
        }
        assert_eq!(set.all.count(), 8);
        assert_eq!(set.small.count(), 3);
        assert_eq!(set.big.count(), 3);
        // ≥ 4000 lands only in `all`.
        assert_eq!(set.all.max(), 50_000);
        assert_eq!(set.big.max(), 3999);

        let mut other = FlowtimeSketches::new();
        other.fold(100);
        let mut merged = set.clone();
        merged.merge(&other);
        assert_eq!(merged.all.count(), 9);
        assert_eq!(merged.small.count(), 4);

        let json = set.to_json().to_compact_string();
        let back = FlowtimeSketches::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, set);
        assert!(!set.is_empty());
        assert!(FlowtimeSketches::new().is_empty());
    }
}
