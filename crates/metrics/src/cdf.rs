//! Empirical cumulative distribution functions of job flowtime.

use mapreduce_sim::SimOutcome;

/// An empirical CDF over job flowtimes.
///
/// ```
/// use mapreduce_metrics::Ecdf;
/// let cdf = Ecdf::from_values(&[10.0, 20.0, 30.0, 40.0]);
/// assert_eq!(cdf.fraction_at_or_below(25.0), 0.5);
/// assert_eq!(cdf.quantile(1.0), Some(40.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the CDF from raw values (order does not matter).
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        // `total_cmp` per the repo-wide NaN-determinism rule: a total order
        // never depends on how `partial_cmp` ties are broken.
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Builds the CDF of the flowtimes of all jobs of a simulation outcome.
    pub fn from_outcome(outcome: &SimOutcome) -> Self {
        let values: Vec<f64> = outcome
            .records()
            .iter()
            .map(|r| r.flowtime() as f64)
            .collect();
        Self::from_values(&values)
    }

    /// Builds the CDF of the flowtimes restricted to `[lo, hi)` — the form
    /// used by Figs. 4 and 5 of the paper. Note that (as in the figures) the
    /// cumulative fraction is still taken over *all* jobs, so the curve does
    /// not necessarily reach 1 within the window.
    pub fn from_outcome_window(outcome: &SimOutcome, lo: f64, hi: f64) -> (Self, usize) {
        // Single pass: only the windowed values are collected and sorted,
        // instead of materialising (and sorting) the full CDF first.
        let total = outcome.records().len();
        let mut windowed: Vec<f64> = outcome
            .records()
            .iter()
            .map(|r| r.flowtime() as f64)
            .filter(|&v| v >= lo && v < hi)
            .collect();
        windowed.sort_by(f64::total_cmp);
        (Ecdf { sorted: windowed }, total)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples ≤ `x`, in `[0, 1]`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), or `None` for an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Evaluates the CDF at evenly spaced points in `[lo, hi]`, returning
    /// `(x, fraction ≤ x)` pairs — the series plotted in Figs. 4 and 5.
    /// `denominator` overrides the sample count used for the fraction (pass
    /// the total number of jobs to mimic the paper's figures); pass `None` to
    /// normalise by this CDF's own sample count.
    pub fn series(
        &self,
        lo: f64,
        hi: f64,
        points: usize,
        denominator: Option<usize>,
    ) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two points for a series");
        assert!(hi > lo, "hi must exceed lo");
        let denom = denominator.unwrap_or(self.sorted.len()).max(1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                let count = self.sorted.partition_point(|&v| v <= x);
                (x, count as f64 / denom)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_quantile() {
        let cdf = Ecdf::from_values(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(3.0), 0.6);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
        assert_eq!(cdf.quantile(0.5), Some(3.0));
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Ecdf::from_values(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(10.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let cdf = Ecdf::from_values(&[1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn series_is_monotone_and_bounded() {
        let cdf = Ecdf::from_values(&(1..=100).map(|i| i as f64).collect::<Vec<_>>());
        let series = cdf.series(0.0, 120.0, 13, None);
        assert_eq!(series.len(), 13);
        let mut prev = -1.0;
        for (x, y) in &series {
            assert!(*y >= prev);
            assert!((0.0..=1.0).contains(y));
            assert!((0.0..=120.0).contains(x));
            prev = *y;
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn series_with_external_denominator() {
        let cdf = Ecdf::from_values(&[10.0, 20.0]);
        let series = cdf.series(0.0, 30.0, 4, Some(10));
        // Only 2 of the notional 10 jobs are in the window → tops out at 0.2.
        assert!((series.last().unwrap().1 - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn series_needs_two_points() {
        Ecdf::from_values(&[1.0]).series(0.0, 1.0, 1, None);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn series_needs_valid_range() {
        Ecdf::from_values(&[1.0]).series(1.0, 1.0, 3, None);
    }
}
