//! Registry-folding [`SimObserver`]: turns lifecycle events into counters
//! and log2 histograms.
//!
//! [`SimTelemetry`] is the standard consumer of the engine's telemetry seam:
//! attach it via [`mapreduce_sim::Simulation::run_with_observer`] and every
//! event folds into a [`MetricsRegistry`] at counter cost. All folded
//! quantities are simulation facts (slots, counts), so two runs of the same
//! configuration produce byte-identical registries — with the single
//! documented exception of the `decision_cost_ns` histogram, which is fed by
//! [`DecisionInstant::wall_ns`] and therefore only non-zero (and only
//! host-dependent) when `SimConfig::with_profile_stages` is on.
//!
//! Counter and histogram names are published as constants in [`names`] so
//! exporters ([`crate::TraceRecorder`]) and tests compare against the same
//! strings the observer writes.

use crate::registry::MetricsRegistry;
use mapreduce_sim::telemetry::{
    CopyCancelled, CopyFinished, CopyLaunched, DecisionInstant, SimObserver,
};
use mapreduce_sim::{CancelReason, JobRecord, RunTelemetry, Slot};
use mapreduce_workload::{JobId, TaskId};
use std::collections::HashSet;

/// Names of the counters and histograms [`SimTelemetry`] folds, so every
/// consumer (trace export, server stats, tests) speaks the same vocabulary.
pub mod names {
    /// Counter: jobs admitted into the run.
    pub const JOBS_ARRIVED: &str = "jobs_arrived";
    /// Counter: jobs completed.
    pub const JOBS_COMPLETED: &str = "jobs_completed";
    /// Counter: copies launched (originals + clones + backups).
    pub const COPIES_LAUNCHED: &str = "copies_launched";
    /// Counter: the subset of launches that were clones/backups.
    pub const CLONES_LAUNCHED: &str = "clones_launched";
    /// Counter: copies that finished and won their task.
    pub const COPIES_FINISHED: &str = "copies_finished";
    /// Counter: copies cancelled because a sibling finished first.
    pub const CANCELLED_SIBLING: &str = "copies_cancelled_sibling";
    /// Counter: copies cancelled by a scheduler action.
    pub const CANCELLED_SCHEDULER: &str = "copies_cancelled_scheduler";
    /// Counter: copies killed by a machine crash.
    pub const CANCELLED_FAULT: &str = "copies_cancelled_fault";
    /// Counter: tasks whose last copy died and re-entered the unscheduled
    /// pool.
    pub const TASKS_UNLAUNCHED: &str = "tasks_unlaunched";
    /// Counter: machine down events (crashes and brown-out onsets).
    pub const MACHINES_DOWN: &str = "machines_down";
    /// Counter: machine up events (recoveries and brown-out ends).
    pub const MACHINES_UP: &str = "machines_up";
    /// Counter: decision instants that reached the scheduler.
    pub const DECISION_INSTANTS: &str = "decision_instants";
    /// Counter: `Action::Launch` actions returned by the scheduler.
    pub const LAUNCH_ACTIONS: &str = "launch_actions";
    /// Counter: `Action::CancelCopies` actions returned by the scheduler.
    pub const CANCEL_ACTIONS: &str = "cancel_actions";
    /// Counter: copies requested across all launch actions (pre-clipping).
    pub const COPIES_REQUESTED: &str = "copies_requested";

    /// Histogram: copies ever launched for each completed task.
    pub const COPIES_PER_TASK: &str = "copies_per_task";
    /// Histogram: lifetime (slots) of winning copies.
    pub const COPY_LIFETIME: &str = "copy_lifetime";
    /// Histogram: lifetime (slots) of clone/backup copies at finish or
    /// cancellation.
    pub const CLONE_LIFETIME: &str = "clone_lifetime";
    /// Histogram: machine time (slots) reclaimed per cancelled copy.
    pub const CANCEL_LATENCY: &str = "cancel_latency";
    /// Histogram: job flowtimes (slots).
    pub const JOB_FLOWTIME: &str = "job_flowtime";
    /// Histogram: ranked-candidate prefix consumed per decision instant.
    pub const RANKED_PREFIX: &str = "ranked_prefix";
    /// Histogram: wall-clock nanoseconds per decision instant (all-zero
    /// unless `SimConfig::with_profile_stages` is on).
    pub const DECISION_COST_NS: &str = "decision_cost_ns";

    /// Counters [`super::fold_run_telemetry`] adds from a run's
    /// [`mapreduce_sim::RunTelemetry`], prefixed to keep engine-side numbers
    /// apart from observer-side ones.
    pub const ENGINE_DECISION_INSTANTS: &str = "engine_decision_instants";
    /// Engine-side stage timing counter (see [`super::fold_run_telemetry`]).
    pub const STAGE_SOURCE_NS: &str = "stage_source_ns";
    /// Engine-side stage timing counter (see [`super::fold_run_telemetry`]).
    pub const STAGE_EVENTS_NS: &str = "stage_events_ns";
    /// Engine-side stage timing counter (see [`super::fold_run_telemetry`]).
    pub const STAGE_DECISION_NS: &str = "stage_decision_ns";
    /// Engine-side stage timing counter (see [`super::fold_run_telemetry`]).
    pub const STAGE_METRICS_NS: &str = "stage_metrics_ns";
    /// Histogram fed one sample per folded run: the run's largest
    /// ranked-candidate prefix.
    pub const RANKED_PREFIX_LEN_MAX: &str = "ranked_prefix_len_max";
}

/// Folds a run's engine-side [`RunTelemetry`] into a registry: stage
/// nanoseconds and decision counts add as counters (shard-mergeable across
/// cells of a sweep), the per-run ranked-prefix maximum lands as one
/// histogram sample.
pub fn fold_run_telemetry(registry: &mut MetricsRegistry, telemetry: &RunTelemetry) {
    registry.inc(names::ENGINE_DECISION_INSTANTS, telemetry.decision_instants);
    registry.inc(names::STAGE_SOURCE_NS, telemetry.stage_source_ns);
    registry.inc(names::STAGE_EVENTS_NS, telemetry.stage_events_ns);
    registry.inc(names::STAGE_DECISION_NS, telemetry.stage_decision_ns);
    registry.inc(names::STAGE_METRICS_NS, telemetry.stage_metrics_ns);
    registry.record(
        names::RANKED_PREFIX_LEN_MAX,
        telemetry.ranked_prefix_len_max as u64,
    );
}

/// The registry-folding observer.
///
/// Tracks which active arena slots hold clones (slot ids are reused, so the
/// set stays bounded by the alive copy window) to attribute lifetimes to the
/// `clone_lifetime` histogram without the engine having to replay the launch
/// kind at finish time.
#[derive(Debug, Default, Clone)]
pub struct SimTelemetry {
    registry: MetricsRegistry,
    /// Arena slots currently occupied by a clone/backup copy.
    clones: HashSet<u64>,
}

impl SimTelemetry {
    /// A fresh observer with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The folded registry so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the observer, yielding the folded registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    /// A copy left its machine: settle its clone bookkeeping and return
    /// whether it was a clone.
    fn settle_clone(&mut self, copy: mapreduce_sim::CopyId, lifetime: u64) -> bool {
        if self.clones.remove(&copy.0) {
            self.registry.record(names::CLONE_LIFETIME, lifetime);
            true
        } else {
            false
        }
    }
}

impl SimObserver for SimTelemetry {
    fn on_job_arrived(&mut self, _at: Slot, _job: JobId) {
        self.registry.inc(names::JOBS_ARRIVED, 1);
    }

    fn on_job_completed(&mut self, record: &JobRecord) {
        self.registry.inc(names::JOBS_COMPLETED, 1);
        self.registry.record(names::JOB_FLOWTIME, record.flowtime());
    }

    fn on_copy_launched(&mut self, event: CopyLaunched) {
        self.registry.inc(names::COPIES_LAUNCHED, 1);
        if event.clone {
            self.registry.inc(names::CLONES_LAUNCHED, 1);
            self.clones.insert(event.copy.0);
        }
    }

    fn on_copy_finished(&mut self, event: CopyFinished) {
        self.registry.inc(names::COPIES_FINISHED, 1);
        let lifetime = event.at.saturating_sub(event.launched_at);
        self.registry.record(names::COPY_LIFETIME, lifetime);
        self.registry
            .record(names::COPIES_PER_TASK, event.copies_of_task as u64);
        self.settle_clone(event.copy, lifetime);
    }

    fn on_copy_cancelled(&mut self, event: CopyCancelled) {
        let counter = match event.reason {
            CancelReason::SiblingFinished => names::CANCELLED_SIBLING,
            CancelReason::Scheduler => names::CANCELLED_SCHEDULER,
            CancelReason::Fault => names::CANCELLED_FAULT,
        };
        self.registry.inc(counter, 1);
        let lifetime = event.at.saturating_sub(event.launched_at);
        self.registry.record(names::CANCEL_LATENCY, lifetime);
        self.settle_clone(event.copy, lifetime);
    }

    fn on_task_unlaunched(&mut self, _at: Slot, _task: TaskId) {
        self.registry.inc(names::TASKS_UNLAUNCHED, 1);
    }

    fn on_machine_down(&mut self, _at: Slot, _machine: u32, _crash: bool) {
        self.registry.inc(names::MACHINES_DOWN, 1);
    }

    fn on_machine_up(&mut self, _at: Slot, _machine: u32, _crash: bool) {
        self.registry.inc(names::MACHINES_UP, 1);
    }

    fn on_decision_instant(&mut self, event: DecisionInstant) {
        self.registry.inc(names::DECISION_INSTANTS, 1);
        self.registry
            .inc(names::LAUNCH_ACTIONS, event.launch_actions as u64);
        self.registry
            .inc(names::CANCEL_ACTIONS, event.cancel_actions as u64);
        self.registry
            .inc(names::COPIES_REQUESTED, event.copies_requested as u64);
        self.registry
            .record(names::RANKED_PREFIX, event.ranked_prefix as u64);
        self.registry.record(names::DECISION_COST_NS, event.wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::schedulers::MaxCloneScheduler;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::WorkloadBuilder;

    #[test]
    fn observed_run_folds_consistent_counters() {
        let trace = WorkloadBuilder::new().num_jobs(40).build(11);
        let config = SimConfig::new(16).with_seed(11);
        let mut scheduler = MaxCloneScheduler::new(3);
        let mut telemetry = SimTelemetry::new();
        let outcome = Simulation::new(config.clone(), &trace)
            .run_with_observer(&mut scheduler, &mut telemetry)
            .unwrap();
        let registry = telemetry.registry();

        assert_eq!(
            registry.counter(names::JOBS_ARRIVED),
            outcome.records().len() as u64
        );
        assert_eq!(
            registry.counter(names::JOBS_COMPLETED),
            outcome.records().len() as u64
        );
        assert_eq!(
            registry.counter(names::COPIES_LAUNCHED),
            outcome.total_copies as u64
        );
        // Every launched copy ends exactly one way.
        assert_eq!(
            registry.counter(names::COPIES_FINISHED)
                + registry.counter(names::CANCELLED_SIBLING)
                + registry.counter(names::CANCELLED_SCHEDULER)
                + registry.counter(names::CANCELLED_FAULT),
            outcome.total_copies as u64
        );
        // The final event batch never reaches the scheduler.
        assert_eq!(
            registry.counter(names::DECISION_INSTANTS),
            outcome.telemetry.decision_instants - 1
        );
        // Cloning scheduler on a wide cluster must actually clone.
        assert!(registry.counter(names::CLONES_LAUNCHED) > 0);
        assert_eq!(
            registry.histogram(names::CLONE_LIFETIME).unwrap().count(),
            registry.counter(names::CLONES_LAUNCHED)
        );
        // Flowtime histogram agrees with the outcome's exact mean.
        let h = registry.histogram(names::JOB_FLOWTIME).unwrap();
        assert_eq!(h.count(), outcome.records().len() as u64);
        assert!((h.mean() - outcome.mean_flowtime()).abs() < 1e-9);
        // Profiling was off: every decision cost sample is 0.
        let cost = registry.histogram(names::DECISION_COST_NS).unwrap();
        assert_eq!(cost.bucket(0), cost.count());

        // Attaching the observer must not perturb the trajectory.
        let plain = Simulation::new(config, &trace)
            .run(&mut MaxCloneScheduler::new(3))
            .unwrap();
        assert_eq!(plain, outcome);
    }

    #[test]
    fn fold_run_telemetry_accumulates_across_cells() {
        let mut registry = MetricsRegistry::new();
        let a = RunTelemetry {
            decision_instants: 10,
            ranked_prefix_len_max: 4,
            stage_source_ns: 100,
            stage_events_ns: 200,
            stage_decision_ns: 300,
            stage_metrics_ns: 400,
        };
        let b = RunTelemetry {
            decision_instants: 5,
            ranked_prefix_len_max: 9,
            ..RunTelemetry::default()
        };
        fold_run_telemetry(&mut registry, &a);
        fold_run_telemetry(&mut registry, &b);
        assert_eq!(registry.counter(names::ENGINE_DECISION_INSTANTS), 15);
        assert_eq!(registry.counter(names::STAGE_DECISION_NS), 300);
        let h = registry.histogram(names::RANKED_PREFIX_LEN_MAX).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 9);
    }
}
