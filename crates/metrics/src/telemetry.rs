//! Registry-folding [`SimObserver`]: turns lifecycle events into counters
//! and log2 histograms.
//!
//! [`SimTelemetry`] is the standard consumer of the engine's telemetry seam:
//! attach it via [`mapreduce_sim::Simulation::run_with_observer`] and every
//! event folds into a [`MetricsRegistry`] at counter cost. All folded
//! quantities are simulation facts (slots, counts), so two runs of the same
//! configuration produce byte-identical registries — with the single
//! documented exception of the `decision_cost_ns` histogram, which is fed by
//! [`DecisionInstant::wall_ns`] and therefore only non-zero (and only
//! host-dependent) when `SimConfig::with_profile_stages` is on.
//!
//! Counter and histogram names are published as constants in [`names`] so
//! exporters ([`crate::TraceRecorder`]) and tests compare against the same
//! strings the observer writes.

use crate::registry::{Log2Histogram, MetricsRegistry};
use crate::sketch::FlowtimeSketches;
use mapreduce_sim::telemetry::{
    CopyCancelled, CopyFinished, CopyLaunched, DecisionInstant, SimObserver,
};
use mapreduce_sim::{CancelReason, JobRecord, RunTelemetry, Slot};
use mapreduce_workload::{JobId, TaskId};

/// Names of the counters and histograms [`SimTelemetry`] folds, so every
/// consumer (trace export, server stats, tests) speaks the same vocabulary.
pub mod names {
    /// Counter: jobs admitted into the run.
    pub const JOBS_ARRIVED: &str = "jobs_arrived";
    /// Counter: jobs completed.
    pub const JOBS_COMPLETED: &str = "jobs_completed";
    /// Counter: copies launched (originals + clones + backups).
    pub const COPIES_LAUNCHED: &str = "copies_launched";
    /// Counter: the subset of launches that were clones/backups.
    pub const CLONES_LAUNCHED: &str = "clones_launched";
    /// Counter: copies that finished and won their task.
    pub const COPIES_FINISHED: &str = "copies_finished";
    /// Counter: copies cancelled because a sibling finished first.
    pub const CANCELLED_SIBLING: &str = "copies_cancelled_sibling";
    /// Counter: copies cancelled by a scheduler action.
    pub const CANCELLED_SCHEDULER: &str = "copies_cancelled_scheduler";
    /// Counter: copies killed by a machine crash.
    pub const CANCELLED_FAULT: &str = "copies_cancelled_fault";
    /// Counter: tasks whose last copy died and re-entered the unscheduled
    /// pool.
    pub const TASKS_UNLAUNCHED: &str = "tasks_unlaunched";
    /// Counter: machine down events (crashes and brown-out onsets).
    pub const MACHINES_DOWN: &str = "machines_down";
    /// Counter: machine up events (recoveries and brown-out ends).
    pub const MACHINES_UP: &str = "machines_up";
    /// Counter: decision instants that reached the scheduler.
    pub const DECISION_INSTANTS: &str = "decision_instants";
    /// Counter: `Action::Launch` actions returned by the scheduler.
    pub const LAUNCH_ACTIONS: &str = "launch_actions";
    /// Counter: `Action::CancelCopies` actions returned by the scheduler.
    pub const CANCEL_ACTIONS: &str = "cancel_actions";
    /// Counter: copies requested across all launch actions (pre-clipping).
    pub const COPIES_REQUESTED: &str = "copies_requested";

    /// Histogram: copies ever launched for each completed task.
    pub const COPIES_PER_TASK: &str = "copies_per_task";
    /// Histogram: lifetime (slots) of winning copies.
    pub const COPY_LIFETIME: &str = "copy_lifetime";
    /// Histogram: lifetime (slots) of clone/backup copies at finish or
    /// cancellation.
    pub const CLONE_LIFETIME: &str = "clone_lifetime";
    /// Histogram: machine time (slots) reclaimed per cancelled copy.
    pub const CANCEL_LATENCY: &str = "cancel_latency";
    /// Histogram: job flowtimes (slots).
    pub const JOB_FLOWTIME: &str = "job_flowtime";
    /// Histogram: ranked-candidate prefix consumed per decision instant.
    pub const RANKED_PREFIX: &str = "ranked_prefix";
    /// Histogram: wall-clock nanoseconds per decision instant (all-zero
    /// unless `SimConfig::with_profile_stages` is on).
    pub const DECISION_COST_NS: &str = "decision_cost_ns";

    /// Counters [`super::fold_run_telemetry`] adds from a run's
    /// [`mapreduce_sim::RunTelemetry`], prefixed to keep engine-side numbers
    /// apart from observer-side ones.
    pub const ENGINE_DECISION_INSTANTS: &str = "engine_decision_instants";
    /// Engine-side stage timing counter (see [`super::fold_run_telemetry`]).
    pub const STAGE_SOURCE_NS: &str = "stage_source_ns";
    /// Engine-side stage timing counter (see [`super::fold_run_telemetry`]).
    pub const STAGE_EVENTS_NS: &str = "stage_events_ns";
    /// Engine-side stage timing counter (see [`super::fold_run_telemetry`]).
    pub const STAGE_DECISION_NS: &str = "stage_decision_ns";
    /// Engine-side stage timing counter (see [`super::fold_run_telemetry`]).
    pub const STAGE_METRICS_NS: &str = "stage_metrics_ns";
    /// Histogram fed one sample per folded run: the run's largest
    /// ranked-candidate prefix.
    pub const RANKED_PREFIX_LEN_MAX: &str = "ranked_prefix_len_max";
}

/// Folds a run's engine-side [`RunTelemetry`] into a registry: stage
/// nanoseconds and decision counts add as counters (shard-mergeable across
/// cells of a sweep), the per-run ranked-prefix maximum lands as one
/// histogram sample.
pub fn fold_run_telemetry(registry: &mut MetricsRegistry, telemetry: &RunTelemetry) {
    registry.inc(names::ENGINE_DECISION_INSTANTS, telemetry.decision_instants);
    registry.inc(names::STAGE_SOURCE_NS, telemetry.stage_source_ns);
    registry.inc(names::STAGE_EVENTS_NS, telemetry.stage_events_ns);
    registry.inc(names::STAGE_DECISION_NS, telemetry.stage_decision_ns);
    registry.inc(names::STAGE_METRICS_NS, telemetry.stage_metrics_ns);
    registry.record(
        names::RANKED_PREFIX_LEN_MAX,
        telemetry.ranked_prefix_len_max as u64,
    );
}

/// Per-event-kind lifecycle counters shared by the hot observers
/// ([`SimTelemetry`], [`crate::TraceRecorder`]): one plain `u64` per event
/// kind, so the per-event cost is a field increment — no name lookup of any
/// sort. [`LifecycleCounts::fold_into`] materializes them under the
/// canonical [`names`] when a [`MetricsRegistry`] is actually wanted
/// (end of run, export, validation), producing exactly the registry a
/// per-event `inc` would have built.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LifecycleCounts {
    /// Jobs admitted into the run.
    pub jobs_arrived: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Copies launched (originals + clones + backups).
    pub copies_launched: u64,
    /// Copies that finished and won their task.
    pub copies_finished: u64,
    /// Copies cancelled because a sibling finished first.
    pub cancelled_sibling: u64,
    /// Copies cancelled by a scheduler action.
    pub cancelled_scheduler: u64,
    /// Copies killed by a machine crash.
    pub cancelled_fault: u64,
    /// Tasks whose last copy died and re-entered the unscheduled pool.
    pub tasks_unlaunched: u64,
    /// Machine down events.
    pub machines_down: u64,
    /// Machine up events.
    pub machines_up: u64,
    /// Decision instants that reached the scheduler.
    pub decision_instants: u64,
}

impl LifecycleCounts {
    /// Adds every non-zero count to `registry` under its canonical
    /// [`names`] entry (zero counts create nothing, matching the behaviour
    /// of per-event [`MetricsRegistry::inc`] folding).
    pub fn fold_into(&self, registry: &mut MetricsRegistry) {
        registry.inc(names::JOBS_ARRIVED, self.jobs_arrived);
        registry.inc(names::JOBS_COMPLETED, self.jobs_completed);
        registry.inc(names::COPIES_LAUNCHED, self.copies_launched);
        registry.inc(names::COPIES_FINISHED, self.copies_finished);
        registry.inc(names::CANCELLED_SIBLING, self.cancelled_sibling);
        registry.inc(names::CANCELLED_SCHEDULER, self.cancelled_scheduler);
        registry.inc(names::CANCELLED_FAULT, self.cancelled_fault);
        registry.inc(names::TASKS_UNLAUNCHED, self.tasks_unlaunched);
        registry.inc(names::MACHINES_DOWN, self.machines_down);
        registry.inc(names::MACHINES_UP, self.machines_up);
        registry.inc(names::DECISION_INSTANTS, self.decision_instants);
    }
}

/// The registry-folding observer.
///
/// Tracks which active arena slots hold clones (slot ids are reused, so the
/// set stays bounded by the alive copy window) to attribute lifetimes to the
/// `clone_lifetime` histogram without the engine having to replay the launch
/// kind at finish time.
///
/// # Hot-path discipline
///
/// Every per-event quantity accumulates in a plain struct field
/// ([`LifecycleCounts`], bare `u64`s, fixed-array [`Log2Histogram`]s, the
/// [`FlowtimeSketches`]) — the observer never touches a name-keyed map
/// while the engine runs. The [`MetricsRegistry`] is materialized on
/// demand by [`SimTelemetry::registry`] under the canonical [`names`],
/// byte-identical to what per-event `inc`/`record` calls would have
/// produced. This is what keeps the full observer stack within the CI
/// bench-guard's observed-vs-bare overhead ceiling at 100k-job scale.
#[derive(Debug, Default, Clone)]
pub struct SimTelemetry {
    counts: LifecycleCounts,
    clones_launched: u64,
    launch_actions: u64,
    cancel_actions: u64,
    copies_requested: u64,
    copies_per_task: Log2Histogram,
    copy_lifetime: Log2Histogram,
    clone_lifetime: Log2Histogram,
    cancel_latency: Log2Histogram,
    job_flowtime: Log2Histogram,
    ranked_prefix: Log2Histogram,
    decision_cost_ns: Log2Histogram,
    /// Streaming flowtime quantile sketches (all jobs + the paper's
    /// small/big figure windows), folded one `JobCompleted` at a time.
    sketches: FlowtimeSketches,
    /// Bitset over arena slot ids: bit set while the slot holds a
    /// clone/backup copy. Slot ids are reused, so the vector stays bounded
    /// by the alive copy window; word-indexed set/test-and-clear keeps the
    /// per-copy-event cost hash-free.
    clones: Vec<u64>,
}

impl SimTelemetry {
    /// A fresh observer with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Materializes the registry folded so far (counters and histograms
    /// under the canonical [`names`]). Built on demand from the plain-field
    /// accumulators — call it at end of run, not per event.
    pub fn registry(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.counts.fold_into(&mut registry);
        registry.inc(names::CLONES_LAUNCHED, self.clones_launched);
        registry.inc(names::LAUNCH_ACTIONS, self.launch_actions);
        registry.inc(names::CANCEL_ACTIONS, self.cancel_actions);
        registry.inc(names::COPIES_REQUESTED, self.copies_requested);
        registry.merge_histogram(names::COPIES_PER_TASK, &self.copies_per_task);
        registry.merge_histogram(names::COPY_LIFETIME, &self.copy_lifetime);
        registry.merge_histogram(names::CLONE_LIFETIME, &self.clone_lifetime);
        registry.merge_histogram(names::CANCEL_LATENCY, &self.cancel_latency);
        registry.merge_histogram(names::JOB_FLOWTIME, &self.job_flowtime);
        registry.merge_histogram(names::RANKED_PREFIX, &self.ranked_prefix);
        registry.merge_histogram(names::DECISION_COST_NS, &self.decision_cost_ns);
        registry
    }

    /// The flowtime quantile sketches folded so far: Fig. 4/5-shaped CDF
    /// series and percentiles in O(1) memory, no per-job records held.
    pub fn sketches(&self) -> &FlowtimeSketches {
        &self.sketches
    }

    /// Consumes the observer, yielding the folded registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry()
    }

    /// Consumes the observer, yielding the registry and the flowtime
    /// sketches.
    pub fn into_parts(self) -> (MetricsRegistry, FlowtimeSketches) {
        (self.registry(), self.sketches)
    }

    /// Marks an arena slot as holding a clone/backup copy.
    fn mark_clone(&mut self, copy: mapreduce_sim::CopyId) {
        let (word, bit) = (copy.0 as usize / 64, copy.0 % 64);
        if word >= self.clones.len() {
            self.clones.resize(word + 1, 0);
        }
        self.clones[word] |= 1 << bit;
    }

    /// A copy left its machine: settle its clone bookkeeping and return
    /// whether it was a clone.
    fn settle_clone(&mut self, copy: mapreduce_sim::CopyId, lifetime: u64) -> bool {
        let (word, bit) = (copy.0 as usize / 64, copy.0 % 64);
        match self.clones.get_mut(word) {
            Some(w) if *w & (1 << bit) != 0 => {
                *w &= !(1 << bit);
                self.clone_lifetime.record(lifetime);
                true
            }
            _ => false,
        }
    }
}

impl SimObserver for SimTelemetry {
    fn on_job_arrived(&mut self, _at: Slot, _job: JobId) {
        self.counts.jobs_arrived += 1;
    }

    fn on_job_completed(&mut self, record: &JobRecord) {
        self.counts.jobs_completed += 1;
        self.job_flowtime.record(record.flowtime());
        self.sketches.fold(record.flowtime());
    }

    fn on_copy_launched(&mut self, event: CopyLaunched) {
        self.counts.copies_launched += 1;
        if event.clone {
            self.clones_launched += 1;
            self.mark_clone(event.copy);
        }
    }

    fn on_copy_finished(&mut self, event: CopyFinished) {
        self.counts.copies_finished += 1;
        let lifetime = event.at.saturating_sub(event.launched_at);
        self.copy_lifetime.record(lifetime);
        self.copies_per_task.record(event.copies_of_task as u64);
        self.settle_clone(event.copy, lifetime);
    }

    fn on_copy_cancelled(&mut self, event: CopyCancelled) {
        match event.reason {
            CancelReason::SiblingFinished => self.counts.cancelled_sibling += 1,
            CancelReason::Scheduler => self.counts.cancelled_scheduler += 1,
            CancelReason::Fault => self.counts.cancelled_fault += 1,
        }
        let lifetime = event.at.saturating_sub(event.launched_at);
        self.cancel_latency.record(lifetime);
        self.settle_clone(event.copy, lifetime);
    }

    fn on_task_unlaunched(&mut self, _at: Slot, _task: TaskId) {
        self.counts.tasks_unlaunched += 1;
    }

    fn on_machine_down(&mut self, _at: Slot, _machine: u32, _crash: bool) {
        self.counts.machines_down += 1;
    }

    fn on_machine_up(&mut self, _at: Slot, _machine: u32, _crash: bool) {
        self.counts.machines_up += 1;
    }

    fn on_decision_instant(&mut self, event: DecisionInstant) {
        self.counts.decision_instants += 1;
        self.launch_actions += event.launch_actions as u64;
        self.cancel_actions += event.cancel_actions as u64;
        self.copies_requested += event.copies_requested as u64;
        self.ranked_prefix.record(event.ranked_prefix as u64);
        self.decision_cost_ns.record(event.wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::schedulers::MaxCloneScheduler;
    use mapreduce_sim::{SimConfig, Simulation};
    use mapreduce_workload::WorkloadBuilder;

    #[test]
    fn observed_run_folds_consistent_counters() {
        let trace = WorkloadBuilder::new().num_jobs(40).build(11);
        let config = SimConfig::new(16).with_seed(11);
        let mut scheduler = MaxCloneScheduler::new(3);
        let mut telemetry = SimTelemetry::new();
        let outcome = Simulation::new(config.clone(), &trace)
            .run_with_observer(&mut scheduler, &mut telemetry)
            .unwrap();
        let registry = telemetry.registry();

        assert_eq!(
            registry.counter(names::JOBS_ARRIVED),
            outcome.records().len() as u64
        );
        assert_eq!(
            registry.counter(names::JOBS_COMPLETED),
            outcome.records().len() as u64
        );
        assert_eq!(
            registry.counter(names::COPIES_LAUNCHED),
            outcome.total_copies as u64
        );
        // Every launched copy ends exactly one way.
        assert_eq!(
            registry.counter(names::COPIES_FINISHED)
                + registry.counter(names::CANCELLED_SIBLING)
                + registry.counter(names::CANCELLED_SCHEDULER)
                + registry.counter(names::CANCELLED_FAULT),
            outcome.total_copies as u64
        );
        // The final event batch never reaches the scheduler.
        assert_eq!(
            registry.counter(names::DECISION_INSTANTS),
            outcome.telemetry.decision_instants - 1
        );
        // Cloning scheduler on a wide cluster must actually clone.
        assert!(registry.counter(names::CLONES_LAUNCHED) > 0);
        assert_eq!(
            registry.histogram(names::CLONE_LIFETIME).unwrap().count(),
            registry.counter(names::CLONES_LAUNCHED)
        );
        // Flowtime histogram agrees with the outcome's exact mean.
        let h = registry.histogram(names::JOB_FLOWTIME).unwrap();
        assert_eq!(h.count(), outcome.records().len() as u64);
        assert!((h.mean() - outcome.mean_flowtime()).abs() < 1e-9);
        // Profiling was off: every decision cost sample is 0.
        let cost = registry.histogram(names::DECISION_COST_NS).unwrap();
        assert_eq!(cost.bucket(0), cost.count());
        // The flowtime sketches folded every completed job, with exact
        // extremes and the small/big windows partitioning below 4000.
        let sketches = telemetry.sketches();
        assert_eq!(sketches.all.count(), outcome.records().len() as u64);
        assert_eq!(
            sketches.all.max(),
            outcome
                .records()
                .iter()
                .map(|r| r.flowtime())
                .max()
                .unwrap()
        );
        assert!(sketches.small.count() + sketches.big.count() <= sketches.all.count());

        // Attaching the observer must not perturb the trajectory.
        let plain = Simulation::new(config, &trace)
            .run(&mut MaxCloneScheduler::new(3))
            .unwrap();
        assert_eq!(plain, outcome);
    }

    #[test]
    fn fold_run_telemetry_accumulates_across_cells() {
        let mut registry = MetricsRegistry::new();
        let a = RunTelemetry {
            decision_instants: 10,
            ranked_prefix_len_max: 4,
            stage_source_ns: 100,
            stage_events_ns: 200,
            stage_decision_ns: 300,
            stage_metrics_ns: 400,
        };
        let b = RunTelemetry {
            decision_instants: 5,
            ranked_prefix_len_max: 9,
            ..RunTelemetry::default()
        };
        fold_run_telemetry(&mut registry, &a);
        fold_run_telemetry(&mut registry, &b);
        assert_eq!(registry.counter(names::ENGINE_DECISION_INSTANTS), 15);
        assert_eq!(registry.counter(names::STAGE_DECISION_NS), 300);
        let h = registry.histogram(names::RANKED_PREFIX_LEN_MAX).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 9);
    }
}
