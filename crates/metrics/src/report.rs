//! Side-by-side comparison of schedulers, rendered as text tables.

use crate::summary::FlowtimeSummary;
use mapreduce_sim::SimOutcome;
use std::fmt;

/// A comparison of several schedulers on the same workload — the data behind
/// Fig. 6 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    summaries: Vec<FlowtimeSummary>,
}

impl ComparisonReport {
    /// Builds a report from one outcome per scheduler.
    pub fn from_outcomes<'a>(outcomes: impl IntoIterator<Item = &'a SimOutcome>) -> Self {
        ComparisonReport {
            summaries: outcomes
                .into_iter()
                .map(FlowtimeSummary::from_outcome)
                .collect(),
        }
    }

    /// Builds a report directly from pre-computed summaries (e.g. averaged
    /// over several seeds).
    pub fn from_summaries(summaries: Vec<FlowtimeSummary>) -> Self {
        ComparisonReport { summaries }
    }

    /// The per-scheduler summaries, in insertion order.
    pub fn summaries(&self) -> &[FlowtimeSummary] {
        &self.summaries
    }

    /// Summary of a scheduler by name, if present.
    pub fn summary(&self, scheduler: &str) -> Option<&FlowtimeSummary> {
        self.summaries.iter().find(|s| s.scheduler == scheduler)
    }

    /// Relative improvement of scheduler `a` over scheduler `b` on the
    /// *weighted* mean flowtime, as a fraction (0.25 = 25 % lower flowtime
    /// under `a`). `None` if either scheduler is missing or `b`'s value is 0.
    pub fn weighted_improvement(&self, a: &str, b: &str) -> Option<f64> {
        let sa = self.summary(a)?;
        let sb = self.summary(b)?;
        if sb.weighted_mean > 0.0 {
            Some((sb.weighted_mean - sa.weighted_mean) / sb.weighted_mean)
        } else {
            None
        }
    }

    /// Relative improvement of `a` over `b` on the unweighted mean flowtime.
    pub fn unweighted_improvement(&self, a: &str, b: &str) -> Option<f64> {
        let sa = self.summary(a)?;
        let sb = self.summary(b)?;
        if sb.mean > 0.0 {
            Some((sb.mean - sa.mean) / sb.mean)
        } else {
            None
        }
    }

    /// Renders the report as a fixed-width text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>10} {:>14} {:>10} {:>10} {:>12}\n",
            "scheduler", "mean", "weighted mean", "median", "p95", "copies/task"
        ));
        for s in &self.summaries {
            out.push_str(&format!(
                "{:<28} {:>10.1} {:>14.1} {:>10.1} {:>10.1} {:>12.2}\n",
                s.scheduler, s.mean, s.weighted_mean, s.median, s.p95, s.mean_copies_per_task
            ));
        }
        out
    }
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_sim::JobRecord;
    use mapreduce_workload::JobId;

    fn outcome(name: &str, flowtimes: &[u64]) -> SimOutcome {
        let records: Vec<JobRecord> = flowtimes
            .iter()
            .enumerate()
            .map(|(i, &f)| JobRecord {
                job: JobId::new(i as u64),
                weight: 1.0,
                arrival: 0,
                completion: f,
                num_map_tasks: 1,
                num_reduce_tasks: 0,
                copies_launched: 1,
                true_workload: 1.0,
            })
            .collect();
        SimOutcome::new(
            name.to_string(),
            4,
            records,
            100,
            10,
            flowtimes.len(),
            5,
            1,
            1,
        )
    }

    #[test]
    fn improvement_computation() {
        let a = outcome("fast", &[50, 150]);
        let b = outcome("slow", &[100, 300]);
        let report = ComparisonReport::from_outcomes([&a, &b]);
        // fast mean 100 vs slow mean 200 → 50 % improvement.
        assert!((report.unweighted_improvement("fast", "slow").unwrap() - 0.5).abs() < 1e-12);
        assert!((report.weighted_improvement("fast", "slow").unwrap() - 0.5).abs() < 1e-12);
        assert!(report.weighted_improvement("fast", "missing").is_none());
    }

    #[test]
    fn table_contains_every_scheduler() {
        let a = outcome("alpha", &[10]);
        let b = outcome("beta", &[20]);
        let report = ComparisonReport::from_outcomes([&a, &b]);
        let table = report.to_table();
        assert!(table.contains("alpha"));
        assert!(table.contains("beta"));
        assert!(table.contains("weighted mean"));
        assert_eq!(report.summaries().len(), 2);
        assert!(report.summary("alpha").is_some());
        assert!(report.summary("gamma").is_none());
    }

    #[test]
    fn from_summaries_roundtrip() {
        let s = FlowtimeSummary::from_outcome(&outcome("x", &[1, 2, 3]));
        let report = ComparisonReport::from_summaries(vec![s.clone()]);
        assert_eq!(report.summaries()[0], s);
        assert!(!format!("{report}").is_empty());
    }
}
