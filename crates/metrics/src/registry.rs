//! Deterministic counter/histogram registry.
//!
//! The registry is the folding target of the telemetry observers
//! ([`crate::SimTelemetry`]) and of the sweep server's per-request
//! accounting: named monotonic counters plus log2-bucketed histograms, all
//! plain integers so snapshots are bit-reproducible across hosts. Like
//! [`crate::StreamingFlowtime`], every piece is **shard-mergeable** —
//! [`MetricsRegistry::merge`] folds another snapshot in associatively and
//! commutatively, so the pipeline's metrics thread (or future event-loop
//! shards) can each fold their own registry and combine at the end.
//!
//! Storage is `BTreeMap`-backed, so iteration and JSON serialisation are in
//! deterministic name order.

use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use std::collections::BTreeMap;

/// Number of buckets of a [`Log2Histogram`]: one for 0, one per power of two
/// of the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)` — i.e. the bucket index of `v > 0` is the position of
/// its highest set bit plus one. Exact count, sum and max ride along, so
/// means stay precise even though individual samples are bucketed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of a sample.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The smallest value a bucket admits (0 for bucket 0, `2^(i-1)`
    /// otherwise).
    pub fn bucket_floor(index: usize) -> u64 {
        match index {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Count in one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Folds another histogram in. Associative and commutative: any merge
    /// tree over the same shards yields the identical histogram.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl ToJson for Log2Histogram {
    fn to_json(&self) -> JsonValue {
        // Sparse bucket encoding: `[floor, count]` pairs for the non-empty
        // buckets, ascending.
        let buckets: Vec<JsonValue> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| JsonValue::Array(vec![Self::bucket_floor(i).to_json(), c.to_json()]))
            .collect();
        JsonValue::object([
            ("count", self.count.to_json()),
            // u128 exceeds the JSON number model of the parser; a decimal
            // string keeps the exact value.
            ("sum", self.sum.to_string().to_json()),
            ("max", self.max.to_json()),
            ("buckets", JsonValue::Array(buckets)),
        ])
    }
}

impl FromJson for Log2Histogram {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let mut histogram = Log2Histogram {
            count: u64::from_json(value.field("count")?)?,
            sum: String::from_json(value.field("sum")?)?
                .parse::<u128>()
                .map_err(|_| JsonError::new("histogram sum is not a decimal u128".to_string()))?,
            max: u64::from_json(value.field("max")?)?,
            ..Log2Histogram::default()
        };
        let JsonValue::Array(pairs) = value.field("buckets")? else {
            return Err(JsonError::new(
                "histogram buckets must be an array".to_string(),
            ));
        };
        for pair in pairs {
            let JsonValue::Array(pair) = pair else {
                return Err(JsonError::new(
                    "histogram bucket must be a pair".to_string(),
                ));
            };
            if pair.len() != 2 {
                return Err(JsonError::new(
                    "histogram bucket must be a pair".to_string(),
                ));
            }
            let floor = u64::from_json(&pair[0])?;
            let count = u64::from_json(&pair[1])?;
            histogram.buckets[Log2Histogram::bucket_of(floor)] += count;
        }
        Ok(histogram)
    }
}

/// A named collection of counters and [`Log2Histogram`]s.
///
/// `BTreeMap`-backed: iteration, equality and JSON output are in name order,
/// so two registries that folded the same events are identical byte for
/// byte regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a named counter, creating it at 0 first if new.
    pub fn inc(&mut self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into a named histogram, creating it if new.
    pub fn record(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Log2Histogram::new();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// A named histogram, if any sample was ever recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// The counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Log2Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True iff nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds a whole histogram into the named slot (merging if it exists,
    /// inserting a clone if not). Empty histograms are skipped, preserving
    /// the invariant that a histogram exists iff a sample was recorded —
    /// this is how observers that accumulate in plain fields (the hot-path
    /// discipline of [`crate::SimTelemetry`]) materialize a registry without
    /// per-event name lookups.
    pub fn merge_histogram(&mut self, name: &str, histogram: &Log2Histogram) {
        if histogram.count() == 0 {
            return;
        }
        match self.histograms.get_mut(name) {
            Some(mine) => mine.merge(histogram),
            None => {
                self.histograms.insert(name.to_string(), histogram.clone());
            }
        }
    }

    /// Folds another registry in: counters add, histograms merge. Associative
    /// and commutative, so shards can be combined in any tree order —
    /// the same discipline as [`crate::StreamingFlowtime::merge`].
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &value) in &other.counters {
            self.inc(name, value);
        }
        for (name, histogram) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(histogram),
                None => {
                    self.histograms.insert(name.clone(), histogram.clone());
                }
            }
        }
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> JsonValue {
        let counters = JsonValue::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let histograms = JsonValue::Object(
            self.histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        JsonValue::object([("counters", counters), ("histograms", histograms)])
    }
}

impl FromJson for MetricsRegistry {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let mut registry = MetricsRegistry::new();
        let JsonValue::Object(counters) = value.field("counters")? else {
            return Err(JsonError::new("counters must be an object".to_string()));
        };
        for (name, v) in counters {
            registry.counters.insert(name.clone(), u64::from_json(v)?);
        }
        let JsonValue::Object(histograms) = value.field("histograms")? else {
            return Err(JsonError::new("histograms must be an object".to_string()));
        };
        for (name, v) in histograms {
            registry
                .histograms
                .insert(name.clone(), Log2Histogram::from_json(v)?);
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let floor = Log2Histogram::bucket_floor(i);
            assert_eq!(Log2Histogram::bucket_of(floor), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.4).abs() < 1e-12);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(3), 1); // 5 ∈ [4, 8)
        assert_eq!(h.bucket(10), 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        // Three shards with overlapping buckets.
        let shard = |values: &[u64]| {
            let mut h = Log2Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let a = shard(&[0, 3, 900, u64::MAX]);
        let b = shard(&[1, 3, 3, 17]);
        let c = shard(&[256, 255, 254]);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut right_inner = b.clone();
        right_inner.merge(&c);
        let mut right = a.clone();
        right.merge(&right_inner);
        assert_eq!(left, right, "merge must be associative");

        // c ⊕ b ⊕ a
        let mut reversed = c.clone();
        reversed.merge(&b);
        reversed.merge(&a);
        assert_eq!(left, reversed, "merge must be commutative");

        // And the merged histogram equals the single-shard fold.
        let whole = shard(&[0, 3, 900, u64::MAX, 1, 3, 3, 17, 256, 255, 254]);
        assert_eq!(left, whole);
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut r = MetricsRegistry::new();
        r.inc("copies_launched", 3);
        r.inc("copies_launched", 2);
        r.inc("noop", 0);
        r.record("decision_cost_ns", 100);
        r.record("decision_cost_ns", 900);
        assert_eq!(r.counter("copies_launched"), 5);
        assert_eq!(r.counter("never_touched"), 0);
        assert_eq!(r.counter("noop"), 0, "inc by 0 does not create a counter");
        assert_eq!(r.histogram("decision_cost_ns").unwrap().count(), 2);
        assert!(r.histogram("missing").is_none());
    }

    #[test]
    fn registry_merge_matches_single_fold() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 2);
        a.record("h", 7);
        let mut b = MetricsRegistry::new();
        b.inc("x", 3);
        b.inc("y", 1);
        b.record("h", 700);
        b.record("g", 1);

        let mut merged = a.clone();
        merged.merge(&b);
        let mut whole = MetricsRegistry::new();
        whole.inc("x", 5);
        whole.inc("y", 1);
        whole.record("h", 7);
        whole.record("h", 700);
        whole.record("g", 1);
        assert_eq!(merged, whole);

        // Merge order is immaterial.
        let mut reversed = b.clone();
        reversed.merge(&a);
        assert_eq!(merged, reversed);
    }

    #[test]
    fn registry_json_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.inc("jobs_arrived", 10);
        r.inc("copies_launched", 25);
        r.record("clone_lifetime", 0);
        r.record("clone_lifetime", 12);
        r.record("clone_lifetime", u64::MAX);
        let json = r.to_json().to_pretty_string();
        let back = MetricsRegistry::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
