//! Flowtime summary statistics.

use mapreduce_sim::{JobRecord, SimOutcome};
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};

/// A half-open flowtime bucket `[lo, hi)` used to split jobs into the paper's
/// "small" (0–300 s) and "big" (300–4000 s) categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowtimeBucket {
    /// Inclusive lower edge in slots/seconds.
    pub lo: u64,
    /// Exclusive upper edge in slots/seconds.
    pub hi: u64,
}

impl FlowtimeBucket {
    /// The paper's small-job bucket (Fig. 4): flowtime in `[0, 300)`.
    pub const SMALL_JOBS: FlowtimeBucket = FlowtimeBucket { lo: 0, hi: 300 };
    /// The paper's big-job bucket (Fig. 5): flowtime in `[300, 4000)`.
    pub const BIG_JOBS: FlowtimeBucket = FlowtimeBucket { lo: 300, hi: 4000 };

    /// Whether a flowtime falls inside the bucket.
    pub fn contains(&self, flowtime: u64) -> bool {
        flowtime >= self.lo && flowtime < self.hi
    }
}

/// Summary of the per-job flowtimes of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowtimeSummary {
    /// Name of the scheduler that produced the run.
    pub scheduler: String,
    /// Number of jobs summarised.
    pub jobs: usize,
    /// Unweighted mean flowtime.
    pub mean: f64,
    /// Weighted mean flowtime (`Σ wF / Σ w`).
    pub weighted_mean: f64,
    /// Weighted sum of flowtimes (the paper's objective).
    pub weighted_sum: f64,
    /// Median flowtime.
    pub median: f64,
    /// 95th-percentile flowtime.
    pub p95: f64,
    /// Maximum flowtime.
    pub max: f64,
    /// Mean number of copies launched per task (1.0 = no speculation).
    pub mean_copies_per_task: f64,
}

impl FlowtimeSummary {
    /// Summarises a full simulation outcome.
    pub fn from_outcome(outcome: &SimOutcome) -> Self {
        Self::from_records(
            &outcome.scheduler,
            outcome.records(),
            outcome.mean_copies_per_task(),
        )
    }

    /// Summarises an arbitrary set of job records (used for per-bucket
    /// breakdowns).
    pub fn from_records(scheduler: &str, records: &[JobRecord], mean_copies: f64) -> Self {
        if records.is_empty() {
            return FlowtimeSummary {
                scheduler: scheduler.to_string(),
                jobs: 0,
                mean: 0.0,
                weighted_mean: 0.0,
                weighted_sum: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
                mean_copies_per_task: mean_copies,
            };
        }
        let mut flowtimes: Vec<f64> = records.iter().map(|r| r.flowtime() as f64).collect();
        flowtimes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = flowtimes.len();
        let mean = flowtimes.iter().sum::<f64>() / n as f64;
        let total_weight: f64 = records.iter().map(|r| r.weight).sum();
        let weighted_sum: f64 = records.iter().map(|r| r.weighted_flowtime()).sum();
        let quantile = |q: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * q).round() as usize;
            flowtimes[idx.min(n - 1)]
        };
        FlowtimeSummary {
            scheduler: scheduler.to_string(),
            jobs: n,
            mean,
            weighted_mean: if total_weight > 0.0 {
                weighted_sum / total_weight
            } else {
                0.0
            },
            weighted_sum,
            median: quantile(0.5),
            p95: quantile(0.95),
            max: flowtimes[n - 1],
            mean_copies_per_task: mean_copies,
        }
    }

    /// Summarises only the jobs whose flowtime falls in `bucket`.
    pub fn for_bucket(outcome: &SimOutcome, bucket: FlowtimeBucket) -> Self {
        let records: Vec<JobRecord> = outcome
            .records()
            .iter()
            .filter(|r| bucket.contains(r.flowtime()))
            .cloned()
            .collect();
        Self::from_records(&outcome.scheduler, &records, outcome.mean_copies_per_task())
    }
}

impl ToJson for FlowtimeSummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheduler", self.scheduler.to_json()),
            ("jobs", self.jobs.to_json()),
            ("mean", self.mean.to_json()),
            ("weighted_mean", self.weighted_mean.to_json()),
            ("weighted_sum", self.weighted_sum.to_json()),
            ("median", self.median.to_json()),
            ("p95", self.p95.to_json()),
            ("max", self.max.to_json()),
            ("mean_copies_per_task", self.mean_copies_per_task.to_json()),
        ])
    }
}

impl FromJson for FlowtimeSummary {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(FlowtimeSummary {
            scheduler: String::from_json(value.field("scheduler")?)?,
            jobs: usize::from_json(value.field("jobs")?)?,
            mean: f64::from_json(value.field("mean")?)?,
            weighted_mean: f64::from_json(value.field("weighted_mean")?)?,
            weighted_sum: f64::from_json(value.field("weighted_sum")?)?,
            median: f64::from_json(value.field("median")?)?,
            p95: f64::from_json(value.field("p95")?)?,
            max: f64::from_json(value.field("max")?)?,
            mean_copies_per_task: f64::from_json(value.field("mean_copies_per_task")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::JobId;

    fn record(job: u64, weight: f64, flowtime: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(job),
            weight,
            arrival: 0,
            completion: flowtime,
            num_map_tasks: 1,
            num_reduce_tasks: 1,
            copies_launched: 2,
            true_workload: 10.0,
        }
    }

    #[test]
    fn summary_of_known_records() {
        let records = vec![
            record(0, 1.0, 100),
            record(1, 3.0, 200),
            record(2, 1.0, 300),
        ];
        let s = FlowtimeSummary::from_records("x", &records, 1.0);
        assert_eq!(s.jobs, 3);
        assert!((s.mean - 200.0).abs() < 1e-12);
        // Weighted mean: (100 + 600 + 300) / 5 = 200.
        assert!((s.weighted_mean - 200.0).abs() < 1e-12);
        assert!((s.weighted_sum - 1000.0).abs() < 1e-12);
        assert_eq!(s.median, 200.0);
        assert_eq!(s.max, 300.0);
    }

    #[test]
    fn empty_records_are_safe() {
        let s = FlowtimeSummary::from_records("x", &[], 0.0);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn buckets_partition_small_and_big_jobs() {
        assert!(FlowtimeBucket::SMALL_JOBS.contains(0));
        assert!(FlowtimeBucket::SMALL_JOBS.contains(299));
        assert!(!FlowtimeBucket::SMALL_JOBS.contains(300));
        assert!(FlowtimeBucket::BIG_JOBS.contains(300));
        assert!(FlowtimeBucket::BIG_JOBS.contains(3999));
        assert!(!FlowtimeBucket::BIG_JOBS.contains(4000));
    }

    #[test]
    fn bucket_summary_filters_records() {
        let outcome = mapreduce_sim::SimOutcome::new(
            "sched".into(),
            4,
            vec![record(0, 1.0, 50), record(1, 1.0, 500), record(2, 1.0, 100)],
            500,
            100,
            6,
            10,
            3,
            3,
            0,
            0,
        );
        let small = FlowtimeSummary::for_bucket(&outcome, FlowtimeBucket::SMALL_JOBS);
        assert_eq!(small.jobs, 2);
        let big = FlowtimeSummary::for_bucket(&outcome, FlowtimeBucket::BIG_JOBS);
        assert_eq!(big.jobs, 1);
        assert_eq!(small.scheduler, "sched");
    }

    #[test]
    fn summary_json_roundtrip() {
        // The experiment service ships summaries over its line protocol;
        // they must roundtrip exactly (bit-identical floats included).
        let records = vec![record(0, 1.0, 137), record(1, 3.0, 211)];
        let summary = FlowtimeSummary::from_records("SRPTMS+C", &records, 1.25);
        let json = summary.to_json().to_compact_string();
        let back = FlowtimeSummary::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, summary);
        assert!(FlowtimeSummary::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn p95_is_close_to_max_for_small_samples() {
        let records: Vec<JobRecord> = (0..20).map(|i| record(i, 1.0, (i + 1) * 10)).collect();
        let s = FlowtimeSummary::from_records("x", &records, 1.0);
        assert!(s.p95 >= s.median);
        assert!(s.p95 <= s.max);
    }
}
