//! Flowtime summary statistics.

use mapreduce_sim::{JobRecord, SimOutcome};
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};

/// A half-open flowtime bucket `[lo, hi)` used to split jobs into the paper's
/// "small" (0–300 s) and "big" (300–4000 s) categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowtimeBucket {
    /// Inclusive lower edge in slots/seconds.
    pub lo: u64,
    /// Exclusive upper edge in slots/seconds.
    pub hi: u64,
}

impl FlowtimeBucket {
    /// The paper's small-job bucket (Fig. 4): flowtime in `[0, 300)`.
    pub const SMALL_JOBS: FlowtimeBucket = FlowtimeBucket { lo: 0, hi: 300 };
    /// The paper's big-job bucket (Fig. 5): flowtime in `[300, 4000)`.
    pub const BIG_JOBS: FlowtimeBucket = FlowtimeBucket { lo: 300, hi: 4000 };

    /// Whether a flowtime falls inside the bucket.
    pub fn contains(&self, flowtime: u64) -> bool {
        flowtime >= self.lo && flowtime < self.hi
    }
}

/// Summary of the per-job flowtimes of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowtimeSummary {
    /// Name of the scheduler that produced the run.
    pub scheduler: String,
    /// Number of jobs summarised.
    pub jobs: usize,
    /// Unweighted mean flowtime.
    pub mean: f64,
    /// Weighted mean flowtime (`Σ wF / Σ w`).
    pub weighted_mean: f64,
    /// Weighted sum of flowtimes (the paper's objective).
    pub weighted_sum: f64,
    /// Median flowtime.
    pub median: f64,
    /// 95th-percentile flowtime.
    pub p95: f64,
    /// Maximum flowtime.
    pub max: f64,
    /// Mean number of copies launched per task (1.0 = no speculation).
    pub mean_copies_per_task: f64,
}

impl FlowtimeSummary {
    /// Summarises a full simulation outcome.
    pub fn from_outcome(outcome: &SimOutcome) -> Self {
        Self::from_records(
            &outcome.scheduler,
            outcome.records(),
            outcome.mean_copies_per_task(),
        )
    }

    /// Summarises an arbitrary set of job records (used for per-bucket
    /// breakdowns).
    pub fn from_records(scheduler: &str, records: &[JobRecord], mean_copies: f64) -> Self {
        if records.is_empty() {
            return FlowtimeSummary {
                scheduler: scheduler.to_string(),
                jobs: 0,
                mean: 0.0,
                weighted_mean: 0.0,
                weighted_sum: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
                mean_copies_per_task: mean_copies,
            };
        }
        let mut flowtimes: Vec<f64> = records.iter().map(|r| r.flowtime() as f64).collect();
        flowtimes.sort_by(f64::total_cmp);
        let n = flowtimes.len();
        let mean = flowtimes.iter().sum::<f64>() / n as f64;
        let total_weight: f64 = records.iter().map(|r| r.weight).sum();
        let weighted_sum: f64 = records.iter().map(|r| r.weighted_flowtime()).sum();
        let quantile = |q: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * q).round() as usize;
            flowtimes[idx.min(n - 1)]
        };
        FlowtimeSummary {
            scheduler: scheduler.to_string(),
            jobs: n,
            mean,
            weighted_mean: if total_weight > 0.0 {
                weighted_sum / total_weight
            } else {
                0.0
            },
            weighted_sum,
            median: quantile(0.5),
            p95: quantile(0.95),
            max: flowtimes[n - 1],
            mean_copies_per_task: mean_copies,
        }
    }

    /// Builds a summary from streaming accumulators alone — no per-job
    /// record vector anywhere. The moments (`mean`, `weighted_*`, `max`)
    /// come exactly from the [`StreamingFlowtime`]; `median` and `p95` come
    /// from the [`QuantileSketch`](crate::QuantileSketch) and carry its
    /// documented relative-error bound
    /// ([`QuantileSketch::RELATIVE_ERROR`](crate::QuantileSketch::RELATIVE_ERROR)).
    /// The two accumulators must have folded the same jobs.
    pub fn from_streaming(
        scheduler: &str,
        streaming: &StreamingFlowtime,
        sketch: &crate::QuantileSketch,
        mean_copies: f64,
    ) -> Self {
        debug_assert_eq!(
            streaming.jobs() as u64,
            sketch.count(),
            "streaming accumulator and sketch must fold the same jobs"
        );
        FlowtimeSummary {
            scheduler: scheduler.to_string(),
            jobs: streaming.jobs(),
            mean: streaming.mean(),
            weighted_mean: streaming.weighted_mean(),
            weighted_sum: streaming.weighted_sum(),
            median: sketch.quantile(0.5).unwrap_or(0) as f64,
            p95: sketch.quantile(0.95).unwrap_or(0) as f64,
            max: streaming.max() as f64,
            mean_copies_per_task: mean_copies,
        }
    }

    /// Summarises only the jobs whose flowtime falls in `bucket`.
    pub fn for_bucket(outcome: &SimOutcome, bucket: FlowtimeBucket) -> Self {
        let records: Vec<JobRecord> = outcome
            .records()
            .iter()
            .filter(|r| bucket.contains(r.flowtime()))
            .cloned()
            .collect();
        Self::from_records(&outcome.scheduler, &records, outcome.mean_copies_per_task())
    }
}

/// Single-pass, `O(1)`-memory flowtime accumulator for runs too large to
/// hold a per-job flowtime vector comfortably — the `stream10m` tier's ten
/// million records, or a pipelined engine folding records as they complete.
///
/// Tracks exactly the moments that don't need the full sample: job count,
/// unweighted/weighted flowtime sums and the maximum. Quantiles (median,
/// p95) need the sorted sample and stay the full [`FlowtimeSummary`]'s job.
/// Partial accumulators over disjoint record sets [`merge`](Self::merge)
/// into the whole-run accumulator, so per-shard folds compose.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingFlowtime {
    jobs: usize,
    sum: f64,
    weighted_sum: f64,
    total_weight: f64,
    max: u64,
}

impl StreamingFlowtime {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed job into the running statistics.
    pub fn fold(&mut self, record: &JobRecord) {
        self.jobs += 1;
        self.sum += record.flowtime() as f64;
        self.weighted_sum += record.weighted_flowtime();
        self.total_weight += record.weight;
        self.max = self.max.max(record.flowtime());
    }

    /// Accumulates over a whole record slice (a convenience for callers that
    /// do hold the records, e.g. a finished [`SimOutcome`]).
    pub fn from_records(records: &[JobRecord]) -> Self {
        let mut acc = Self::new();
        for record in records {
            acc.fold(record);
        }
        acc
    }

    /// Absorbs another accumulator built over a disjoint set of records.
    pub fn merge(&mut self, other: &Self) {
        self.jobs += other.jobs;
        self.sum += other.sum;
        self.weighted_sum += other.weighted_sum;
        self.total_weight += other.total_weight;
        self.max = self.max.max(other.max);
    }

    /// Number of jobs folded so far.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Unweighted mean flowtime (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.sum / self.jobs as f64
        }
    }

    /// Weighted mean flowtime `Σ wF / Σ w` (0 when empty or weightless).
    pub fn weighted_mean(&self) -> f64 {
        if self.total_weight > 0.0 {
            self.weighted_sum / self.total_weight
        } else {
            0.0
        }
    }

    /// Weighted sum of flowtimes — the paper's objective.
    pub fn weighted_sum(&self) -> f64 {
        self.weighted_sum
    }

    /// Maximum flowtime seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }
}

impl ToJson for FlowtimeSummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheduler", self.scheduler.to_json()),
            ("jobs", self.jobs.to_json()),
            ("mean", self.mean.to_json()),
            ("weighted_mean", self.weighted_mean.to_json()),
            ("weighted_sum", self.weighted_sum.to_json()),
            ("median", self.median.to_json()),
            ("p95", self.p95.to_json()),
            ("max", self.max.to_json()),
            ("mean_copies_per_task", self.mean_copies_per_task.to_json()),
        ])
    }
}

impl FromJson for FlowtimeSummary {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(FlowtimeSummary {
            scheduler: String::from_json(value.field("scheduler")?)?,
            jobs: usize::from_json(value.field("jobs")?)?,
            mean: f64::from_json(value.field("mean")?)?,
            weighted_mean: f64::from_json(value.field("weighted_mean")?)?,
            weighted_sum: f64::from_json(value.field("weighted_sum")?)?,
            median: f64::from_json(value.field("median")?)?,
            p95: f64::from_json(value.field("p95")?)?,
            max: f64::from_json(value.field("max")?)?,
            mean_copies_per_task: f64::from_json(value.field("mean_copies_per_task")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::JobId;

    fn record(job: u64, weight: f64, flowtime: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(job),
            weight,
            arrival: 0,
            completion: flowtime,
            num_map_tasks: 1,
            num_reduce_tasks: 1,
            copies_launched: 2,
            true_workload: 10.0,
        }
    }

    #[test]
    fn summary_of_known_records() {
        let records = vec![
            record(0, 1.0, 100),
            record(1, 3.0, 200),
            record(2, 1.0, 300),
        ];
        let s = FlowtimeSummary::from_records("x", &records, 1.0);
        assert_eq!(s.jobs, 3);
        assert!((s.mean - 200.0).abs() < 1e-12);
        // Weighted mean: (100 + 600 + 300) / 5 = 200.
        assert!((s.weighted_mean - 200.0).abs() < 1e-12);
        assert!((s.weighted_sum - 1000.0).abs() < 1e-12);
        assert_eq!(s.median, 200.0);
        assert_eq!(s.max, 300.0);
    }

    #[test]
    fn empty_records_are_safe() {
        let s = FlowtimeSummary::from_records("x", &[], 0.0);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn buckets_partition_small_and_big_jobs() {
        assert!(FlowtimeBucket::SMALL_JOBS.contains(0));
        assert!(FlowtimeBucket::SMALL_JOBS.contains(299));
        assert!(!FlowtimeBucket::SMALL_JOBS.contains(300));
        assert!(FlowtimeBucket::BIG_JOBS.contains(300));
        assert!(FlowtimeBucket::BIG_JOBS.contains(3999));
        assert!(!FlowtimeBucket::BIG_JOBS.contains(4000));
    }

    #[test]
    fn bucket_summary_filters_records() {
        let outcome = mapreduce_sim::SimOutcome::new(
            "sched".into(),
            4,
            vec![record(0, 1.0, 50), record(1, 1.0, 500), record(2, 1.0, 100)],
            500,
            100,
            6,
            10,
            3,
            3,
        );
        let small = FlowtimeSummary::for_bucket(&outcome, FlowtimeBucket::SMALL_JOBS);
        assert_eq!(small.jobs, 2);
        let big = FlowtimeSummary::for_bucket(&outcome, FlowtimeBucket::BIG_JOBS);
        assert_eq!(big.jobs, 1);
        assert_eq!(small.scheduler, "sched");
    }

    #[test]
    fn summary_json_roundtrip() {
        // The experiment service ships summaries over its line protocol;
        // they must roundtrip exactly (bit-identical floats included).
        let records = vec![record(0, 1.0, 137), record(1, 3.0, 211)];
        let summary = FlowtimeSummary::from_records("SRPTMS+C", &records, 1.25);
        let json = summary.to_json().to_compact_string();
        let back = FlowtimeSummary::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, summary);
        assert!(FlowtimeSummary::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn streaming_accumulator_matches_the_full_summary() {
        let records: Vec<JobRecord> = (0..50)
            .map(|i| record(i, (i % 7) as f64 + 0.5, (i + 1) * 13))
            .collect();
        let full = FlowtimeSummary::from_records("x", &records, 1.0);
        let streaming = StreamingFlowtime::from_records(&records);
        assert_eq!(streaming.jobs(), full.jobs);
        assert!((streaming.mean() - full.mean).abs() < 1e-9);
        assert!((streaming.weighted_mean() - full.weighted_mean).abs() < 1e-9);
        assert!((streaming.weighted_sum() - full.weighted_sum).abs() < 1e-9);
        assert_eq!(streaming.max() as f64, full.max);
    }

    #[test]
    fn sketch_backed_summary_tracks_the_exact_one() {
        let records: Vec<JobRecord> = (0..200)
            .map(|i| record(i, (i % 5) as f64 + 0.5, (i * i + 7) % 3000))
            .collect();
        let exact = FlowtimeSummary::from_records("x", &records, 1.0);
        let mut streaming = StreamingFlowtime::new();
        let mut sketch = crate::QuantileSketch::new();
        for r in &records {
            streaming.fold(r);
            sketch.record(r.flowtime());
        }
        let approx = FlowtimeSummary::from_streaming("x", &streaming, &sketch, 1.0);
        // Moments are exact.
        assert_eq!(approx.jobs, exact.jobs);
        assert!((approx.mean - exact.mean).abs() < 1e-9);
        assert!((approx.weighted_mean - exact.weighted_mean).abs() < 1e-9);
        assert!((approx.weighted_sum - exact.weighted_sum).abs() < 1e-9);
        assert_eq!(approx.max, exact.max);
        // Quantiles are within the sketch's documented bound.
        let bound = crate::QuantileSketch::RELATIVE_ERROR;
        assert!((approx.median - exact.median).abs() <= exact.median * bound + 1e-9);
        assert!((approx.p95 - exact.p95).abs() <= exact.p95 * bound + 1e-9);
    }

    #[test]
    fn streaming_accumulator_merges_disjoint_shards() {
        let records: Vec<JobRecord> = (0..30).map(|i| record(i, 2.0, (i + 3) * 7)).collect();
        let whole = StreamingFlowtime::from_records(&records);
        let mut merged = StreamingFlowtime::from_records(&records[..11]);
        merged.merge(&StreamingFlowtime::from_records(&records[11..]));
        assert_eq!(merged, whole);
        // Empty accumulators are identities on both sides.
        let mut empty = StreamingFlowtime::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.weighted_mean(), 0.0);
        empty.merge(&whole);
        assert_eq!(empty, whole);
    }

    #[test]
    fn p95_is_close_to_max_for_small_samples() {
        let records: Vec<JobRecord> = (0..20).map(|i| record(i, 1.0, (i + 1) * 10)).collect();
        let s = FlowtimeSummary::from_records("x", &records, 1.0);
        assert!(s.p95 >= s.median);
        assert!(s.p95 <= s.max);
    }
}
