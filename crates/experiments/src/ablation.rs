//! Design ablations called out in DESIGN.md: how much of SRPTMS+C's win comes
//! from cloning, from the SRPT ordering, and from the rσ pessimism term.

use crate::runner::{average_summary, run_scheduler_averaged, SchedulerKind};
use crate::scenario::Scenario;
use mapreduce_metrics::FlowtimeSummary;

/// One ablation variant and its averaged result.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Human-readable variant label.
    pub variant: String,
    /// Averaged flowtime summary for the variant.
    pub summary: FlowtimeSummary,
}

/// The standard ablation line-up: full SRPTMS+C, SRPTMS without cloning,
/// plain SRPT without sharing or cloning, fair sharing, and the ε extremes.
pub fn variants() -> Vec<(String, SchedulerKind)> {
    vec![
        (
            "SRPTMS+C (eps=0.6, r=3)".to_string(),
            SchedulerKind::SrptMsC {
                epsilon: 0.6,
                r: 3.0,
            },
        ),
        (
            "SRPTMS+C without rσ term (r=0)".to_string(),
            SchedulerKind::SrptMsC {
                epsilon: 0.6,
                r: 0.0,
            },
        ),
        (
            "SRPTMS without cloning".to_string(),
            SchedulerKind::SrptMsNoCloning {
                epsilon: 0.6,
                r: 3.0,
            },
        ),
        (
            "SRPTMS+C non-work-conserving".to_string(),
            SchedulerKind::SrptMsStrict {
                epsilon: 0.6,
                r: 3.0,
            },
        ),
        (
            "SRPT without sharing or cloning".to_string(),
            SchedulerKind::SrptNoClone { r: 3.0 },
        ),
        (
            "Fair sharing (eps=1 limit)".to_string(),
            SchedulerKind::Fair,
        ),
        (
            "Near-SRPT sharing (eps=0.1)".to_string(),
            SchedulerKind::SrptMsC {
                epsilon: 0.1,
                r: 3.0,
            },
        ),
    ]
}

/// Runs every ablation variant over the scenario.
pub fn run(scenario: &Scenario) -> Vec<AblationRow> {
    variants()
        .into_iter()
        .map(|(variant, kind)| {
            let outcomes = run_scheduler_averaged(kind, scenario);
            let mut summary = average_summary(kind, &outcomes);
            summary.scheduler = variant.clone();
            AblationRow { variant, summary }
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::from("Ablations — contribution of each design choice\n");
    out.push_str(&format!(
        "{:<36} {:>14} {:>20} {:>14}\n",
        "variant", "avg flowtime", "weighted avg", "copies/task"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<36} {:>14.1} {:>20.1} {:>14.2}\n",
            row.variant,
            row.summary.mean,
            row.summary.weighted_mean,
            row.summary.mean_copies_per_task
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_run_on_a_small_scenario() {
        let rows = run(&Scenario::scaled(50, 1));
        assert_eq!(rows.len(), variants().len());
        for row in &rows {
            assert!(
                row.summary.mean > 0.0,
                "{} produced zero flowtime",
                row.variant
            );
        }
        let table = render(&rows);
        assert!(table.contains("SRPTMS+C"));
        assert!(table.contains("Fair"));
    }

    #[test]
    fn variant_labels_are_unique() {
        let labels: std::collections::HashSet<String> =
            variants().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels.len(), variants().len());
    }
}
