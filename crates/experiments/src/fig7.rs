//! Fig. 7 — failure-regime sweep: mean job flowtime as machine MTBF shrinks.
//!
//! Not a figure of the paper: the paper's evaluation assumes a reliable
//! cluster. This sweep crashes machines with exponential up/down epochs
//! (work on a crashed machine is lost and re-executed; see
//! [`mapreduce_sim::FaultPlan`]) and pits the cloning algorithm against
//! speculation and no-clone baselines. The point the figure makes: cloning's
//! flowtime advantage *widens* under churn, because a killed clone still
//! leaves siblings running, while single-copy strategies must restart the
//! task from scratch and re-pay its whole duration.

use crate::runner::{average_summary, run_scheduler_averaged, SchedulerKind};
use crate::scenario::Scenario;
use mapreduce_metrics::FlowtimeSummary;
use mapreduce_sim::{FaultClass, FaultPlan};

/// Mean repair time as a fraction of mean up time: MTTR = MTBF / 8, a
/// machine is down ~11 % of the time regardless of the sweep level.
pub const MTTR_FRACTION: f64 = 1.0 / 8.0;

/// One (MTBF level × scheduler) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Cell {
    /// Scheduler of this cell.
    pub kind: SchedulerKind,
    /// Flowtime summary averaged across the scenario's seeds.
    pub summary: FlowtimeSummary,
    /// Mean machine-slots of progress lost to crashes, across seeds.
    pub wasted_work: f64,
    /// Mean number of copies killed by crashes, across seeds.
    pub copies_killed: f64,
}

/// One MTBF level of the sweep — a row of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Mean up epoch (slots) per machine; `None` is the fault-free baseline.
    pub mtbf: Option<f64>,
    /// One cell per scheduler, in line-up order.
    pub cells: Vec<Fig7Cell>,
}

/// Output of the Fig. 7 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// One row per MTBF level, most reliable first.
    pub rows: Vec<Fig7Row>,
}

/// The scheduler line-up of the failure sweep: the paper's SRPTMS+C against
/// the speculation and restart baselines whose recovery story churn
/// stresses hardest.
pub fn failure_lineup() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::paper_default(),
        SchedulerKind::Mantri,
        SchedulerKind::Late,
        SchedulerKind::Fifo,
        SchedulerKind::Restart,
    ]
}

/// The default MTBF levels: fault-free, mild churn, heavy churn. The values
/// are slots on the scenario's ≈35 000-slot arrival window — at MTBF 2 000
/// every machine crashes many times over a long job's lifetime.
pub fn default_mtbfs() -> Vec<Option<f64>> {
    vec![None, Some(8_000.0), Some(2_000.0)]
}

/// The crash plan of one sweep level: every machine of the scenario fails
/// with the given mean up time and recovers after MTBF × [`MTTR_FRACTION`].
fn plan_for(scenario: &Scenario, mtbf: f64) -> FaultPlan {
    FaultPlan::new(vec![FaultClass::crashes(
        scenario.machines,
        mtbf,
        mtbf * MTTR_FRACTION,
    )])
}

/// Runs the sweep for arbitrary MTBF levels and scheduler line-up. Cells are
/// cache-aware like every other figure (the fault plan is part of the cell
/// fingerprint).
pub fn run_with(scenario: &Scenario, mtbfs: &[Option<f64>], kinds: &[SchedulerKind]) -> Fig7Result {
    let rows = mtbfs
        .iter()
        .map(|&mtbf| {
            let cell_scenario = match mtbf {
                Some(m) => scenario.with_fault(plan_for(scenario, m)),
                None => scenario.clone(),
            };
            let cells = kinds
                .iter()
                .map(|&kind| {
                    let outcomes = run_scheduler_averaged(kind, &cell_scenario);
                    let n = outcomes.len() as f64;
                    let wasted_work =
                        outcomes.iter().map(|o| o.wasted_work as f64).sum::<f64>() / n;
                    let copies_killed = outcomes
                        .iter()
                        .map(|o| o.copies_killed_by_fault as f64)
                        .sum::<f64>()
                        / n;
                    Fig7Cell {
                        kind,
                        summary: average_summary(kind, &outcomes),
                        wasted_work,
                        copies_killed,
                    }
                })
                .collect();
            Fig7Row { mtbf, cells }
        })
        .collect();
    Fig7Result { rows }
}

/// Runs the default sweep ([`default_mtbfs`] × [`failure_lineup`]).
pub fn run(scenario: &Scenario) -> Fig7Result {
    run_with(scenario, &default_mtbfs(), &failure_lineup())
}

/// Relative mean-flowtime advantage of SRPTMS+C over the best *no-clone*
/// baseline in a row (positive = SRPTMS+C lower, i.e. better). `None` when
/// the row lacks either side of the comparison.
pub fn srpt_advantage(row: &Fig7Row) -> Option<f64> {
    let srpt = row
        .cells
        .iter()
        .find(|c| matches!(c.kind, SchedulerKind::SrptMsC { .. }))?;
    let best_no_clone = row
        .cells
        .iter()
        .filter(|c| {
            matches!(
                c.kind,
                SchedulerKind::Fifo | SchedulerKind::Restart | SchedulerKind::SrptNoClone { .. }
            )
        })
        .map(|c| c.summary.mean)
        .min_by(f64::total_cmp)?;
    Some((best_no_clone - srpt.summary.mean) / best_no_clone)
}

/// Renders the sweep as a text table: one row per MTBF level, one column per
/// scheduler, plus the per-row cloning advantage and waste accounting.
pub fn render(result: &Fig7Result) -> String {
    let mut out = String::from(
        "Fig. 7 — mean job flowtime vs machine MTBF \
         (crashed machines lose their work; tasks re-execute)\n",
    );
    for row in &result.rows {
        let label = match row.mtbf {
            Some(m) => format!("MTBF {m:>8.0}"),
            None => "no faults    ".to_string(),
        };
        out.push_str(&label);
        for cell in &row.cells {
            out.push_str(&format!(
                "  {} {:>9.1}",
                cell.summary.scheduler, cell.summary.mean
            ));
        }
        if let Some(advantage) = srpt_advantage(row) {
            out.push_str(&format!(
                "  [SRPTMS+C {:+.1} % vs best no-clone]",
                advantage * 100.0
            ));
        }
        out.push('\n');
        if row.mtbf.is_some() {
            let wasted: f64 = row.cells.iter().map(|c| c.wasted_work).sum();
            let killed: f64 = row.cells.iter().map(|c| c.copies_killed).sum();
            out.push_str(&format!(
                "             (row totals: {killed:.0} copies killed, {wasted:.0} machine-slots wasted)\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_fully_populated() {
        let scenario = Scenario::scaled(40, 1);
        let mtbfs = [None, Some(3_000.0)];
        let kinds = [
            SchedulerKind::paper_default(),
            SchedulerKind::Fifo,
            SchedulerKind::Restart,
        ];
        let a = run_with(&scenario, &mtbfs, &kinds);
        let b = run_with(&scenario, &mtbfs, &kinds);
        assert_eq!(a, b);
        assert_eq!(a.rows.len(), 2);
        for row in &a.rows {
            assert_eq!(row.cells.len(), 3);
            for cell in &row.cells {
                assert!(cell.summary.mean > 0.0);
                if row.mtbf.is_none() {
                    assert_eq!(cell.wasted_work, 0.0);
                    assert_eq!(cell.copies_killed, 0.0);
                }
            }
        }
        // Churn must actually bite at MTBF 3 000 on a ≈35 000-slot window.
        let churny = &a.rows[1];
        assert!(churny.cells.iter().any(|c| c.copies_killed > 0.0));
        let table = render(&a);
        assert!(table.contains("MTBF"));
        assert!(table.contains("no faults"));
        assert!(table.contains("copies killed"));
    }

    #[test]
    fn cloning_beats_no_clone_baselines_under_churn() {
        // The acceptance property of the figure: under heavy churn the
        // cloning algorithm's advantage over the best no-clone baseline is
        // positive. Two seeds keep the comparison out of single-trace noise.
        let scenario = Scenario::scaled(60, 2);
        let result = run_with(
            &scenario,
            &[Some(2_000.0)],
            &[
                SchedulerKind::paper_default(),
                SchedulerKind::Fifo,
                SchedulerKind::Restart,
            ],
        );
        let advantage = srpt_advantage(&result.rows[0]).expect("both sides present");
        assert!(
            advantage > 0.0,
            "SRPTMS+C should beat no-clone baselines under churn, got {advantage}"
        );
    }
}
