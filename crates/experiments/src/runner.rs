//! Running schedulers over scenarios: single runs, multi-seed averaging and
//! the scheduler registry used by the `reproduce` binary.
//!
//! Multi-seed sweeps route through the **cache-aware path**: every cell
//! (scheduler × scenario × seed) is identified by its content
//! [fingerprint](crate::cache::cell_fingerprint), and if an
//! [`OutcomeCache`] is supplied — explicitly via
//! [`run_scheduler_averaged_with`] or process-wide via
//! [`crate::cache::install_global_cache`] — previously computed cells are
//! returned from the cache instead of being re-simulated. Cache hits are
//! bit-identical to fresh runs (the simulator is deterministic and outcomes
//! roundtrip JSON exactly), which the `server_cache` proptests pin.

use crate::cache::{cell_fingerprint, OutcomeCache};
use crate::scenario::{Scenario, WorkloadSource};
use mapreduce_baselines::{FairScheduler, Fifo, Late, Mantri, Restart, Sca, SrptNoClone};
use mapreduce_metrics::{
    fold_run_telemetry, FlowtimeSummary, MetricsRegistry, SimTelemetry, TraceRecorder,
};
use mapreduce_sched::{OfflineSrpt, SrptMsC, SrptMsCConfig};
use mapreduce_sim::{Scheduler, SimConfig, SimOutcome, Simulation};
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use mapreduce_workload::{JobSource, Trace};
use std::sync::OnceLock;

/// The schedulers known to the experiment harness, with their parameters.
///
/// This is the unit of comparison in the figures: every variant can be
/// instantiated into a fresh [`Scheduler`] per run (schedulers are stateful,
/// so they are never shared across runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// SRPTMS+C (Algorithm 2) with sharing fraction `epsilon` and pessimism
    /// factor `r`.
    SrptMsC {
        /// Sharing fraction ε.
        epsilon: f64,
        /// Pessimism factor r.
        r: f64,
    },
    /// SRPTMS+C with cloning disabled (machine sharing only) — ablation.
    SrptMsNoCloning {
        /// Sharing fraction ε.
        epsilon: f64,
        /// Pessimism factor r.
        r: f64,
    },
    /// SRPTMS+C with the literal, non-work-conserving reading of the paper's
    /// pseudo-code (machines unused by the ε-fraction stay idle) — ablation.
    SrptMsStrict {
        /// Sharing fraction ε.
        epsilon: f64,
        /// Pessimism factor r.
        r: f64,
    },
    /// The offline Algorithm 1 (bulk-arrival SRPT, no cloning).
    OfflineSrpt {
        /// Pessimism factor r.
        r: f64,
    },
    /// Microsoft Mantri speculative execution.
    Mantri,
    /// The Smart Cloning Algorithm.
    Sca,
    /// Hadoop weighted fair scheduler.
    Fair,
    /// FIFO without speculation.
    Fifo,
    /// Online SRPT without cloning.
    SrptNoClone {
        /// Pessimism factor r.
        r: f64,
    },
    /// LATE speculative execution.
    Late,
    /// Kill-and-restart speculative execution.
    Restart,
}

impl SchedulerKind {
    /// The paper's headline configuration: SRPTMS+C with ε = 0.6, r = 3.
    pub fn paper_default() -> Self {
        SchedulerKind::SrptMsC {
            epsilon: 0.6,
            r: 3.0,
        }
    }

    /// The line-up compared in Figs. 4–6 of the paper.
    pub fn paper_comparison() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::paper_default(),
            SchedulerKind::Sca,
            SchedulerKind::Mantri,
        ]
    }

    /// Instantiates a fresh scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::SrptMsC { epsilon, r } => Box::new(SrptMsC::new(epsilon, r)),
            SchedulerKind::SrptMsNoCloning { epsilon, r } => Box::new(SrptMsC::with_config(
                SrptMsCConfig::new(epsilon, r).with_cloning(false),
            )),
            SchedulerKind::SrptMsStrict { epsilon, r } => Box::new(SrptMsC::with_config(
                SrptMsCConfig::new(epsilon, r).with_work_conserving(false),
            )),
            SchedulerKind::OfflineSrpt { r } => Box::new(OfflineSrpt::new(r)),
            SchedulerKind::Mantri => Box::new(Mantri::new()),
            SchedulerKind::Sca => Box::new(Sca::new()),
            SchedulerKind::Fair => Box::new(FairScheduler::new()),
            SchedulerKind::Fifo => Box::new(Fifo::new()),
            SchedulerKind::SrptNoClone { r } => Box::new(SrptNoClone::new(r)),
            SchedulerKind::Late => Box::new(Late::new()),
            SchedulerKind::Restart => Box::new(Restart::new()),
        }
    }

    /// The canonical scheduler id used by fingerprints and the experiment
    /// service's wire protocol: unit variants are strings, parameterised
    /// variants single-key objects (`{"SrptMsC":{"epsilon":0.6,"r":3}}`).
    fn variant_fields(&self) -> Option<(&'static str, Vec<(&'static str, f64)>)> {
        match *self {
            SchedulerKind::SrptMsC { epsilon, r } => {
                Some(("SrptMsC", vec![("epsilon", epsilon), ("r", r)]))
            }
            SchedulerKind::SrptMsNoCloning { epsilon, r } => {
                Some(("SrptMsNoCloning", vec![("epsilon", epsilon), ("r", r)]))
            }
            SchedulerKind::SrptMsStrict { epsilon, r } => {
                Some(("SrptMsStrict", vec![("epsilon", epsilon), ("r", r)]))
            }
            SchedulerKind::OfflineSrpt { r } => Some(("OfflineSrpt", vec![("r", r)])),
            SchedulerKind::SrptNoClone { r } => Some(("SrptNoClone", vec![("r", r)])),
            _ => None,
        }
    }

    /// A short stable label used in tables and benchmark ids.
    pub fn label(&self) -> String {
        match *self {
            SchedulerKind::SrptMsC { .. } => "SRPTMS+C".to_string(),
            SchedulerKind::SrptMsNoCloning { .. } => "SRPTMS (no cloning)".to_string(),
            SchedulerKind::SrptMsStrict { .. } => "SRPTMS+C (non-work-conserving)".to_string(),
            SchedulerKind::OfflineSrpt { .. } => "Offline SRPT".to_string(),
            SchedulerKind::Mantri => "Mantri".to_string(),
            SchedulerKind::Sca => "SCA".to_string(),
            SchedulerKind::Fair => "Fair".to_string(),
            SchedulerKind::Fifo => "FIFO".to_string(),
            SchedulerKind::SrptNoClone { .. } => "SRPT (no cloning)".to_string(),
            SchedulerKind::Late => "LATE".to_string(),
            SchedulerKind::Restart => "Restart".to_string(),
        }
    }
}

impl ToJson for SchedulerKind {
    fn to_json(&self) -> JsonValue {
        match self.variant_fields() {
            Some((name, fields)) => JsonValue::object([(
                name,
                JsonValue::object(fields.into_iter().map(|(k, v)| (k, v.to_json()))),
            )]),
            None => JsonValue::String(
                match *self {
                    SchedulerKind::Mantri => "Mantri",
                    SchedulerKind::Sca => "Sca",
                    SchedulerKind::Fair => "Fair",
                    SchedulerKind::Fifo => "Fifo",
                    SchedulerKind::Late => "Late",
                    SchedulerKind::Restart => "Restart",
                    _ => unreachable!("parameterised kinds covered above"),
                }
                .to_string(),
            ),
        }
    }
}

impl FromJson for SchedulerKind {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if let Some(name) = value.as_str() {
            return match name {
                "Mantri" => Ok(SchedulerKind::Mantri),
                "Sca" => Ok(SchedulerKind::Sca),
                "Fair" => Ok(SchedulerKind::Fair),
                "Fifo" => Ok(SchedulerKind::Fifo),
                "Late" => Ok(SchedulerKind::Late),
                "Restart" => Ok(SchedulerKind::Restart),
                other => Err(JsonError::new(format!("unknown scheduler `{other}`"))),
            };
        }
        let eps_r = |body: &JsonValue| -> Result<(f64, f64), JsonError> {
            Ok((
                f64::from_json(body.field("epsilon")?)?,
                f64::from_json(body.field("r")?)?,
            ))
        };
        if let Some(body) = value.get("SrptMsC") {
            let (epsilon, r) = eps_r(body)?;
            return Ok(SchedulerKind::SrptMsC { epsilon, r });
        }
        if let Some(body) = value.get("SrptMsNoCloning") {
            let (epsilon, r) = eps_r(body)?;
            return Ok(SchedulerKind::SrptMsNoCloning { epsilon, r });
        }
        if let Some(body) = value.get("SrptMsStrict") {
            let (epsilon, r) = eps_r(body)?;
            return Ok(SchedulerKind::SrptMsStrict { epsilon, r });
        }
        if let Some(body) = value.get("OfflineSrpt") {
            return Ok(SchedulerKind::OfflineSrpt {
                r: f64::from_json(body.field("r")?)?,
            });
        }
        if let Some(body) = value.get("SrptNoClone") {
            return Ok(SchedulerKind::SrptNoClone {
                r: f64::from_json(body.field("r")?)?,
            });
        }
        Err(JsonError::new("unknown SchedulerKind variant"))
    }
}

/// Runs one scheduler once over one trace.
///
/// # Panics
/// Panics if the simulation fails (stalled scheduler, horizon exceeded) —
/// experiment code treats that as a bug, not a recoverable condition.
pub fn run_scheduler(kind: SchedulerKind, trace: &Trace, machines: usize, seed: u64) -> SimOutcome {
    let config = SimConfig::new(machines).with_seed(seed);
    let mut scheduler = kind.build();
    Simulation::new(config, trace)
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("simulation with {} failed: {e}", kind.label()))
}

/// Runs one scheduler once over an arbitrary [`JobSource`] — the streaming
/// counterpart of [`run_scheduler`]; a materialized source produces a
/// bit-identical outcome to running its trace directly.
///
/// # Panics
/// Panics if the simulation fails.
pub fn run_scheduler_from_source(
    kind: SchedulerKind,
    source: Box<dyn JobSource>,
    machines: usize,
    seed: u64,
) -> SimOutcome {
    let config = SimConfig::new(machines).with_seed(seed);
    let mut scheduler = kind.build();
    Simulation::from_source(config, source)
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("simulation with {} failed: {e}", kind.label()))
}

/// Runs one cell — one scheduler over one seed of a scenario — with no cache
/// involved. This is the ground-truth computation every cached path must
/// reproduce bit for bit; the experiment service's worker pool goes through
/// [`run_cells`] for cache misses.
///
/// Unlike the raw [`run_scheduler`]/[`run_scheduler_from_source`] entry
/// points, cells run under [`Scenario::sim_config`], so scenario-level knobs
/// (today: the fault plan) reach the engine on every cached and uncached
/// path alike.
pub fn run_cell(kind: SchedulerKind, scenario: &Scenario, seed: u64) -> SimOutcome {
    let config = scenario.sim_config(seed);
    let mut scheduler = kind.build();
    Simulation::from_source(config, scenario.job_source(seed))
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("simulation with {} failed: {e}", kind.label()))
}

/// [`run_cell`] with an arbitrary [`mapreduce_sim::SimObserver`] attached —
/// the generic seam the sketch-backed CDF path ([`crate::fig4`]) uses to
/// fold flowtimes as jobs complete instead of post-processing the record
/// vector. Bit-identical to the unobserved [`run_cell`] of the same
/// `(kind, scenario, seed)`.
///
/// # Panics
/// Panics if the simulation fails.
pub fn run_cell_observed<O: mapreduce_sim::telemetry::SimObserver>(
    kind: SchedulerKind,
    scenario: &Scenario,
    seed: u64,
    observer: &mut O,
) -> SimOutcome {
    let config = scenario.sim_config(seed);
    let mut scheduler = kind.build();
    Simulation::from_source(config, scenario.job_source(seed))
        .run_with_observer(scheduler.as_mut(), observer)
        .unwrap_or_else(|e| panic!("observed simulation with {} failed: {e}", kind.label()))
}

/// [`run_cell`] with the telemetry consumers attached: a [`SimTelemetry`]
/// counter/histogram fold and a bounded Chrome-trace [`TraceRecorder`]
/// capped at `trace_cap` events.
///
/// The observed run is bit-identical to the unobserved [`run_cell`] of the
/// same `(kind, scenario, seed)` — the observer seam is read-only — which
/// `reproduce --trace-out` re-asserts on every invocation. The returned
/// registry includes the engine-side [`mapreduce_sim::RunTelemetry`] fold,
/// so it carries both event counts and stage timings.
pub fn run_cell_traced(
    kind: SchedulerKind,
    scenario: &Scenario,
    seed: u64,
    trace_cap: usize,
) -> (SimOutcome, MetricsRegistry, TraceRecorder) {
    let config = scenario.sim_config(seed);
    let mut scheduler = kind.build();
    let mut telemetry = SimTelemetry::new();
    let mut recorder = TraceRecorder::new(trace_cap);
    let outcome = Simulation::from_source(config, scenario.job_source(seed))
        .run_with_observer(scheduler.as_mut(), &mut (&mut telemetry, &mut recorder))
        .unwrap_or_else(|e| panic!("traced simulation with {} failed: {e}", kind.label()));
    let mut registry = telemetry.into_registry();
    fold_run_telemetry(&mut registry, &outcome.telemetry);
    (outcome, registry, recorder)
}

/// [`run_cell`] over an already-materialised trace — the shared-conversion
/// path for Google CSV workloads, bit-identical to `run_cell` of the same
/// `(kind, seed)`.
fn run_cell_on_trace(
    kind: SchedulerKind,
    scenario: &Scenario,
    trace: &Trace,
    seed: u64,
) -> SimOutcome {
    let config = scenario.sim_config(seed);
    let mut scheduler = kind.build();
    Simulation::new(config, trace)
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("simulation with {} failed: {e}", kind.label()))
}

/// Simulates a batch of cells of one scenario in parallel (order-preserving,
/// no cache), converting a Google CSV workload once and sharing the trace
/// across every cell instead of re-parsing the file per cell. Each outcome
/// is bit-identical to [`run_cell`] of the same `(kind, seed)`.
pub fn run_cells(scenario: &Scenario, cells: &[(SchedulerKind, u64)]) -> Vec<SimOutcome> {
    let is_csv = matches!(&scenario.source, WorkloadSource::GoogleCsv { .. });
    let shared: OnceLock<Trace> = OnceLock::new();
    mapreduce_support::par_map(cells, |_, &(kind, seed)| {
        if is_csv {
            let trace = shared.get_or_init(|| scenario.trace(seed));
            run_cell_on_trace(kind, scenario, trace, seed)
        } else {
            run_cell(kind, scenario, seed)
        }
    })
}

/// Runs one scheduler over every seed of a scenario (in parallel) and returns
/// one outcome per seed, in seed order, consulting the process-wide
/// [global cache](crate::cache::install_global_cache) if one is installed.
///
/// Each seed is a fully independent deterministic stream: the scenario's
/// [job source](Scenario::job_source) is built from the seed and the
/// simulation's RNG is seeded with it, so the per-seed outcome — and
/// therefore any average over seeds — is bit-identical whether this runs on
/// one thread (`RAYON_NUM_THREADS=1`) or many, and whether a cell comes out
/// of the cache or a fresh simulation. Every cell honours the scenario's
/// [`crate::scenario::WorkloadSource`], so sweeps can pit materialized
/// against streaming feeds (or a converted Google CSV) without touching the
/// figure code.
pub fn run_scheduler_averaged(kind: SchedulerKind, scenario: &Scenario) -> Vec<SimOutcome> {
    let cache = crate::cache::global_cache();
    run_scheduler_averaged_with(kind, scenario, cache.as_deref())
}

/// [`run_scheduler_averaged`] against an explicit cache (or none): cells
/// whose fingerprint is cached are returned without simulating; misses are
/// simulated and stored.
pub fn run_scheduler_averaged_with(
    kind: SchedulerKind,
    scenario: &Scenario,
    cache: Option<&dyn OutcomeCache>,
) -> Vec<SimOutcome> {
    // A Google CSV workload is seed-invariant: convert the file once, shared
    // across cells — but only if some cell actually misses the cache.
    let is_csv = matches!(&scenario.source, WorkloadSource::GoogleCsv { .. });
    let shared: OnceLock<Trace> = OnceLock::new();
    let simulate = |seed: u64| -> SimOutcome {
        if is_csv {
            let trace = shared.get_or_init(|| scenario.trace(seed));
            run_cell_on_trace(kind, scenario, trace, seed)
        } else {
            run_cell(kind, scenario, seed)
        }
    };
    mapreduce_support::par_map(&scenario.seeds, |_, &seed| {
        let Some(cache) = cache else {
            return simulate(seed);
        };
        let fingerprint = cell_fingerprint(kind, scenario, seed);
        if let Some(hit) = cache.lookup(fingerprint) {
            return hit;
        }
        let outcome = simulate(seed);
        cache.store(fingerprint, &outcome);
        outcome
    })
}

/// Averages the headline metrics of several outcomes (one per seed) into a
/// single [`FlowtimeSummary`]-shaped row labelled with the scheduler's name.
pub fn average_summary(kind: SchedulerKind, outcomes: &[SimOutcome]) -> FlowtimeSummary {
    assert!(!outcomes.is_empty(), "need at least one outcome to average");
    let summaries: Vec<FlowtimeSummary> =
        outcomes.iter().map(FlowtimeSummary::from_outcome).collect();
    let n = summaries.len() as f64;
    let avg = |f: fn(&FlowtimeSummary) -> f64| summaries.iter().map(f).sum::<f64>() / n;
    FlowtimeSummary {
        scheduler: kind.label(),
        jobs: summaries.iter().map(|s| s.jobs).sum::<usize>() / summaries.len(),
        mean: avg(|s| s.mean),
        weighted_mean: avg(|s| s.weighted_mean),
        weighted_sum: avg(|s| s.weighted_sum),
        median: avg(|s| s.median),
        p95: avg(|s| s.p95),
        max: avg(|s| s.max),
        mean_copies_per_task: avg(|s| s.mean_copies_per_task),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_has_a_label() {
        let kinds = [
            SchedulerKind::paper_default(),
            SchedulerKind::SrptMsNoCloning {
                epsilon: 0.6,
                r: 3.0,
            },
            SchedulerKind::OfflineSrpt { r: 0.0 },
            SchedulerKind::Mantri,
            SchedulerKind::Sca,
            SchedulerKind::Fair,
            SchedulerKind::Fifo,
            SchedulerKind::SrptNoClone { r: 1.0 },
            SchedulerKind::Late,
        ];
        for kind in kinds {
            let scheduler = kind.build();
            assert!(!scheduler.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(SchedulerKind::paper_comparison().len(), 3);
    }

    #[test]
    fn scheduler_kind_json_roundtrip() {
        let kinds = [
            SchedulerKind::paper_default(),
            SchedulerKind::SrptMsNoCloning {
                epsilon: 0.4,
                r: 2.0,
            },
            SchedulerKind::SrptMsStrict {
                epsilon: 0.6,
                r: 3.0,
            },
            SchedulerKind::OfflineSrpt { r: 1.5 },
            SchedulerKind::Mantri,
            SchedulerKind::Sca,
            SchedulerKind::Fair,
            SchedulerKind::Fifo,
            SchedulerKind::SrptNoClone { r: 1.0 },
            SchedulerKind::Late,
        ];
        for kind in kinds {
            let json = kind.to_json().to_compact_string();
            let back = SchedulerKind::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
            assert_eq!(back, kind, "roundtrip failed for {json}");
        }
        assert!(SchedulerKind::from_json(&JsonValue::String("Nope".into())).is_err());
        assert!(SchedulerKind::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn averaged_sweeps_consult_an_explicit_cache() {
        use crate::cache::{MemoryCache, OutcomeCache};

        let scenario = Scenario::scaled(30, 2);
        let cache = MemoryCache::new();
        let cold = run_scheduler_averaged_with(SchedulerKind::Fifo, &scenario, Some(&cache));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (0, 2, 2));

        // Warm rerun: every cell comes out of the cache, bit-identical.
        let warm = run_scheduler_averaged_with(SchedulerKind::Fifo, &scenario, Some(&cache));
        assert_eq!(warm, cold);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));

        // And matches the uncached path exactly.
        let fresh = run_scheduler_averaged_with(SchedulerKind::Fifo, &scenario, None);
        assert_eq!(fresh, cold);
    }

    #[test]
    fn run_and_average_small_scenario() {
        let scenario = Scenario::scaled(60, 2);
        let outcomes = run_scheduler_averaged(SchedulerKind::Fair, &scenario);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert_eq!(o.records().len(), 60);
        }
        let summary = average_summary(SchedulerKind::Fair, &outcomes);
        assert_eq!(summary.scheduler, "Fair");
        assert!(summary.mean > 0.0);
    }

    #[test]
    fn single_run_is_deterministic() {
        let scenario = Scenario::scaled(40, 1);
        let trace = scenario.trace(7);
        let a = run_scheduler(SchedulerKind::paper_default(), &trace, scenario.machines, 7);
        let b = run_scheduler(SchedulerKind::paper_default(), &trace, scenario.machines, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn average_of_nothing_panics() {
        average_summary(SchedulerKind::Fair, &[]);
    }

    #[test]
    fn materialized_cells_match_the_direct_trace_path() {
        // Routing run_scheduler_averaged through job sources must not change
        // materialized outcomes: same trace, same seed, bit-identical.
        let scenario = Scenario::scaled(40, 2);
        let averaged = run_scheduler_averaged(SchedulerKind::paper_default(), &scenario);
        for (i, &seed) in scenario.seeds.iter().enumerate() {
            let trace = scenario.trace(seed);
            let direct = run_scheduler(
                SchedulerKind::paper_default(),
                &trace,
                scenario.machines,
                seed,
            );
            assert_eq!(averaged[i], direct, "seed {seed} diverged");
        }
    }

    #[test]
    fn streaming_cells_run_every_scheduler_kind() {
        let scenario = Scenario::streaming(30, 1);
        let outcomes = run_scheduler_averaged(SchedulerKind::Fifo, &scenario);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].records().len(), 30);
        assert!(outcomes[0].peak_resident_jobs <= 30);
        assert!(outcomes[0].peak_resident_jobs >= 1);
    }
}
