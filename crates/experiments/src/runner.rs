//! Running schedulers over scenarios: single runs, multi-seed averaging and
//! the scheduler registry used by the `reproduce` binary.

use crate::scenario::{Scenario, WorkloadSource};
use mapreduce_baselines::{FairScheduler, Fifo, Late, Mantri, Sca, SrptNoClone};
use mapreduce_metrics::FlowtimeSummary;
use mapreduce_sched::{OfflineSrpt, SrptMsC, SrptMsCConfig};
use mapreduce_sim::{Scheduler, SimConfig, SimOutcome, Simulation};
use mapreduce_workload::{JobSource, Trace};

/// The schedulers known to the experiment harness, with their parameters.
///
/// This is the unit of comparison in the figures: every variant can be
/// instantiated into a fresh [`Scheduler`] per run (schedulers are stateful,
/// so they are never shared across runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// SRPTMS+C (Algorithm 2) with sharing fraction `epsilon` and pessimism
    /// factor `r`.
    SrptMsC {
        /// Sharing fraction ε.
        epsilon: f64,
        /// Pessimism factor r.
        r: f64,
    },
    /// SRPTMS+C with cloning disabled (machine sharing only) — ablation.
    SrptMsNoCloning {
        /// Sharing fraction ε.
        epsilon: f64,
        /// Pessimism factor r.
        r: f64,
    },
    /// SRPTMS+C with the literal, non-work-conserving reading of the paper's
    /// pseudo-code (machines unused by the ε-fraction stay idle) — ablation.
    SrptMsStrict {
        /// Sharing fraction ε.
        epsilon: f64,
        /// Pessimism factor r.
        r: f64,
    },
    /// The offline Algorithm 1 (bulk-arrival SRPT, no cloning).
    OfflineSrpt {
        /// Pessimism factor r.
        r: f64,
    },
    /// Microsoft Mantri speculative execution.
    Mantri,
    /// The Smart Cloning Algorithm.
    Sca,
    /// Hadoop weighted fair scheduler.
    Fair,
    /// FIFO without speculation.
    Fifo,
    /// Online SRPT without cloning.
    SrptNoClone {
        /// Pessimism factor r.
        r: f64,
    },
    /// LATE speculative execution.
    Late,
}

impl SchedulerKind {
    /// The paper's headline configuration: SRPTMS+C with ε = 0.6, r = 3.
    pub fn paper_default() -> Self {
        SchedulerKind::SrptMsC {
            epsilon: 0.6,
            r: 3.0,
        }
    }

    /// The line-up compared in Figs. 4–6 of the paper.
    pub fn paper_comparison() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::paper_default(),
            SchedulerKind::Sca,
            SchedulerKind::Mantri,
        ]
    }

    /// Instantiates a fresh scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::SrptMsC { epsilon, r } => Box::new(SrptMsC::new(epsilon, r)),
            SchedulerKind::SrptMsNoCloning { epsilon, r } => Box::new(SrptMsC::with_config(
                SrptMsCConfig::new(epsilon, r).with_cloning(false),
            )),
            SchedulerKind::SrptMsStrict { epsilon, r } => Box::new(SrptMsC::with_config(
                SrptMsCConfig::new(epsilon, r).with_work_conserving(false),
            )),
            SchedulerKind::OfflineSrpt { r } => Box::new(OfflineSrpt::new(r)),
            SchedulerKind::Mantri => Box::new(Mantri::new()),
            SchedulerKind::Sca => Box::new(Sca::new()),
            SchedulerKind::Fair => Box::new(FairScheduler::new()),
            SchedulerKind::Fifo => Box::new(Fifo::new()),
            SchedulerKind::SrptNoClone { r } => Box::new(SrptNoClone::new(r)),
            SchedulerKind::Late => Box::new(Late::new()),
        }
    }

    /// A short stable label used in tables and benchmark ids.
    pub fn label(&self) -> String {
        match *self {
            SchedulerKind::SrptMsC { .. } => "SRPTMS+C".to_string(),
            SchedulerKind::SrptMsNoCloning { .. } => "SRPTMS (no cloning)".to_string(),
            SchedulerKind::SrptMsStrict { .. } => "SRPTMS+C (non-work-conserving)".to_string(),
            SchedulerKind::OfflineSrpt { .. } => "Offline SRPT".to_string(),
            SchedulerKind::Mantri => "Mantri".to_string(),
            SchedulerKind::Sca => "SCA".to_string(),
            SchedulerKind::Fair => "Fair".to_string(),
            SchedulerKind::Fifo => "FIFO".to_string(),
            SchedulerKind::SrptNoClone { .. } => "SRPT (no cloning)".to_string(),
            SchedulerKind::Late => "LATE".to_string(),
        }
    }
}

/// Runs one scheduler once over one trace.
///
/// # Panics
/// Panics if the simulation fails (stalled scheduler, horizon exceeded) —
/// experiment code treats that as a bug, not a recoverable condition.
pub fn run_scheduler(kind: SchedulerKind, trace: &Trace, machines: usize, seed: u64) -> SimOutcome {
    let config = SimConfig::new(machines).with_seed(seed);
    let mut scheduler = kind.build();
    Simulation::new(config, trace)
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("simulation with {} failed: {e}", kind.label()))
}

/// Runs one scheduler once over an arbitrary [`JobSource`] — the streaming
/// counterpart of [`run_scheduler`]; a materialized source produces a
/// bit-identical outcome to running its trace directly.
///
/// # Panics
/// Panics if the simulation fails.
pub fn run_scheduler_from_source(
    kind: SchedulerKind,
    source: Box<dyn JobSource>,
    machines: usize,
    seed: u64,
) -> SimOutcome {
    let config = SimConfig::new(machines).with_seed(seed);
    let mut scheduler = kind.build();
    Simulation::from_source(config, source)
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("simulation with {} failed: {e}", kind.label()))
}

/// Runs one scheduler over every seed of a scenario (in parallel) and returns
/// one outcome per seed, in seed order.
///
/// Each seed is a fully independent deterministic stream: the scenario's
/// [job source](Scenario::job_source) is built from the seed and the
/// simulation's RNG is seeded with it, so the per-seed outcome — and
/// therefore any average over seeds — is bit-identical whether this runs on
/// one thread (`RAYON_NUM_THREADS=1`) or many. Every cell honours the
/// scenario's [`crate::scenario::WorkloadSource`], so sweeps can pit
/// materialized against streaming feeds (or a converted Google CSV) without
/// touching the figure code.
pub fn run_scheduler_averaged(kind: SchedulerKind, scenario: &Scenario) -> Vec<SimOutcome> {
    // A Google CSV workload is seed-invariant: convert the file once and
    // share the trace across cells instead of re-parsing it per seed.
    let shared: Option<Trace> = match &scenario.source {
        WorkloadSource::GoogleCsv { .. } => {
            Some(scenario.trace(scenario.seeds.first().copied().unwrap_or(0)))
        }
        _ => None,
    };
    mapreduce_support::par_map(&scenario.seeds, |_, &seed| match &shared {
        Some(trace) => run_scheduler(kind, trace, scenario.machines, seed),
        None => run_scheduler_from_source(kind, scenario.job_source(seed), scenario.machines, seed),
    })
}

/// Averages the headline metrics of several outcomes (one per seed) into a
/// single [`FlowtimeSummary`]-shaped row labelled with the scheduler's name.
pub fn average_summary(kind: SchedulerKind, outcomes: &[SimOutcome]) -> FlowtimeSummary {
    assert!(!outcomes.is_empty(), "need at least one outcome to average");
    let summaries: Vec<FlowtimeSummary> =
        outcomes.iter().map(FlowtimeSummary::from_outcome).collect();
    let n = summaries.len() as f64;
    let avg = |f: fn(&FlowtimeSummary) -> f64| summaries.iter().map(f).sum::<f64>() / n;
    FlowtimeSummary {
        scheduler: kind.label(),
        jobs: summaries.iter().map(|s| s.jobs).sum::<usize>() / summaries.len(),
        mean: avg(|s| s.mean),
        weighted_mean: avg(|s| s.weighted_mean),
        weighted_sum: avg(|s| s.weighted_sum),
        median: avg(|s| s.median),
        p95: avg(|s| s.p95),
        max: avg(|s| s.max),
        mean_copies_per_task: avg(|s| s.mean_copies_per_task),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_has_a_label() {
        let kinds = [
            SchedulerKind::paper_default(),
            SchedulerKind::SrptMsNoCloning {
                epsilon: 0.6,
                r: 3.0,
            },
            SchedulerKind::OfflineSrpt { r: 0.0 },
            SchedulerKind::Mantri,
            SchedulerKind::Sca,
            SchedulerKind::Fair,
            SchedulerKind::Fifo,
            SchedulerKind::SrptNoClone { r: 1.0 },
            SchedulerKind::Late,
        ];
        for kind in kinds {
            let scheduler = kind.build();
            assert!(!scheduler.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(SchedulerKind::paper_comparison().len(), 3);
    }

    #[test]
    fn run_and_average_small_scenario() {
        let scenario = Scenario::scaled(60, 2);
        let outcomes = run_scheduler_averaged(SchedulerKind::Fair, &scenario);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert_eq!(o.records().len(), 60);
        }
        let summary = average_summary(SchedulerKind::Fair, &outcomes);
        assert_eq!(summary.scheduler, "Fair");
        assert!(summary.mean > 0.0);
    }

    #[test]
    fn single_run_is_deterministic() {
        let scenario = Scenario::scaled(40, 1);
        let trace = scenario.trace(7);
        let a = run_scheduler(SchedulerKind::paper_default(), &trace, scenario.machines, 7);
        let b = run_scheduler(SchedulerKind::paper_default(), &trace, scenario.machines, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn average_of_nothing_panics() {
        average_summary(SchedulerKind::Fair, &[]);
    }

    #[test]
    fn materialized_cells_match_the_direct_trace_path() {
        // Routing run_scheduler_averaged through job sources must not change
        // materialized outcomes: same trace, same seed, bit-identical.
        let scenario = Scenario::scaled(40, 2);
        let averaged = run_scheduler_averaged(SchedulerKind::paper_default(), &scenario);
        for (i, &seed) in scenario.seeds.iter().enumerate() {
            let trace = scenario.trace(seed);
            let direct = run_scheduler(
                SchedulerKind::paper_default(),
                &trace,
                scenario.machines,
                seed,
            );
            assert_eq!(averaged[i], direct, "seed {seed} diverged");
        }
    }

    #[test]
    fn streaming_cells_run_every_scheduler_kind() {
        let scenario = Scenario::streaming(30, 1);
        let outcomes = run_scheduler_averaged(SchedulerKind::Fifo, &scenario);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].records().len(), 30);
        assert!(outcomes[0].peak_resident_jobs <= 30);
        assert!(outcomes[0].peak_resident_jobs >= 1);
    }
}
