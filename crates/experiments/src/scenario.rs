//! Experiment scenarios: workload source, cluster size and trial seeds.

use mapreduce_sim::{FaultPlan, SimConfig};
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use mapreduce_workload::{
    GoogleCsvOptions, GoogleTraceProfile, GoogleTraceSource, JobSource, MaterializedSource,
    StreamingGenerator, Trace,
};
use std::path::PathBuf;

/// How a scenario's workload reaches the engine, per seed/cell.
///
/// Sweeps name a source per cell: the same profile can drive a fully
/// materialized trace (the historical behaviour), a constant-memory
/// streaming feed, or an ingested Google cluster CSV.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum WorkloadSource {
    /// Generate the whole [`Trace`] up front from the profile and feed it
    /// through a [`MaterializedSource`]. Bit-identical to the pre-streaming
    /// trace-vector path.
    #[default]
    Materialized,
    /// Stream jobs lazily from the profile via [`StreamingGenerator`]
    /// (deterministic per-job RNG streams, bounded memory). Note this is a
    /// *different* — equally valid — trace than `Materialized` for the same
    /// seed, because job contents depend only on `(seed, job)` rather than
    /// on a sequential sample stream.
    Streaming,
    /// Convert a Google cluster-usage `task_events` CSV. The file defines
    /// the workload (identical across seeds); the seed still drives the
    /// simulator's own RNG (clone resampling, stragglers).
    GoogleCsv {
        /// Path of the `task_events` CSV file.
        path: PathBuf,
    },
}

impl ToJson for WorkloadSource {
    fn to_json(&self) -> JsonValue {
        match self {
            WorkloadSource::Materialized => JsonValue::String("Materialized".to_string()),
            WorkloadSource::Streaming => JsonValue::String("Streaming".to_string()),
            WorkloadSource::GoogleCsv { path } => JsonValue::object([(
                "GoogleCsv",
                JsonValue::object([(
                    "path",
                    JsonValue::String(path.to_string_lossy().into_owned()),
                )]),
            )]),
        }
    }
}

impl FromJson for WorkloadSource {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if let Some(name) = value.as_str() {
            return match name {
                "Materialized" => Ok(WorkloadSource::Materialized),
                "Streaming" => Ok(WorkloadSource::Streaming),
                other => Err(JsonError::new(format!("unknown workload source `{other}`"))),
            };
        }
        if let Some(body) = value.get("GoogleCsv") {
            return Ok(WorkloadSource::GoogleCsv {
                path: PathBuf::from(String::from_json(body.field("path")?)?),
            });
        }
        Err(JsonError::new("unknown WorkloadSource variant"))
    }
}

/// A reusable description of "which workload, which cluster, how many
/// trials" shared by all experiments.
///
/// The paper's evaluation uses the full Google-like trace (≈6 064 jobs) on a
/// 12 000-machine cluster with 10 repetitions; [`Scenario::paper`] reproduces
/// that. Scaled-down variants keep the jobs-per-machine ratio and the arrival
/// intensity so the qualitative behaviour (who wins, where the knees are) is
/// preserved while running in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Trace-generation profile.
    pub profile: GoogleTraceProfile,
    /// Number of machines in the simulated cluster.
    pub machines: usize,
    /// Seeds; each seed generates a fresh trace and drives one simulation
    /// repetition. Results are averaged across seeds.
    pub seeds: Vec<u64>,
    /// How the workload is fed to the engine (see [`WorkloadSource`]).
    pub source: WorkloadSource,
    /// Machine-dynamics fault plan injected into every cell of the scenario.
    /// Empty by default — fault-free cells are bit-identical to runs
    /// predating the fault subsystem.
    pub fault: FaultPlan,
}

impl Scenario {
    /// The full-scale scenario of the paper: 6 064 jobs, 12 000 machines,
    /// 10 repetitions.
    pub fn paper() -> Self {
        Scenario {
            profile: GoogleTraceProfile::paper(),
            machines: 12_000,
            seeds: (0..10).map(|i| 2015 + i).collect(),
            source: WorkloadSource::Materialized,
            fault: FaultPlan::none(),
        }
    }

    /// A scaled-down scenario with the requested number of jobs, preserving
    /// the paper's ≈0.5 jobs-per-machine ratio.
    pub fn scaled(num_jobs: usize, seeds: usize) -> Self {
        let machines = (num_jobs * 12_000 / 6_064).max(8);
        Scenario {
            profile: GoogleTraceProfile::scaled(num_jobs),
            machines,
            seeds: (0..seeds as u64).map(|i| 2015 + i).collect(),
            source: WorkloadSource::Materialized,
            fault: FaultPlan::none(),
        }
    }

    /// A scaled scenario fed through the streaming generator — the
    /// constant-memory path for 100k+-job runs.
    pub fn streaming(num_jobs: usize, seeds: usize) -> Self {
        Self::scaled(num_jobs, seeds).with_source(WorkloadSource::Streaming)
    }

    /// The million-job regime: 1 000 000 jobs streamed onto 100 000 machines.
    ///
    /// At 10 jobs per machine this is ~20× denser than the paper's 0.505, so
    /// the 35 032 s arrival window is stretched by the same ratio
    /// (`jobs/machine` relative to paper scale) to keep the offered load at
    /// the paper's ≈45 % — the point of the tier is a long steady-state run
    /// in bounded memory, not an arrival pile-up. Single seed: one trial of
    /// this scenario is a benchmark-scale run, not a statistics sweep.
    pub fn million() -> Self {
        let num_jobs: usize = 1_000_000;
        let machines: usize = 100_000;
        // window = 35_032 · (num_jobs / 6_064) / (machines / 12_000), exact
        // in integers: ≈ 693_271 s (~8 days of simulated cluster time).
        let window = 35_032u64 * (num_jobs as u64) * 12_000 / (6_064 * machines as u64);
        Scenario {
            profile: GoogleTraceProfile::scaled(num_jobs).with_arrival_window(window),
            machines,
            seeds: vec![2015],
            source: WorkloadSource::Streaming,
            fault: FaultPlan::none(),
        }
    }

    /// The ten-million-job regime: 10 000 000 jobs streamed onto 100 000
    /// machines.
    ///
    /// Same construction as [`Scenario::million`] — the arrival window is
    /// stretched by the jobs-per-machine ratio relative to paper scale to
    /// hold the offered load at the paper's ≈45 % — but with 10× the jobs on
    /// the same cluster, so the window lands at ≈6.9 M simulated seconds
    /// (~80 days). The point of the tier is that the engine's footprint is
    /// the alive window: the run must complete with peak-resident jobs in
    /// the thousands, five orders of magnitude below the workload size.
    /// Single seed: one trial is a benchmark-scale run, not a statistics
    /// sweep.
    pub fn ten_million() -> Self {
        let num_jobs: usize = 10_000_000;
        let machines: usize = 100_000;
        // window = 35_032 · (num_jobs / 6_064) / (machines / 12_000), exact
        // in integers: ≈ 6_932_717 s.
        let window = 35_032u64 * (num_jobs as u64) * 12_000 / (6_064 * machines as u64);
        Scenario {
            profile: GoogleTraceProfile::scaled(num_jobs).with_arrival_window(window),
            machines,
            seeds: vec![2015],
            source: WorkloadSource::Streaming,
            fault: FaultPlan::none(),
        }
    }

    /// The scenario used by the Criterion benches: small enough for repeated
    /// measurement, large enough that scheduling decisions still matter.
    pub fn bench() -> Self {
        Self::scaled(300, 1)
    }

    /// The scenario used by integration tests (fast).
    pub fn test() -> Self {
        Self::scaled(150, 1)
    }

    /// Returns a copy with a different workload source.
    pub fn with_source(mut self, source: WorkloadSource) -> Self {
        self.source = source;
        self
    }

    /// Generates the trace for one seed (materialised regardless of the
    /// scenario's source kind — figure code that needs the whole trace, e.g.
    /// Table II statistics, goes through this).
    ///
    /// # Panics
    /// Panics if a [`WorkloadSource::GoogleCsv`] file cannot be converted —
    /// experiment code treats that as a bug, not a recoverable condition.
    pub fn trace(&self, seed: u64) -> Trace {
        match &self.source {
            WorkloadSource::Materialized => self.profile.generate(seed),
            WorkloadSource::Streaming => {
                StreamingGenerator::new(self.profile.clone(), seed).materialize()
            }
            WorkloadSource::GoogleCsv { path } => {
                GoogleTraceSource::from_csv_file(path, &GoogleCsvOptions::default())
                    .unwrap_or_else(|e| panic!("google csv scenario {}: {e}", path.display()))
                    .into_trace()
            }
        }
    }

    /// Builds the engine-facing job source for one seed.
    ///
    /// For [`WorkloadSource::Materialized`] this wraps the generated trace —
    /// bit-identical to running the trace directly; for
    /// [`WorkloadSource::Streaming`] jobs are synthesized on demand and the
    /// full trace never exists in memory.
    ///
    /// # Panics
    /// Panics if a [`WorkloadSource::GoogleCsv`] file cannot be converted.
    pub fn job_source(&self, seed: u64) -> Box<dyn JobSource> {
        match &self.source {
            WorkloadSource::Materialized => {
                Box::new(MaterializedSource::new(self.profile.generate(seed)))
            }
            WorkloadSource::Streaming => {
                Box::new(StreamingGenerator::new(self.profile.clone(), seed))
            }
            WorkloadSource::GoogleCsv { path } => Box::new(
                GoogleTraceSource::from_csv_file(path, &GoogleCsvOptions::default())
                    .unwrap_or_else(|e| panic!("google csv scenario {}: {e}", path.display())),
            ),
        }
    }

    /// Returns a copy with a different number of machines (used by the Fig. 3
    /// cluster-size sweep).
    pub fn with_machines(&self, machines: usize) -> Self {
        Scenario {
            machines,
            ..self.clone()
        }
    }

    /// Returns a copy with every arrival forced to zero — the bulk-arrival
    /// workload of the offline experiments.
    pub fn as_bulk(&self) -> Self {
        Scenario {
            profile: self.profile.clone().with_bulk_arrivals(),
            ..self.clone()
        }
    }

    /// Returns a copy with the within-job task-duration CV overridden
    /// (0 = negligible variance, the Remark 2 regime).
    pub fn with_task_cv(&self, cv: f64) -> Self {
        Scenario {
            profile: self.profile.clone().with_task_cv(cv),
            ..self.clone()
        }
    }

    /// Returns a copy with a machine-dynamics fault plan attached (used by
    /// the Fig. 7 failure-regime sweep).
    ///
    /// # Panics
    /// Panics if the plan covers more machines than the scenario has — a
    /// malformed sweep definition, not a runtime condition.
    pub fn with_fault(&self, fault: FaultPlan) -> Self {
        fault.validate(self.machines);
        Scenario {
            fault,
            ..self.clone()
        }
    }

    /// The [`SimConfig`] every cell of this scenario runs under: the single
    /// place where scenario knobs (machines, fault plan) combine with a
    /// seed. All runner paths and the cache fingerprint go through this, so
    /// a scenario field that affects the simulation cannot silently escape
    /// the cache key.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let config = SimConfig::new(self.machines).with_seed(seed);
        if self.fault.is_empty() {
            config
        } else {
            config.with_fault_plan(self.fault.clone())
        }
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("profile", self.profile.to_json()),
            ("machines", self.machines.to_json()),
            ("seeds", self.seeds.to_json()),
            ("source", self.source.to_json()),
        ];
        // Emitted only when non-empty, so fault-free scenario documents (and
        // anything fingerprinting them) are byte-identical to pre-fault ones.
        if !self.fault.is_empty() {
            fields.push(("fault", self.fault.to_json()));
        }
        JsonValue::object(fields)
    }
}

impl FromJson for Scenario {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Scenario {
            profile: GoogleTraceProfile::from_json(value.field("profile")?)?,
            machines: usize::from_json(value.field("machines")?)?,
            seeds: Vec::from_json(value.field("seeds")?)?,
            // Absent in requests written before streaming sources existed.
            source: match value.get("source") {
                Some(v) => WorkloadSource::from_json(v)?,
                None => WorkloadSource::Materialized,
            },
            // Absent in requests written before fault injection existed.
            fault: match value.get("fault") {
                Some(v) => FaultPlan::from_json(v)?,
                None => FaultPlan::none(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_json_roundtrip() {
        // The experiment service receives scenarios over the wire; every
        // source kind must roundtrip exactly.
        use mapreduce_sim::FaultClass;
        for scenario in [
            Scenario::scaled(60, 2),
            Scenario::streaming(40, 1).with_machines(17),
            Scenario::test().with_source(WorkloadSource::GoogleCsv {
                path: PathBuf::from("tests/fixtures/google_sample.csv"),
            }),
            Scenario::scaled(60, 1)
                .with_fault(FaultPlan::new(vec![FaultClass::crashes(8, 500.0, 60.0)])),
        ] {
            let json = scenario.to_json().to_compact_string();
            let back = Scenario::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
            assert_eq!(back, scenario, "roundtrip failed for {json}");
        }
        // A pre-streaming document without a source field defaults to
        // materialized.
        let mut legacy = Scenario::scaled(10, 1).to_json();
        if let JsonValue::Object(map) = &mut legacy {
            map.remove("source");
        }
        let back = Scenario::from_json(&legacy).unwrap();
        assert_eq!(back.source, WorkloadSource::Materialized);
        assert!(back.fault.is_empty());
        // Fault-free scenarios serialise without a fault field at all, so
        // their documents (and fingerprints derived from them) are unchanged.
        assert!(Scenario::scaled(10, 1).to_json().get("fault").is_none());
    }

    #[test]
    fn sim_config_carries_scenario_knobs() {
        use mapreduce_sim::FaultClass;
        let plain = Scenario::scaled(60, 1);
        let cfg = plain.sim_config(7);
        assert_eq!(cfg.num_machines, plain.machines);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.fault_plan.is_empty());

        let plan = FaultPlan::new(vec![FaultClass::crashes(4, 300.0, 40.0)]);
        let faulty = plain.with_fault(plan.clone());
        assert_eq!(faulty.sim_config(7).fault_plan, plan);
    }

    #[test]
    fn paper_scenario_matches_table_ii_scale() {
        let s = Scenario::paper();
        assert_eq!(s.machines, 12_000);
        assert_eq!(s.profile.num_jobs, 6_064);
        assert_eq!(s.seeds.len(), 10);
    }

    #[test]
    fn scaled_scenario_preserves_load_ratio() {
        let s = Scenario::scaled(606, 2);
        assert_eq!(s.profile.num_jobs, 606);
        // ≈ 0.5 jobs per machine.
        let ratio = s.profile.num_jobs as f64 / s.machines as f64;
        assert!((ratio - 0.505).abs() < 0.05, "ratio {ratio}");
        assert_eq!(s.seeds.len(), 2);
    }

    #[test]
    fn million_scenario_keeps_offered_load() {
        let s = Scenario::million();
        assert_eq!(s.profile.num_jobs, 1_000_000);
        assert_eq!(s.machines, 100_000);
        assert_eq!(s.source, WorkloadSource::Streaming);
        assert_eq!(s.seeds, vec![2015]);
        // The arrival rate per machine must match the paper's: that is the
        // invariant the stretched window exists to preserve.
        let paper = Scenario::paper();
        let rate =
            |jobs: usize, dur: u64, machines: usize| jobs as f64 / dur as f64 / machines as f64;
        let million = rate(s.profile.num_jobs, s.profile.duration, s.machines);
        let reference = rate(
            paper.profile.num_jobs,
            paper.profile.duration,
            paper.machines,
        );
        assert!(
            (million / reference - 1.0).abs() < 0.01,
            "million-job arrival rate per machine {million:.3e} drifted from paper {reference:.3e}"
        );
    }

    #[test]
    fn trace_generation_is_deterministic() {
        let s = Scenario::test();
        assert_eq!(s.trace(1), s.trace(1));
        assert_ne!(s.trace(1), s.trace(2));
        assert_eq!(s.trace(1).len(), s.profile.num_jobs);
    }

    #[test]
    fn streaming_scenario_sources() {
        let s = Scenario::streaming(50, 1);
        assert_eq!(s.source, WorkloadSource::Streaming);
        let mut source = s.job_source(4);
        assert_eq!(source.total_jobs(), 50);
        assert_eq!(source.resident_jobs(), 0);
        // The scenario trace is the stream's materialisation: pulling the
        // source job by job yields exactly the trace's jobs.
        let trace = s.trace(4);
        let jobs: Vec<_> = std::iter::from_fn(|| source.next_job()).collect();
        assert_eq!(jobs, trace.jobs());

        let m = Scenario::scaled(50, 1);
        assert_eq!(m.source, WorkloadSource::Materialized);
        let mut mat = m.job_source(4);
        assert_eq!(mat.resident_jobs(), 50);
        assert!(mat.next_job().is_some());
        // Modifiers carry the source kind along.
        assert_eq!(
            Scenario::streaming(50, 1).with_machines(9).source,
            WorkloadSource::Streaming
        );
    }

    #[test]
    fn bulk_and_cv_modifiers() {
        let s = Scenario::test().as_bulk();
        assert!(s.trace(3).iter().all(|j| j.arrival == 0));
        let zero_cv = Scenario::test().with_task_cv(0.0);
        assert!(zero_cv
            .profile
            .classes
            .iter()
            .all(|c| c.task_duration_cv == 0.0));
        let resized = Scenario::test().with_machines(99);
        assert_eq!(resized.machines, 99);
    }
}
