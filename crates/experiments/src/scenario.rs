//! Experiment scenarios: workload profile, cluster size and trial seeds.

use mapreduce_workload::{GoogleTraceProfile, Trace};

/// A reusable description of "which workload, which cluster, how many
/// trials" shared by all experiments.
///
/// The paper's evaluation uses the full Google-like trace (≈6 064 jobs) on a
/// 12 000-machine cluster with 10 repetitions; [`Scenario::paper`] reproduces
/// that. Scaled-down variants keep the jobs-per-machine ratio and the arrival
/// intensity so the qualitative behaviour (who wins, where the knees are) is
/// preserved while running in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Trace-generation profile.
    pub profile: GoogleTraceProfile,
    /// Number of machines in the simulated cluster.
    pub machines: usize,
    /// Seeds; each seed generates a fresh trace and drives one simulation
    /// repetition. Results are averaged across seeds.
    pub seeds: Vec<u64>,
}

impl Scenario {
    /// The full-scale scenario of the paper: 6 064 jobs, 12 000 machines,
    /// 10 repetitions.
    pub fn paper() -> Self {
        Scenario {
            profile: GoogleTraceProfile::paper(),
            machines: 12_000,
            seeds: (0..10).map(|i| 2015 + i).collect(),
        }
    }

    /// A scaled-down scenario with the requested number of jobs, preserving
    /// the paper's ≈0.5 jobs-per-machine ratio.
    pub fn scaled(num_jobs: usize, seeds: usize) -> Self {
        let machines = (num_jobs * 12_000 / 6_064).max(8);
        Scenario {
            profile: GoogleTraceProfile::scaled(num_jobs),
            machines,
            seeds: (0..seeds as u64).map(|i| 2015 + i).collect(),
        }
    }

    /// The scenario used by the Criterion benches: small enough for repeated
    /// measurement, large enough that scheduling decisions still matter.
    pub fn bench() -> Self {
        Self::scaled(300, 1)
    }

    /// The scenario used by integration tests (fast).
    pub fn test() -> Self {
        Self::scaled(150, 1)
    }

    /// Generates the trace for one seed.
    pub fn trace(&self, seed: u64) -> Trace {
        self.profile.generate(seed)
    }

    /// Returns a copy with a different number of machines (used by the Fig. 3
    /// cluster-size sweep).
    pub fn with_machines(&self, machines: usize) -> Self {
        Scenario {
            machines,
            ..self.clone()
        }
    }

    /// Returns a copy with every arrival forced to zero — the bulk-arrival
    /// workload of the offline experiments.
    pub fn as_bulk(&self) -> Self {
        Scenario {
            profile: self.profile.clone().with_bulk_arrivals(),
            ..self.clone()
        }
    }

    /// Returns a copy with the within-job task-duration CV overridden
    /// (0 = negligible variance, the Remark 2 regime).
    pub fn with_task_cv(&self, cv: f64) -> Self {
        Scenario {
            profile: self.profile.clone().with_task_cv(cv),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_matches_table_ii_scale() {
        let s = Scenario::paper();
        assert_eq!(s.machines, 12_000);
        assert_eq!(s.profile.num_jobs, 6_064);
        assert_eq!(s.seeds.len(), 10);
    }

    #[test]
    fn scaled_scenario_preserves_load_ratio() {
        let s = Scenario::scaled(606, 2);
        assert_eq!(s.profile.num_jobs, 606);
        // ≈ 0.5 jobs per machine.
        let ratio = s.profile.num_jobs as f64 / s.machines as f64;
        assert!((ratio - 0.505).abs() < 0.05, "ratio {ratio}");
        assert_eq!(s.seeds.len(), 2);
    }

    #[test]
    fn trace_generation_is_deterministic() {
        let s = Scenario::test();
        assert_eq!(s.trace(1), s.trace(1));
        assert_ne!(s.trace(1), s.trace(2));
        assert_eq!(s.trace(1).len(), s.profile.num_jobs);
    }

    #[test]
    fn bulk_and_cv_modifiers() {
        let s = Scenario::test().as_bulk();
        assert!(s.trace(3).iter().all(|j| j.arrival == 0));
        let zero_cv = Scenario::test().with_task_cv(0.0);
        assert!(zero_cv
            .profile
            .classes
            .iter()
            .all(|c| c.task_duration_cv == 0.0));
        let resized = Scenario::test().with_machines(99);
        assert_eq!(resized.machines, 99);
    }
}
