//! `reproduce` — regenerates every table and figure of the paper from the
//! command line.
//!
//! ```text
//! reproduce [EXPERIMENT] [--scale full|<num_jobs>] [--seeds N]
//!
//! EXPERIMENT: all (default) | table2 | fig1 | fig2 | fig3 | fig4 | fig5 |
//!             fig6 | fig7 | theorem1 | ablation
//! --scale     "full" runs the paper-scale scenario (6 064 jobs, 12 000
//!             machines, slow); a number runs a scaled-down scenario with
//!             that many jobs (default 600).
//! --seeds     number of repetitions to average over (default 3 at reduced
//!             scale, 10 at full scale).
//! ```

use mapreduce_experiments::Scenario;
use mapreduce_experiments::{ablation, fig1, fig2, fig3, fig4, fig5, fig6, fig7, table2, theorem1};

struct Options {
    experiment: String,
    scale: Option<usize>,
    full: bool,
    seeds: Option<usize>,
}

fn parse_args() -> Options {
    let mut options = Options {
        experiment: "all".to_string(),
        scale: None,
        full: false,
        seeds: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--scale needs a value (\"full\" or a number of jobs)");
                    std::process::exit(2);
                });
                if value == "full" {
                    options.full = true;
                } else {
                    options.scale = Some(value.parse().unwrap_or_else(|_| {
                        eprintln!("invalid --scale value: {value}");
                        std::process::exit(2);
                    }));
                }
            }
            "--seeds" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--seeds needs a number");
                    std::process::exit(2);
                });
                let seeds: usize = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seeds value: {value}");
                    std::process::exit(2);
                });
                if seeds == 0 {
                    eprintln!("--seeds must be at least 1");
                    std::process::exit(2);
                }
                options.seeds = Some(seeds);
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [all|table2|fig1|fig2|fig3|fig4|fig5|fig6|fig7|theorem1|ablation] \
                     [--scale full|<num_jobs>] [--seeds N]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => options.experiment = other.to_string(),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    options
}

fn scenario_for(options: &Options) -> Scenario {
    let mut scenario = if options.full {
        Scenario::paper()
    } else {
        Scenario::scaled(options.scale.unwrap_or(600), 3)
    };
    if let Some(seeds) = options.seeds {
        scenario.seeds = (0..seeds as u64).map(|i| 2015 + i).collect();
    }
    scenario
}

fn main() {
    let options = parse_args();
    let known = [
        "all", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "theorem1",
        "ablation",
    ];
    if !known.contains(&options.experiment.as_str()) {
        eprintln!("unknown experiment: {}", options.experiment);
        std::process::exit(2);
    }
    let scenario = scenario_for(&options);
    println!(
        "# Reproduction scenario: {} jobs, {} machines, {} seed(s)\n",
        scenario.profile.num_jobs,
        scenario.machines,
        scenario.seeds.len()
    );

    // Figures share cells — Fig. 4 and Fig. 5 run the identical comparison
    // sweep and only bucket the records differently — so an in-process
    // result cache makes an `all` run simulate each cell exactly once.
    // (Persistent cross-run caching is the experiment service's job:
    // `mapreduce-server`'s `serve` binary.)
    mapreduce_experiments::install_global_cache(std::sync::Arc::new(
        mapreduce_experiments::MemoryCache::new(),
    ));

    let experiment = options.experiment.as_str();
    let run_all = experiment == "all";

    if run_all || experiment == "table2" {
        println!("{}", table2::render(&table2::run(&scenario)));
    }
    if run_all || experiment == "fig1" {
        let rows = fig1::run(&scenario, &fig1::paper_epsilons());
        println!("{}", fig1::render(&rows));
        if let Some(best) = fig1::best_epsilon(&rows) {
            println!("best epsilon (paper: 0.6): {best:.1}\n");
        }
    }
    if run_all || experiment == "fig2" {
        let rows = fig2::run(&scenario, &fig2::paper_rs());
        println!("{}", fig2::render(&rows));
        println!(
            "relative spread across r (paper: small): {:.1} %\n",
            fig2::relative_spread(&rows) * 100.0
        );
    }
    if run_all || experiment == "fig3" {
        let rows = fig3::run(&scenario, &fig3::paper_fractions());
        println!("{}", fig3::render(&rows));
    }
    if run_all || experiment == "fig4" {
        let comparison = fig4::run(&scenario);
        println!(
            "{}",
            fig4::render(
                &comparison,
                "Fig. 4 — cumulative fraction of jobs vs flowtime (0–300 s window)"
            )
        );
    }
    if run_all || experiment == "fig5" {
        let comparison = fig5::run(&scenario);
        println!("{}", fig5::render(&comparison));
    }
    if run_all || experiment == "fig6" {
        let result = fig6::run(&scenario);
        println!("{}", fig6::render(&result));
    }
    if run_all || experiment == "fig7" {
        let result = fig7::run(&scenario);
        println!("{}", fig7::render(&result));
    }
    if run_all || experiment == "theorem1" {
        println!("{}", theorem1::render(&theorem1::run(&scenario, 0.0, true)));
        println!(
            "{}",
            theorem1::render(&theorem1::run(&scenario, 3.0, false))
        );
    }
    if run_all || experiment == "ablation" {
        println!("{}", ablation::render(&ablation::run(&scenario)));
    }
}
