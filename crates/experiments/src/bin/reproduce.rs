//! `reproduce` — regenerates every table and figure of the paper from the
//! command line.
//!
//! ```text
//! reproduce [EXPERIMENT] [--scale full|<num_jobs>] [--seeds N]
//!           [--sketch] [--trace-out FILE]
//!
//! EXPERIMENT: all (default) | table2 | fig1 | fig2 | fig3 | fig4 | fig5 |
//!             fig6 | fig7 | theorem1 | ablation
//! --scale     "full" runs the paper-scale scenario (6 064 jobs, 12 000
//!             machines, slow); a number runs a scaled-down scenario with
//!             that many jobs (default 600).
//! --seeds     number of repetitions to average over (default 3 at reduced
//!             scale, 10 at full scale).
//! --sketch    renders Fig. 4 / Fig. 5 from the streaming quantile sketches
//!             (`fig4::run_sketched` / `fig5::run_sketched`): each cell runs
//!             with the `SimTelemetry` observer folding flowtimes as jobs
//!             complete, so the curves come out in O(1) memory — no per-job
//!             flowtime vector, within the sketch's documented 1/64
//!             relative-error bound of the exact path.
//! --trace-out additionally re-runs one representative cell (the paper
//!             scheduler on the scenario's first seed) with the telemetry
//!             observers attached, asserts the observed run is bit-identical
//!             to the unobserved one, self-validates the exported trace
//!             against the metrics registry, and writes Chrome-trace JSON to
//!             FILE (load it at ui.perfetto.dev or chrome://tracing).
//! ```

use mapreduce_experiments::Scenario;
use mapreduce_experiments::{ablation, fig1, fig2, fig3, fig4, fig5, fig6, fig7, table2, theorem1};
use mapreduce_experiments::{run_cell, run_cell_traced, SchedulerKind};
use mapreduce_metrics::validate_trace;

/// Default event cap for `--trace-out`: generous for reduced-scale scenarios
/// (a 600-job cell emits tens of thousands of spans) while keeping the
/// exported JSON bounded at paper scale — overflow is counted, not silent.
const TRACE_EVENT_CAP: usize = 250_000;

/// Runs the representative cell twice — once bare, once with the telemetry
/// observers attached — asserts the runs are bit-identical, self-validates
/// the exported trace against the independently folded registry, and writes
/// the Chrome-trace JSON. Any mismatch is a hard failure (exit 1): this
/// doubles as the CI smoke for the observer seam.
fn export_trace(scenario: &Scenario, path: &str) {
    let kind = SchedulerKind::paper_default();
    let seed = scenario.seeds.first().copied().unwrap_or(2015);
    let baseline = run_cell(kind, scenario, seed);
    let (outcome, registry, recorder) = run_cell_traced(kind, scenario, seed, TRACE_EVENT_CAP);
    if outcome != baseline
        || outcome.telemetry.decision_instants != baseline.telemetry.decision_instants
        || outcome.telemetry.ranked_prefix_len_max != baseline.telemetry.ranked_prefix_len_max
    {
        eprintln!("--trace-out: observed run diverged from the unobserved run");
        std::process::exit(1);
    }
    let text = recorder.to_json().to_compact_string();
    if let Err(err) = validate_trace(&text, &registry) {
        eprintln!("--trace-out: trace failed self-validation: {err}");
        std::process::exit(1);
    }
    if let Err(err) = std::fs::write(path, &text) {
        eprintln!("--trace-out: cannot write {path}: {err}");
        std::process::exit(1);
    }
    println!(
        "# Trace export: {} events ({} dropped at cap {}) from one traced cell \
         (seed {seed}) written to {path} — observed run bit-identical, \
         trace validated against the registry.",
        recorder.retained(),
        recorder.dropped(),
        TRACE_EVENT_CAP,
    );
}

struct Options {
    experiment: String,
    scale: Option<usize>,
    full: bool,
    seeds: Option<usize>,
    sketch: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Options {
    let mut options = Options {
        experiment: "all".to_string(),
        scale: None,
        full: false,
        seeds: None,
        sketch: false,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--scale needs a value (\"full\" or a number of jobs)");
                    std::process::exit(2);
                });
                if value == "full" {
                    options.full = true;
                } else {
                    options.scale = Some(value.parse().unwrap_or_else(|_| {
                        eprintln!("invalid --scale value: {value}");
                        std::process::exit(2);
                    }));
                }
            }
            "--seeds" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--seeds needs a number");
                    std::process::exit(2);
                });
                let seeds: usize = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --seeds value: {value}");
                    std::process::exit(2);
                });
                if seeds == 0 {
                    eprintln!("--seeds must be at least 1");
                    std::process::exit(2);
                }
                options.seeds = Some(seeds);
            }
            "--sketch" => options.sketch = true,
            "--trace-out" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a file path");
                    std::process::exit(2);
                });
                options.trace_out = Some(value);
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [all|table2|fig1|fig2|fig3|fig4|fig5|fig6|fig7|theorem1|ablation] \
                     [--scale full|<num_jobs>] [--seeds N] [--sketch] [--trace-out FILE]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => options.experiment = other.to_string(),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    options
}

fn scenario_for(options: &Options) -> Scenario {
    let mut scenario = if options.full {
        Scenario::paper()
    } else {
        Scenario::scaled(options.scale.unwrap_or(600), 3)
    };
    if let Some(seeds) = options.seeds {
        scenario.seeds = (0..seeds as u64).map(|i| 2015 + i).collect();
    }
    scenario
}

fn main() {
    let options = parse_args();
    let known = [
        "all", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "theorem1",
        "ablation",
    ];
    if !known.contains(&options.experiment.as_str()) {
        eprintln!("unknown experiment: {}", options.experiment);
        std::process::exit(2);
    }
    let scenario = scenario_for(&options);
    println!(
        "# Reproduction scenario: {} jobs, {} machines, {} seed(s)\n",
        scenario.profile.num_jobs,
        scenario.machines,
        scenario.seeds.len()
    );

    // Figures share cells — Fig. 4 and Fig. 5 run the identical comparison
    // sweep and only bucket the records differently — so an in-process
    // result cache makes an `all` run simulate each cell exactly once.
    // (Persistent cross-run caching is the experiment service's job:
    // `mapreduce-server`'s `serve` binary.)
    mapreduce_experiments::install_global_cache(std::sync::Arc::new(
        mapreduce_experiments::MemoryCache::new(),
    ));

    let experiment = options.experiment.as_str();
    let run_all = experiment == "all";

    if run_all || experiment == "table2" {
        println!("{}", table2::render(&table2::run(&scenario)));
    }
    if run_all || experiment == "fig1" {
        let rows = fig1::run(&scenario, &fig1::paper_epsilons());
        println!("{}", fig1::render(&rows));
        if let Some(best) = fig1::best_epsilon(&rows) {
            println!("best epsilon (paper: 0.6): {best:.1}\n");
        }
    }
    if run_all || experiment == "fig2" {
        let rows = fig2::run(&scenario, &fig2::paper_rs());
        println!("{}", fig2::render(&rows));
        println!(
            "relative spread across r (paper: small): {:.1} %\n",
            fig2::relative_spread(&rows) * 100.0
        );
    }
    if run_all || experiment == "fig3" {
        let rows = fig3::run(&scenario, &fig3::paper_fractions());
        println!("{}", fig3::render(&rows));
    }
    if run_all || experiment == "fig4" {
        let comparison = if options.sketch {
            fig4::run_sketched(&scenario)
        } else {
            fig4::run(&scenario)
        };
        let title = if options.sketch {
            "Fig. 4 — cumulative fraction of jobs vs flowtime (0–300 s window, streaming sketch)"
        } else {
            "Fig. 4 — cumulative fraction of jobs vs flowtime (0–300 s window)"
        };
        println!("{}", fig4::render(&comparison, title));
    }
    if run_all || experiment == "fig5" {
        let comparison = if options.sketch {
            fig5::run_sketched(&scenario)
        } else {
            fig5::run(&scenario)
        };
        println!("{}", fig5::render(&comparison));
    }
    if run_all || experiment == "fig6" {
        let result = fig6::run(&scenario);
        println!("{}", fig6::render(&result));
    }
    if run_all || experiment == "fig7" {
        let result = fig7::run(&scenario);
        println!("{}", fig7::render(&result));
    }
    if run_all || experiment == "theorem1" {
        println!("{}", theorem1::render(&theorem1::run(&scenario, 0.0, true)));
        println!(
            "{}",
            theorem1::render(&theorem1::run(&scenario, 3.0, false))
        );
    }
    if run_all || experiment == "ablation" {
        println!("{}", ablation::render(&ablation::run(&scenario)));
    }
    if let Some(path) = &options.trace_out {
        export_trace(&scenario, path);
    }
}
