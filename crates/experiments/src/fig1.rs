//! Fig. 1 — weighted/unweighted average job flowtime as a function of the
//! sharing fraction ε, with r = 0.

use crate::runner::{average_summary, run_scheduler_averaged, SchedulerKind};
use crate::scenario::Scenario;

/// One point of the ε sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// The sharing fraction ε.
    pub epsilon: f64,
    /// Unweighted average job flowtime (seconds).
    pub mean_flowtime: f64,
    /// Weighted average job flowtime (seconds).
    pub weighted_mean_flowtime: f64,
}

/// The ε values swept in the paper's Fig. 1.
pub fn paper_epsilons() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// Runs the sweep: SRPTMS+C with r = 0 for each ε, averaged over the
/// scenario's seeds.
pub fn run(scenario: &Scenario, epsilons: &[f64]) -> Vec<Fig1Row> {
    epsilons
        .iter()
        .map(|&epsilon| {
            let kind = SchedulerKind::SrptMsC { epsilon, r: 0.0 };
            let outcomes = run_scheduler_averaged(kind, scenario);
            let summary = average_summary(kind, &outcomes);
            Fig1Row {
                epsilon,
                mean_flowtime: summary.mean,
                weighted_mean_flowtime: summary.weighted_mean,
            }
        })
        .collect()
}

/// Renders the sweep as a text table.
pub fn render(rows: &[Fig1Row]) -> String {
    let mut out = String::from("Fig. 1 — average job flowtime vs epsilon (SRPTMS+C, r = 0)\n");
    out.push_str(&format!(
        "{:>8} {:>18} {:>24}\n",
        "epsilon", "avg flowtime (s)", "weighted avg flowtime (s)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>8.1} {:>18.1} {:>24.1}\n",
            row.epsilon, row.mean_flowtime, row.weighted_mean_flowtime
        ));
    }
    out
}

/// The ε that minimises the unweighted average flowtime (the paper finds
/// ε ≈ 0.6).
pub fn best_epsilon(rows: &[Fig1Row]) -> Option<f64> {
    rows.iter()
        .min_by(|a, b| {
            a.mean_flowtime
                .partial_cmp(&b.mean_flowtime)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|r| r.epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_epsilon() {
        let rows = run(&Scenario::scaled(60, 1), &[0.3, 0.6, 1.0]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.mean_flowtime > 0.0);
            assert!(row.weighted_mean_flowtime > 0.0);
        }
        assert!(best_epsilon(&rows).is_some());
    }

    #[test]
    fn paper_epsilons_cover_unit_interval() {
        let eps = paper_epsilons();
        assert_eq!(eps.len(), 10);
        assert!((eps[0] - 0.1).abs() < 1e-12);
        assert!((eps[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_every_epsilon() {
        let rows = vec![
            Fig1Row {
                epsilon: 0.2,
                mean_flowtime: 100.0,
                weighted_mean_flowtime: 120.0,
            },
            Fig1Row {
                epsilon: 0.8,
                mean_flowtime: 90.0,
                weighted_mean_flowtime: 110.0,
            },
        ];
        let table = render(&rows);
        assert!(table.contains("0.2"));
        assert!(table.contains("0.8"));
        assert_eq!(best_epsilon(&rows), Some(0.8));
    }
}
