//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section VI), plus the Theorem-1 offline experiment and the
//! design ablations called out in DESIGN.md.
//!
//! Each `figN` module exposes a function that takes a [`Scenario`] and
//! returns plain-data rows/series, plus a `render` helper producing the text
//! table printed by the `reproduce` binary and asserted on (in shape) by the
//! integration tests. The Criterion benches in `crates/bench` call the same
//! functions at reduced scale.
//!
//! Sweeps are **cache-aware**: every cell (scheduler × scenario × seed) has
//! a canonical content fingerprint ([`cache::cell_fingerprint`]) and the
//! multi-seed runner consults an [`cache::OutcomeCache`] — installed
//! process-wide via [`cache::install_global_cache`] or passed explicitly —
//! before simulating, so repeated figure sweeps reuse previously computed
//! cells (see `mapreduce-server` for the persistent, multi-tenant service
//! built on this seam).
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table2`] | Table II — trace statistics |
//! | [`fig1`] | Fig. 1 — flowtime vs ε (r = 0) |
//! | [`fig2`] | Fig. 2 — flowtime vs r (ε = 0.6) |
//! | [`fig3`] | Fig. 3 — flowtime vs cluster size |
//! | [`fig4`] | Fig. 4 — CDF of small-job flowtime, SRPTMS+C vs SCA vs Mantri |
//! | [`fig5`] | Fig. 5 — CDF of big-job flowtime |
//! | [`fig6`] | Fig. 6 — weighted/unweighted average flowtime comparison |
//! | [`fig7`] | Fig. 7 — failure-regime sweep (not in the paper): flowtime vs machine MTBF |
//! | [`theorem1`] | Theorem 1 / Remark 2 — offline bound check |
//! | [`ablation`] | design ablations (cloning, rσ term, ε extremes) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cache;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod runner;
pub mod scenario;
pub mod table2;
pub mod theorem1;

pub use cache::{
    cell_fingerprint, clear_global_cache, global_cache, install_global_cache, CacheStats,
    MemoryCache, OutcomeCache,
};
pub use runner::{
    run_cell, run_cell_observed, run_cell_traced, run_cells, run_scheduler, run_scheduler_averaged,
    run_scheduler_averaged_with, run_scheduler_from_source, SchedulerKind,
};
pub use scenario::{Scenario, WorkloadSource};
