//! Fig. 4 — CDF of job flowtime for small jobs (0–300 s) under SRPTMS+C, SCA
//! and Mantri.

use crate::runner::{run_cell_observed, run_scheduler_averaged, SchedulerKind};
use crate::scenario::Scenario;
use mapreduce_metrics::{Ecdf, QuantileSketch, SimTelemetry};

/// The CDF series of one scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfSeries {
    /// Scheduler label.
    pub scheduler: String,
    /// `(flowtime, cumulative fraction of all jobs)` points.
    pub points: Vec<(f64, f64)>,
}

impl CdfSeries {
    /// Reads a Fig. 4/5-shaped series straight off a streaming
    /// [`QuantileSketch`] — no per-job flowtime vector anywhere. The curve
    /// matches the exact [`Ecdf`] series up to the sketch's documented
    /// bounded rightward nudge of each evaluation point
    /// ([`QuantileSketch::RELATIVE_ERROR`]).
    pub fn from_sketch(
        scheduler: impl Into<String>,
        sketch: &QuantileSketch,
        lo: f64,
        hi: f64,
        points: usize,
        denominator: Option<u64>,
    ) -> Self {
        CdfSeries {
            scheduler: scheduler.into(),
            points: sketch.series(lo, hi, points, denominator),
        }
    }
}

/// Output of the Fig. 4 / Fig. 5 experiments: one CDF series per scheduler
/// over a flowtime window.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfComparison {
    /// Lower edge of the flowtime window (inclusive).
    pub lo: f64,
    /// Upper edge of the flowtime window (exclusive).
    pub hi: f64,
    /// One series per scheduler, in line-up order.
    pub series: Vec<CdfSeries>,
}

impl CdfComparison {
    /// The cumulative fraction of jobs with flowtime ≤ `x` for a scheduler,
    /// if that scheduler is part of the comparison.
    pub fn fraction_at(&self, scheduler: &str, x: f64) -> Option<f64> {
        let series = self.series.iter().find(|s| s.scheduler == scheduler)?;
        series
            .points
            .iter()
            .take_while(|(px, _)| *px <= x + 1e-9)
            .last()
            .map(|(_, y)| *y)
    }
}

/// Runs a windowed CDF comparison for the given schedulers. The cumulative
/// fraction is normalised by the total number of jobs (as in the paper's
/// figures), pooling all seeds of the scenario.
pub fn run_window(
    scenario: &Scenario,
    kinds: &[SchedulerKind],
    lo: f64,
    hi: f64,
    points: usize,
) -> CdfComparison {
    let series = kinds
        .iter()
        .map(|&kind| {
            let outcomes = run_scheduler_averaged(kind, scenario);
            let mut flowtimes: Vec<f64> = Vec::new();
            let mut total_jobs = 0usize;
            for outcome in &outcomes {
                total_jobs += outcome.records().len();
                flowtimes.extend(outcome.records().iter().map(|r| r.flowtime() as f64));
            }
            let cdf = Ecdf::from_values(&flowtimes);
            CdfSeries {
                scheduler: kind.label(),
                points: cdf.series(lo, hi, points, Some(total_jobs)),
            }
        })
        .collect();
    CdfComparison { lo, hi, series }
}

/// Sketch-backed counterpart of [`run_window`]: every cell runs with the
/// [`SimTelemetry`] observer attached, folding each completed job's flowtime
/// into a streaming [`QuantileSketch`] as it happens; seeds merge
/// associatively and the series is read off the merged sketch. No flowtime
/// vector is ever materialised and nothing is sorted, so the memory cost of
/// the curve is a fixed ~30 KiB regardless of job count. The result matches
/// [`run_window`]'s exact-[`Ecdf`] curve within the sketch's documented
/// error model (each fraction equals the exact fraction at an `x′` with
/// `x ≤ x′ ≤ x · (1 + RELATIVE_ERROR)`).
pub fn run_window_sketched(
    scenario: &Scenario,
    kinds: &[SchedulerKind],
    lo: f64,
    hi: f64,
    points: usize,
) -> CdfComparison {
    let series = kinds
        .iter()
        .map(|&kind| {
            let mut sketch = QuantileSketch::new();
            for &seed in &scenario.seeds {
                let mut telemetry = SimTelemetry::new();
                run_cell_observed(kind, scenario, seed, &mut telemetry);
                sketch.merge(&telemetry.sketches().all);
            }
            // Normalising by the sketch's own count mirrors `run_window`'s
            // `Some(total_jobs)`: both are the pooled all-jobs total.
            CdfSeries::from_sketch(kind.label(), &sketch, lo, hi, points, None)
        })
        .collect();
    CdfComparison { lo, hi, series }
}

/// Runs the paper's Fig. 4: small jobs, flowtime window 0–300 s, SRPTMS+C vs
/// SCA vs Mantri.
pub fn run(scenario: &Scenario) -> CdfComparison {
    run_window(scenario, &SchedulerKind::paper_comparison(), 0.0, 300.0, 13)
}

/// The streaming-sketch rendition of Fig. 4 (same window and line-up as
/// [`run`], series built by [`run_window_sketched`]).
pub fn run_sketched(scenario: &Scenario) -> CdfComparison {
    run_window_sketched(scenario, &SchedulerKind::paper_comparison(), 0.0, 300.0, 13)
}

/// Renders a CDF comparison as a text table (one column per scheduler).
pub fn render(comparison: &CdfComparison, title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!("{:>12}", "flowtime"));
    for s in &comparison.series {
        out.push_str(&format!(" {:>22}", s.scheduler));
    }
    out.push('\n');
    if let Some(first) = comparison.series.first() {
        for (idx, (x, _)) in first.points.iter().enumerate() {
            out.push_str(&format!("{x:>12.0}"));
            for s in &comparison.series {
                out.push_str(&format!(" {:>22.3}", s.points[idx].1));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_comparison_has_monotone_series() {
        let scenario = Scenario::scaled(60, 1);
        let cmp = run_window(
            &scenario,
            &[SchedulerKind::Fair, SchedulerKind::paper_default()],
            0.0,
            300.0,
            7,
        );
        assert_eq!(cmp.series.len(), 2);
        for series in &cmp.series {
            assert_eq!(series.points.len(), 7);
            let mut prev = -1.0;
            for (_, y) in &series.points {
                assert!(*y >= prev);
                assert!((0.0..=1.0).contains(y));
                prev = *y;
            }
        }
        assert!(cmp.fraction_at("Fair", 300.0).is_some());
        assert!(cmp.fraction_at("missing", 300.0).is_none());
    }

    #[test]
    fn sketched_window_tracks_the_exact_one() {
        let scenario = Scenario::scaled(60, 1);
        let kinds = [SchedulerKind::Fifo];
        let sketched = run_window_sketched(&scenario, &kinds, 0.0, 300.0, 7);
        // The exact pooled CDF, same denominator (all jobs).
        let outcomes = run_scheduler_averaged(SchedulerKind::Fifo, &scenario);
        let flowtimes: Vec<f64> = outcomes
            .iter()
            .flat_map(|o| o.records().iter().map(|r| r.flowtime() as f64))
            .collect();
        let exact = Ecdf::from_values(&flowtimes);
        // Each sketched fraction is the exact fraction at a point nudged
        // right by at most the sketch's relative error.
        for &(x, y) in &sketched.series[0].points {
            let lower = exact.fraction_at_or_below(x);
            let upper =
                exact.fraction_at_or_below(x * (1.0 + QuantileSketch::RELATIVE_ERROR) + 1e-9);
            assert!(
                y >= lower - 1e-12 && y <= upper + 1e-12,
                "x={x}: sketched {y} outside exact envelope [{lower}, {upper}]"
            );
        }
    }

    #[test]
    fn render_contains_scheduler_names() {
        let cmp = CdfComparison {
            lo: 0.0,
            hi: 300.0,
            series: vec![CdfSeries {
                scheduler: "SRPTMS+C".into(),
                points: vec![(0.0, 0.0), (300.0, 0.5)],
            }],
        };
        let table = render(&cmp, "Fig. 4");
        assert!(table.contains("SRPTMS+C"));
        assert!(table.contains("Fig. 4"));
    }
}
