//! Table II — statistics of the (synthetic) Google trace.

use crate::scenario::Scenario;
use mapreduce_workload::TraceStats;

/// Computes the Table II statistics of the scenario's workload (first seed).
///
/// The statistics are folded over the scenario's [job
/// source](Scenario::job_source) rather than a materialised trace, so a
/// streaming scenario computes its Table II in constant memory — this is
/// what keeps the 100k-job regime viable. For a materialized scenario the
/// result is bit-identical to `scenario.trace(seed).stats()`.
pub fn run(scenario: &Scenario) -> TraceStats {
    let seed = scenario.seeds.first().copied().unwrap_or(0);
    TraceStats::from_source(scenario.job_source(seed).as_mut())
}

/// Renders the statistics next to the values reported in the paper.
pub fn render(stats: &TraceStats) -> String {
    let paper_rows = [
        ("Total number of Jobs", 6064.0),
        ("Average number of tasks per job", 26.31),
        ("Minimum task duration (s)", 12.8),
        ("Maximum task duration (s)", 22_919.3),
        ("Average task duration (s)", 1_179.7),
    ];
    let ours = [
        stats.total_jobs as f64,
        stats.mean_tasks_per_job,
        stats.min_task_duration,
        stats.max_task_duration,
        stats.mean_task_duration,
    ];
    let mut out = String::from("Table II — trace statistics (paper vs this reproduction)\n");
    out.push_str(&format!(
        "{:<38} {:>12} {:>12}\n",
        "statistic", "paper", "measured"
    ));
    for ((label, paper), measured) in paper_rows.iter().zip(ours.iter()) {
        out.push_str(&format!("{label:<38} {paper:>12.2} {measured:>12.2}\n"));
    }
    out.push_str(&format!(
        "{:<38} {:>12} {:>12}\n",
        "Trace duration (s)", 35_032, stats.duration
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_trace_stats_are_plausible() {
        let stats = run(&Scenario::test());
        assert_eq!(stats.total_jobs, 150);
        assert!(stats.mean_tasks_per_job > 5.0);
        assert!(stats.min_task_duration >= 12.8 - 1e-9);
        assert!(stats.max_task_duration <= 22_919.3 + 1e-9);
    }

    #[test]
    fn streaming_scenario_stats_match_the_materialized_twin() {
        // Table II of a streaming scenario folds over the source; the
        // materialised twin of the same stream must agree bit for bit.
        let streaming = Scenario::streaming(80, 1);
        let stats = run(&streaming);
        let twin = streaming.trace(streaming.seeds[0]);
        assert_eq!(stats, twin.stats());

        // Materialized scenarios keep their historical behaviour.
        let materialized = Scenario::scaled(80, 1);
        assert_eq!(
            run(&materialized),
            materialized.trace(materialized.seeds[0]).stats()
        );
    }

    #[test]
    fn render_contains_paper_reference_values() {
        let stats = run(&Scenario::test());
        let table = render(&stats);
        assert!(table.contains("26.31"));
        assert!(table.contains("1179.70"));
        assert!(table.contains("measured"));
    }
}
