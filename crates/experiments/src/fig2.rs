//! Fig. 2 — weighted/unweighted average job flowtime as a function of the
//! pessimism factor r, with ε = 0.6.

use crate::runner::{average_summary, run_scheduler_averaged, SchedulerKind};
use crate::scenario::Scenario;

/// One point of the r sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// The pessimism factor r.
    pub r: f64,
    /// Unweighted average job flowtime (seconds).
    pub mean_flowtime: f64,
    /// Weighted average job flowtime (seconds).
    pub weighted_mean_flowtime: f64,
}

/// The r values swept in the paper's Fig. 2.
pub fn paper_rs() -> Vec<f64> {
    (1..=10).map(|i| i as f64).collect()
}

/// Runs the sweep: SRPTMS+C with ε = 0.6 for each r, averaged over seeds.
pub fn run(scenario: &Scenario, rs: &[f64]) -> Vec<Fig2Row> {
    rs.iter()
        .map(|&r| {
            let kind = SchedulerKind::SrptMsC { epsilon: 0.6, r };
            let outcomes = run_scheduler_averaged(kind, scenario);
            let summary = average_summary(kind, &outcomes);
            Fig2Row {
                r,
                mean_flowtime: summary.mean,
                weighted_mean_flowtime: summary.weighted_mean,
            }
        })
        .collect()
}

/// Renders the sweep as a text table.
pub fn render(rows: &[Fig2Row]) -> String {
    let mut out = String::from("Fig. 2 — average job flowtime vs r (SRPTMS+C, epsilon = 0.6)\n");
    out.push_str(&format!(
        "{:>6} {:>18} {:>24}\n",
        "r", "avg flowtime (s)", "weighted avg flowtime (s)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>6.1} {:>18.1} {:>24.1}\n",
            row.r, row.mean_flowtime, row.weighted_mean_flowtime
        ));
    }
    out
}

/// The paper's observation for Fig. 2: the metric varies little across r
/// because within-job task-duration variance is small in this trace. This
/// helper quantifies that: (max − min) / min of the unweighted averages.
pub fn relative_spread(rows: &[Fig2Row]) -> f64 {
    let min = rows
        .iter()
        .map(|r| r.mean_flowtime)
        .fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(|r| r.mean_flowtime).fold(0.0, f64::max);
    if min > 0.0 && min.is_finite() {
        (max - min) / min
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_rows() {
        let rows = run(&Scenario::scaled(60, 1), &[0.0, 3.0, 8.0]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.mean_flowtime > 0.0));
        assert!(relative_spread(&rows) >= 0.0);
    }

    #[test]
    fn paper_rs_are_one_through_ten() {
        let rs = paper_rs();
        assert_eq!(rs.len(), 10);
        assert_eq!(rs[0], 1.0);
        assert_eq!(rs[9], 10.0);
    }

    #[test]
    fn render_is_complete() {
        let rows = vec![Fig2Row {
            r: 3.0,
            mean_flowtime: 100.0,
            weighted_mean_flowtime: 90.0,
        }];
        assert!(render(&rows).contains("3.0"));
    }
}
