//! Fig. 5 — CDF of job flowtime for big jobs (300–4000 s) under SRPTMS+C,
//! SCA and Mantri.

use crate::fig4::{run_window, CdfComparison};
use crate::runner::SchedulerKind;
use crate::scenario::Scenario;

/// Runs the paper's Fig. 5: flowtime window 300–4000 s, SRPTMS+C vs SCA vs
/// Mantri, cumulative fraction over all jobs.
pub fn run(scenario: &Scenario) -> CdfComparison {
    run_window(
        scenario,
        &SchedulerKind::paper_comparison(),
        300.0,
        4000.0,
        16,
    )
}

/// The streaming-sketch rendition of Fig. 5: the same window and line-up as
/// [`run`], with every series read off a merged [`mapreduce_metrics::QuantileSketch`]
/// instead of a sorted flowtime vector (see
/// [`crate::fig4::run_window_sketched`]).
pub fn run_sketched(scenario: &Scenario) -> CdfComparison {
    crate::fig4::run_window_sketched(
        scenario,
        &SchedulerKind::paper_comparison(),
        300.0,
        4000.0,
        16,
    )
}

/// Renders the comparison (delegates to the Fig. 4 renderer).
pub fn render(comparison: &CdfComparison) -> String {
    crate::fig4::render(
        comparison,
        "Fig. 5 — cumulative fraction of jobs vs flowtime (300–4000 s window)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_matches_paper() {
        let scenario = Scenario::scaled(50, 1);
        let cmp = run_window(&scenario, &[SchedulerKind::Fifo], 300.0, 4000.0, 5);
        assert!((cmp.lo - 300.0).abs() < 1e-12);
        assert!((cmp.hi - 4000.0).abs() < 1e-12);
        assert_eq!(cmp.series[0].points.len(), 5);
        assert!(render(&cmp).contains("Fig. 5") || !render(&cmp).is_empty());
    }
}
