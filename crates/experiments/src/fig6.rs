//! Fig. 6 — weighted and unweighted average job flowtime of SRPTMS+C, SCA and
//! Mantri on the full trace, including the headline "≈25 % better than
//! Mantri" comparison.

use crate::runner::{average_summary, run_scheduler_averaged, SchedulerKind};
use crate::scenario::Scenario;
use mapreduce_metrics::{ComparisonReport, FlowtimeSummary};

/// Output of the Fig. 6 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// Per-scheduler averaged summaries, in line-up order.
    pub summaries: Vec<FlowtimeSummary>,
    /// Relative improvement of SRPTMS+C over Mantri on the unweighted average
    /// flowtime (0.25 = 25 % lower).
    pub improvement_over_mantri: Option<f64>,
    /// Relative improvement of SRPTMS+C over Mantri on the weighted average
    /// flowtime.
    pub weighted_improvement_over_mantri: Option<f64>,
}

/// Runs the comparison for an arbitrary scheduler line-up.
pub fn run_with(scenario: &Scenario, kinds: &[SchedulerKind]) -> Fig6Result {
    let summaries: Vec<FlowtimeSummary> = kinds
        .iter()
        .map(|&kind| {
            let outcomes = run_scheduler_averaged(kind, scenario);
            average_summary(kind, &outcomes)
        })
        .collect();
    let report = ComparisonReport::from_summaries(summaries.clone());
    Fig6Result {
        improvement_over_mantri: report.unweighted_improvement("SRPTMS+C", "Mantri"),
        weighted_improvement_over_mantri: report.weighted_improvement("SRPTMS+C", "Mantri"),
        summaries,
    }
}

/// Runs the paper's line-up (SRPTMS+C, SCA, Mantri).
pub fn run(scenario: &Scenario) -> Fig6Result {
    run_with(scenario, &SchedulerKind::paper_comparison())
}

/// Renders the comparison as a text table plus the improvement headline.
pub fn render(result: &Fig6Result) -> String {
    let report = ComparisonReport::from_summaries(result.summaries.clone());
    let mut out = String::from(
        "Fig. 6 — weighted/unweighted average job flowtime under different algorithms\n",
    );
    out.push_str(&report.to_table());
    if let (Some(unweighted), Some(weighted)) = (
        result.improvement_over_mantri,
        result.weighted_improvement_over_mantri,
    ) {
        out.push_str(&format!(
            "SRPTMS+C vs Mantri: {:.1} % lower average flowtime, {:.1} % lower weighted average flowtime (paper reports ~25 %)\n",
            unweighted * 100.0,
            weighted * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_summaries_for_each_scheduler() {
        let scenario = Scenario::scaled(60, 1);
        let result = run_with(
            &scenario,
            &[SchedulerKind::paper_default(), SchedulerKind::Mantri],
        );
        assert_eq!(result.summaries.len(), 2);
        assert!(result.improvement_over_mantri.is_some());
        let table = render(&result);
        assert!(table.contains("SRPTMS+C"));
        assert!(table.contains("Mantri"));
    }

    #[test]
    fn missing_mantri_yields_no_improvement_number() {
        let scenario = Scenario::scaled(40, 1);
        let result = run_with(&scenario, &[SchedulerKind::Fair]);
        assert!(result.improvement_over_mantri.is_none());
    }
}
