//! Content-addressed result caching for experiment cells.
//!
//! A **cell** is the unit of simulation work in every figure sweep: one
//! scheduler over one scenario with one seed. Cells are pure functions of
//! their inputs (the engine is deterministic), so their outcomes can be
//! memoised under a content hash. This module defines
//!
//! * [`cell_fingerprint`] — the canonical [`Fingerprint`] of a cell: the
//!   FNV-1a-128 hash of a canonical JSON document covering the
//!   [`SimConfig`](mapreduce_sim::SimConfig) the runner builds (machines, seed, speed, straggler
//!   model, …), the workload description ([`GoogleTraceProfile`] +
//!   [`WorkloadSource`]) and the scheduler id with its parameters. Two cells
//!   agree on their fingerprint iff they agree on everything that can
//!   influence the outcome. Golden tests pin concrete hashes so the
//!   canonicalisation cannot drift silently (a drift would cold every
//!   persisted cache);
//! * [`OutcomeCache`] — the trait the cache-aware runner
//!   ([`crate::runner::run_scheduler_averaged_with`]) consults, with the
//!   in-process [`MemoryCache`] implementation (the persistent JSON-lines
//!   store lives in `mapreduce-server`);
//! * a process-wide **global cache hook** ([`install_global_cache`]) through
//!   which the figure modules transparently reuse results: they call
//!   [`crate::runner::run_scheduler_averaged`], which routes every cell
//!   through the installed cache — so a warm second run of any figure is
//!   near-zero simulation work.

use crate::runner::SchedulerKind;
use crate::scenario::{Scenario, WorkloadSource};
use mapreduce_sim::SimOutcome;
use mapreduce_support::hash::{Fingerprint, Fnv1a128};
use mapreduce_support::json::{JsonValue, ToJson};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::SystemTime;

/// Computes the canonical fingerprint of one cell.
///
/// The hashed document is
/// `{"config": <SimConfig>, "scheduler": <SchedulerKind>, "workload":
/// {"profile": <GoogleTraceProfile>, "source": <WorkloadSource>}}` in
/// compact JSON with sorted keys. The config embeds the seed and the
/// machine count exactly as [`crate::runner::run_cell`] builds them, so any
/// knob that reaches the engine reaches the hash. For a
/// [`WorkloadSource::GoogleCsv`] cell the workload object additionally
/// embeds the CSV **content hash** (length + FNV-1a-128 of the bytes), so
/// editing the file colds its cells instead of silently serving outcomes of
/// the old content.
pub fn cell_fingerprint(kind: SchedulerKind, scenario: &Scenario, seed: u64) -> Fingerprint {
    // The same construction the runner uses, so every scenario knob that
    // reaches the engine (machine count, fault plan) reaches the hash; an
    // empty fault plan serialises to nothing, keeping pre-fault fingerprints
    // (and every persisted cache keyed by them) valid.
    let config = scenario.sim_config(seed);
    let mut workload = vec![
        ("profile", scenario.profile.to_json()),
        ("source", scenario.source.to_json()),
    ];
    if let WorkloadSource::GoogleCsv { path } = &scenario.source {
        workload.push(("csv", csv_content_token(path)));
    }
    let doc = JsonValue::object([
        ("config", config.to_json()),
        ("scheduler", kind.to_json()),
        ("workload", JsonValue::object(workload)),
    ]);
    Fingerprint::of_json(&doc)
}

/// Per-path memo entry: `(len, mtime, content hash)`.
type CsvHashMemo = HashMap<PathBuf, (u64, Option<SystemTime>, u128)>;

/// Content hashes of CSV workload files, memoized per path and revalidated
/// by `(len, mtime)` so fingerprinting many cells of one sweep reads the
/// file once, not once per cell.
static CSV_HASHES: Mutex<Option<CsvHashMemo>> = Mutex::new(None);

/// The content token of a CSV workload file: `{"len":…,"hash":"…"}`, or
/// `{"unreadable":true}` when the file cannot be read (the sweep itself
/// will fail at conversion time; the token just keeps the fingerprint
/// well-defined).
fn csv_content_token(path: &Path) -> JsonValue {
    let meta = match std::fs::metadata(path) {
        Ok(meta) => meta,
        Err(_) => return JsonValue::object([("unreadable", true.to_json())]),
    };
    let len = meta.len();
    let mtime = meta.modified().ok();
    let mut memo = CSV_HASHES.lock().expect("csv hash memo poisoned");
    let memo = memo.get_or_insert_with(HashMap::new);
    if let Some(&(cached_len, cached_mtime, hash)) = memo.get(path) {
        if cached_len == len && cached_mtime == mtime {
            return JsonValue::object([
                ("len", len.to_json()),
                ("hash", Fingerprint(hash).to_json()),
            ]);
        }
    }
    let Ok(bytes) = std::fs::read(path) else {
        return JsonValue::object([("unreadable", true.to_json())]);
    };
    let hash = Fnv1a128::hash(&bytes);
    memo.insert(path.to_path_buf(), (len, mtime, hash));
    JsonValue::object([
        ("len", len.to_json()),
        ("hash", Fingerprint(hash).to_json()),
    ])
}

/// Running counters of a cache's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a cached outcome.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Outcomes written into the cache.
    pub stores: u64,
}

/// A store of simulation outcomes addressed by cell fingerprint.
///
/// Implementations must be thread-safe (sweeps fan cells out over the
/// worker pool) and must return outcomes **bit-identical** to what was
/// stored — the cache-correctness proptests compare hits against fresh
/// recomputations across the golden scheduler suite.
pub trait OutcomeCache: Send + Sync {
    /// The cached outcome for a fingerprint, if present.
    fn lookup(&self, fingerprint: Fingerprint) -> Option<SimOutcome>;

    /// Stores the outcome of a freshly simulated cell.
    fn store(&self, fingerprint: Fingerprint, outcome: &SimOutcome);

    /// Traffic counters (hits/misses/stores) since construction.
    fn stats(&self) -> CacheStats;
}

/// Thread-safe counters shared by cache implementations.
#[derive(Debug, Default)]
pub struct StatsCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl StatsCounters {
    /// Records a lookup result.
    pub fn note_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a store.
    pub fn note_store(&self) {
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    /// The current counter values.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

/// A purely in-process [`OutcomeCache`]: a mutexed hash map, no persistence.
///
/// This is what the `reproduce` binary installs globally so that figures
/// sharing cells (Fig. 4 and Fig. 5 run the identical comparison sweep and
/// only bucket differently) simulate them once per process. The persistent
/// JSON-lines cache of the experiment service lives in `mapreduce-server`
/// and implements the same trait.
#[derive(Debug, Default)]
pub struct MemoryCache {
    entries: Mutex<HashMap<Fingerprint, SimOutcome>>,
    stats: StatsCounters,
}

impl MemoryCache {
    /// An empty cache.
    pub fn new() -> Self {
        MemoryCache::default()
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl OutcomeCache for MemoryCache {
    fn lookup(&self, fingerprint: Fingerprint) -> Option<SimOutcome> {
        let hit = self
            .entries
            .lock()
            .expect("cache poisoned")
            .get(&fingerprint)
            .cloned();
        self.stats.note_lookup(hit.is_some());
        hit
    }

    fn store(&self, fingerprint: Fingerprint, outcome: &SimOutcome) {
        self.entries
            .lock()
            .expect("cache poisoned")
            .insert(fingerprint, outcome.clone());
        self.stats.note_store();
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }
}

/// The process-wide cache hook consulted by
/// [`crate::runner::run_scheduler_averaged`].
static GLOBAL_CACHE: RwLock<Option<Arc<dyn OutcomeCache>>> = RwLock::new(None);

/// Installs a process-wide outcome cache; every subsequent figure sweep
/// routes its cells through it. Returns the previously installed cache, if
/// any.
pub fn install_global_cache(cache: Arc<dyn OutcomeCache>) -> Option<Arc<dyn OutcomeCache>> {
    GLOBAL_CACHE
        .write()
        .expect("global cache lock poisoned")
        .replace(cache)
}

/// Removes the process-wide cache, returning it.
pub fn clear_global_cache() -> Option<Arc<dyn OutcomeCache>> {
    GLOBAL_CACHE
        .write()
        .expect("global cache lock poisoned")
        .take()
}

/// The currently installed process-wide cache, if any.
pub fn global_cache() -> Option<Arc<dyn OutcomeCache>> {
    GLOBAL_CACHE
        .read()
        .expect("global cache lock poisoned")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorkloadSource;
    use std::path::PathBuf;

    fn outcome(label: &str) -> SimOutcome {
        SimOutcome::new(label.to_string(), 4, vec![], 10, 5, 1, 2, 1, 1)
    }

    #[test]
    fn fingerprints_are_golden_stable() {
        // These hex values pin the canonicalisation (JSON field set, key
        // order, number formatting, hash parameters). If this test fails
        // you have changed what existing persisted caches are keyed by:
        // bump deliberately and document the cache invalidation.
        let scenario = Scenario::scaled(50, 1);
        let fp = cell_fingerprint(SchedulerKind::paper_default(), &scenario, 2015);
        assert_eq!(fp.to_hex(), "4dfab2d8189ae363633735ebce2212c1");
        let fp = cell_fingerprint(SchedulerKind::Fifo, &scenario, 7);
        assert_eq!(fp.to_hex(), "090d7c1b019e60f79c248271d7a00beb");
        let fp = cell_fingerprint(
            SchedulerKind::Mantri,
            &Scenario::streaming(50, 1).with_machines(99),
            7,
        );
        assert_eq!(fp.to_hex(), "4a9515d66d593172c2841fbc72d1231a");
    }

    #[test]
    fn fingerprints_separate_every_cell_dimension() {
        let base = Scenario::scaled(40, 1);
        let fp = |kind: SchedulerKind, scenario: &Scenario, seed: u64| {
            cell_fingerprint(kind, scenario, seed)
        };
        let reference = fp(SchedulerKind::Fifo, &base, 1);
        // Same inputs → same hash.
        assert_eq!(reference, fp(SchedulerKind::Fifo, &base.clone(), 1));
        // Scheduler, parameters, seed, machines, profile and source all
        // reach the hash.
        assert_ne!(reference, fp(SchedulerKind::Fair, &base, 1));
        assert_ne!(
            fp(SchedulerKind::paper_default(), &base, 1),
            fp(
                SchedulerKind::SrptMsC {
                    epsilon: 0.5,
                    r: 3.0
                },
                &base,
                1
            )
        );
        assert_ne!(reference, fp(SchedulerKind::Fifo, &base, 2));
        assert_ne!(
            reference,
            fp(SchedulerKind::Fifo, &base.with_machines(41), 1)
        );
        assert_ne!(
            reference,
            fp(SchedulerKind::Fifo, &Scenario::scaled(41, 1), 1)
        );
        assert_ne!(
            reference,
            fp(
                SchedulerKind::Fifo,
                &base.clone().with_source(WorkloadSource::Streaming),
                1
            )
        );
        assert_ne!(
            reference,
            fp(
                SchedulerKind::Fifo,
                &base.clone().with_source(WorkloadSource::GoogleCsv {
                    path: PathBuf::from("a.csv")
                }),
                1
            )
        );
        // The seed list itself is *not* part of a cell: per-cell identity
        // comes from the concrete seed.
        let mut more_seeds = base.clone();
        more_seeds.seeds = vec![1, 2, 3];
        assert_eq!(reference, fp(SchedulerKind::Fifo, &more_seeds, 1));
        // A fault plan colds the cell; an explicitly empty one does not.
        use mapreduce_sim::{FaultClass, FaultPlan};
        assert_ne!(
            reference,
            fp(
                SchedulerKind::Fifo,
                &base.with_fault(FaultPlan::new(vec![FaultClass::crashes(8, 400.0, 50.0)])),
                1
            )
        );
        assert_eq!(
            reference,
            fp(SchedulerKind::Fifo, &base.with_fault(FaultPlan::none()), 1)
        );
    }

    #[test]
    fn csv_fingerprints_track_file_content() {
        let path =
            std::env::temp_dir().join(format!("mapreduce_fp_csv_{}.csv", std::process::id()));
        std::fs::write(&path, "1000000,,1,0,m,0,u,c,3\n").unwrap();
        let scenario =
            Scenario::scaled(10, 1).with_source(WorkloadSource::GoogleCsv { path: path.clone() });
        let a = cell_fingerprint(SchedulerKind::Fifo, &scenario, 1);
        assert_eq!(a, cell_fingerprint(SchedulerKind::Fifo, &scenario, 1));

        // Editing the file colds its cells: the content hash is part of the
        // fingerprint, not just the path.
        std::fs::write(&path, "1000000,,1,0,m,0,u,c,3\n2000000,,2,0,m,0,u,c,3\n").unwrap();
        let b = cell_fingerprint(SchedulerKind::Fifo, &scenario, 1);
        assert_ne!(a, b);

        // A missing file still fingerprints (the sweep fails later at
        // conversion), distinctly from any readable content.
        std::fs::remove_file(&path).unwrap();
        let c = cell_fingerprint(SchedulerKind::Fifo, &scenario, 1);
        assert_ne!(b, c);
        assert_eq!(c, cell_fingerprint(SchedulerKind::Fifo, &scenario, 1));
    }

    #[test]
    fn memory_cache_roundtrip_and_stats() {
        let cache = MemoryCache::new();
        let fp = Fingerprint::of_bytes(b"cell");
        assert!(cache.lookup(fp).is_none());
        assert!(cache.is_empty());
        let o = outcome("fifo");
        cache.store(fp, &o);
        assert_eq!(cache.lookup(fp), Some(o));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
    }

    #[test]
    fn global_cache_install_and_clear() {
        // Serialised against other global-cache users by taking whatever is
        // there and restoring it afterwards.
        let previous = clear_global_cache();
        assert!(global_cache().is_none());
        let cache = Arc::new(MemoryCache::new());
        assert!(install_global_cache(cache.clone()).is_none());
        assert!(global_cache().is_some());
        let back = clear_global_cache().expect("was installed");
        back.store(Fingerprint::of_bytes(b"x"), &outcome("x"));
        assert_eq!(cache.len(), 1, "handles alias the same cache");
        if let Some(previous) = previous {
            install_global_cache(previous);
        }
    }
}
