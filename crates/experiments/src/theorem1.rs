//! The Theorem-1 / Remark-2 offline experiment: run Algorithm 1 on a
//! bulk-arrival workload and compare every job's flowtime to the analytical
//! bounds.

use crate::runner::{run_scheduler, SchedulerKind};
use crate::scenario::Scenario;
use mapreduce_sched::{theorem1_probability, CompetitiveReport};

/// Output of the Theorem-1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem1Result {
    /// The pessimism factor r used.
    pub r: f64,
    /// The probability Theorem 1 claims for the bound at this r.
    pub claimed_probability: f64,
    /// Measured fraction of jobs within the corrected upper bound.
    pub fraction_within_bound: f64,
    /// Measured fraction of jobs within the verbatim paper bound.
    pub fraction_within_paper_bound: f64,
    /// Largest measured flowtime / corrected bound ratio.
    pub max_bound_ratio: f64,
    /// Empirical competitive ratio of the weighted sum of flowtimes against
    /// the per-job lower bounds (Remark 2 predicts ≤ 2 at zero variance).
    pub weighted_competitive_ratio: f64,
    /// Whether the workload had (near-)zero task-duration variance.
    pub zero_variance: bool,
}

/// Runs Algorithm 1 on the scenario's bulk-arrival workload and evaluates the
/// bounds. `zero_variance` selects the Remark-2 regime (task-duration CV
/// forced to zero).
pub fn run(scenario: &Scenario, r: f64, zero_variance: bool) -> Theorem1Result {
    let scenario = if zero_variance {
        scenario.as_bulk().with_task_cv(0.0)
    } else {
        scenario.as_bulk()
    };
    let seed = scenario.seeds.first().copied().unwrap_or(0);
    let trace = scenario.trace(seed);
    let outcome = run_scheduler(
        SchedulerKind::OfflineSrpt { r },
        &trace,
        scenario.machines,
        seed,
    );
    let report = CompetitiveReport::new(&trace, &outcome, scenario.machines, r);
    Theorem1Result {
        r,
        claimed_probability: theorem1_probability(r),
        fraction_within_bound: report.fraction_within_bound(),
        fraction_within_paper_bound: report.fraction_within_paper_bound(),
        max_bound_ratio: report.max_bound_ratio(),
        weighted_competitive_ratio: report.weighted_competitive_ratio(),
        zero_variance,
    }
}

/// Renders the result as a small report.
pub fn render(result: &Theorem1Result) -> String {
    format!(
        "Theorem 1 / Remark 2 — offline Algorithm 1 on a bulk-arrival trace\n\
         r = {:.1}   zero-variance workload: {}\n\
         claimed probability of the bound          {:>8.3}\n\
         fraction of jobs within corrected bound   {:>8.3}\n\
         fraction of jobs within verbatim bound    {:>8.3}\n\
         max flowtime / bound ratio                {:>8.3}\n\
         weighted competitive ratio vs lower bound {:>8.3}  (Remark 2: <= 2 at zero variance)\n",
        result.r,
        result.zero_variance,
        result.claimed_probability,
        result.fraction_within_bound,
        result.fraction_within_paper_bound,
        result.max_bound_ratio,
        result.weighted_competitive_ratio,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_variance_regime_is_close_to_two_competitive() {
        let result = run(&Scenario::scaled(80, 1), 0.0, true);
        assert!(result.zero_variance);
        assert!(result.fraction_within_bound > 0.5);
        assert!(
            result.weighted_competitive_ratio < 2.5,
            "ratio {}",
            result.weighted_competitive_ratio
        );
        assert!(render(&result).contains("Remark 2"));
    }

    #[test]
    fn noisy_regime_still_reports_sane_numbers() {
        let result = run(&Scenario::scaled(80, 1), 3.0, false);
        assert!(!result.zero_variance);
        assert!(result.claimed_probability > 0.0);
        assert!(result.max_bound_ratio.is_finite());
        assert!((0.0..=1.0).contains(&result.fraction_within_bound));
        assert!(result.fraction_within_paper_bound <= result.fraction_within_bound + 1e-12);
    }
}
