//! Fig. 3 — weighted/unweighted average job flowtime as a function of the
//! cluster size, with ε = 0.6 and r = 3.

use crate::runner::{average_summary, run_scheduler_averaged, SchedulerKind};
use crate::scenario::Scenario;

/// One point of the cluster-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Number of machines in the cluster.
    pub machines: usize,
    /// Unweighted average job flowtime (seconds).
    pub mean_flowtime: f64,
    /// Weighted average job flowtime (seconds).
    pub weighted_mean_flowtime: f64,
}

/// The machine counts swept in the paper (6 000 … 12 000 in steps of 1 000),
/// expressed as fractions of the scenario's base cluster so the sweep also
/// makes sense at reduced scale.
pub fn paper_fractions() -> Vec<f64> {
    (6..=12).map(|i| i as f64 / 12.0).collect()
}

/// Runs the sweep: SRPTMS+C (ε = 0.6, r = 3) on clusters of
/// `fraction · scenario.machines` machines.
pub fn run(scenario: &Scenario, fractions: &[f64]) -> Vec<Fig3Row> {
    fractions
        .iter()
        .map(|&fraction| {
            let machines = ((scenario.machines as f64 * fraction).round() as usize).max(1);
            let sub = scenario.with_machines(machines);
            let kind = SchedulerKind::SrptMsC {
                epsilon: 0.6,
                r: 3.0,
            };
            let outcomes = run_scheduler_averaged(kind, &sub);
            let summary = average_summary(kind, &outcomes);
            Fig3Row {
                machines,
                mean_flowtime: summary.mean,
                weighted_mean_flowtime: summary.weighted_mean,
            }
        })
        .collect()
}

/// Renders the sweep as a text table.
pub fn render(rows: &[Fig3Row]) -> String {
    let mut out = String::from(
        "Fig. 3 — average job flowtime vs number of machines (SRPTMS+C, epsilon = 0.6, r = 3)\n",
    );
    out.push_str(&format!(
        "{:>10} {:>18} {:>24}\n",
        "machines", "avg flowtime (s)", "weighted avg flowtime (s)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>10} {:>18.1} {:>24.1}\n",
            row.machines, row.mean_flowtime, row.weighted_mean_flowtime
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_rows_and_flowtime_does_not_increase_with_machines() {
        let rows = run(&Scenario::scaled(60, 1), &[0.5, 1.0]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].machines < rows[1].machines);
        // More machines never hurt (within a small tolerance for tie-breaks).
        assert!(rows[1].mean_flowtime <= rows[0].mean_flowtime * 1.05);
    }

    #[test]
    fn paper_fractions_cover_6k_to_12k() {
        let f = paper_fractions();
        assert_eq!(f.len(), 7);
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[6] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_lists_machine_counts() {
        let rows = vec![Fig3Row {
            machines: 8000,
            mean_flowtime: 100.0,
            weighted_mean_flowtime: 90.0,
        }];
        assert!(render(&rows).contains("8000"));
    }
}
