//! Simulation results: per-job completion records and run-level summaries.

use crate::state::Slot;
use mapreduce_support::json::{FromJson, JsonError, JsonValue, ToJson};
use mapreduce_workload::JobId;

/// Completion record of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Identity of the job.
    pub job: JobId,
    /// Weight `w_i`.
    pub weight: f64,
    /// Arrival slot `a_i`.
    pub arrival: Slot,
    /// Completion slot `f_i`.
    pub completion: Slot,
    /// Number of map tasks.
    pub num_map_tasks: usize,
    /// Number of reduce tasks.
    pub num_reduce_tasks: usize,
    /// Total copies launched for the job (original attempts + clones +
    /// speculative backups).
    pub copies_launched: usize,
    /// Ground-truth total workload of the job (seconds of work at unit
    /// speed), for utilisation accounting.
    pub true_workload: f64,
}

impl JobRecord {
    /// The flowtime `f_i − a_i` of the job.
    pub fn flowtime(&self) -> Slot {
        self.completion.saturating_sub(self.arrival)
    }

    /// The weighted flowtime `w_i · (f_i − a_i)`.
    pub fn weighted_flowtime(&self) -> f64 {
        self.weight * self.flowtime() as f64
    }

    /// Total number of tasks in the job.
    pub fn num_tasks(&self) -> usize {
        self.num_map_tasks + self.num_reduce_tasks
    }

    /// Number of extra copies beyond the one original attempt per task.
    pub fn extra_copies(&self) -> usize {
        self.copies_launched.saturating_sub(self.num_tasks())
    }
}

impl ToJson for JobRecord {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("job", self.job.to_json()),
            ("weight", self.weight.to_json()),
            ("arrival", self.arrival.to_json()),
            ("completion", self.completion.to_json()),
            ("num_map_tasks", self.num_map_tasks.to_json()),
            ("num_reduce_tasks", self.num_reduce_tasks.to_json()),
            ("copies_launched", self.copies_launched.to_json()),
            ("true_workload", self.true_workload.to_json()),
        ])
    }
}

impl FromJson for JobRecord {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(JobRecord {
            job: JobId::from_json(value.field("job")?)?,
            weight: f64::from_json(value.field("weight")?)?,
            arrival: Slot::from_json(value.field("arrival")?)?,
            completion: Slot::from_json(value.field("completion")?)?,
            num_map_tasks: usize::from_json(value.field("num_map_tasks")?)?,
            num_reduce_tasks: usize::from_json(value.field("num_reduce_tasks")?)?,
            copies_launched: usize::from_json(value.field("copies_launched")?)?,
            true_workload: f64::from_json(value.field("true_workload")?)?,
        })
    }
}

/// Run instrumentation: decision-path work counters and per-stage wall-clock
/// timings.
///
/// These fields describe how much work the *scheduler implementation* did
/// (or how long the host took), not the trajectory — the golden-equivalence
/// suite compares optimized schedulers against frozen references that do
/// strictly more work per decision, and stage timings are host noise by
/// definition. They are therefore carved out of [`SimOutcome`]'s equality in
/// one place: `SimOutcome == SimOutcome` compares every field *except*
/// [`SimOutcome::telemetry`].
///
/// Serialisation stays flat for back-compat: the fields are emitted as
/// top-level keys of the outcome JSON (`decision_instants`,
/// `stage_source_ns`, …), exactly where pre-consolidation documents carried
/// them, and absent keys parse as 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunTelemetry {
    /// Number of decision instants the engine processed (event batches that
    /// reached the scheduling step).
    pub decision_instants: u64,
    /// Largest ranked-candidate prefix any single decision materialised
    /// (reported by prefix-consuming schedulers via
    /// [`crate::ClusterState::note_ranked_prefix`]; 0 for schedulers that
    /// never consume the ranked order).
    pub ranked_prefix_len_max: usize,
    /// Wall-clock nanoseconds spent pulling/admitting jobs from the source,
    /// when the run profiled stages (`SimConfig::profile_stages`); 0
    /// otherwise.
    pub stage_source_ns: u64,
    /// Wall-clock nanoseconds spent delivering/applying the event batches;
    /// 0 unless stages were profiled.
    pub stage_events_ns: u64,
    /// Wall-clock nanoseconds spent in scheduler hooks + decisions + action
    /// application; 0 unless stages were profiled.
    pub stage_decision_ns: u64,
    /// Wall-clock nanoseconds spent capturing/folding completion records;
    /// 0 unless stages were profiled.
    pub stage_metrics_ns: u64,
}

impl RunTelemetry {
    /// The flat JSON keys of the telemetry fields, in emission order.
    const KEYS: [&'static str; 6] = [
        "decision_instants",
        "ranked_prefix_len_max",
        "stage_source_ns",
        "stage_events_ns",
        "stage_decision_ns",
        "stage_metrics_ns",
    ];

    /// The telemetry as flat `(key, value)` JSON fields — the same top-level
    /// keys outcomes carried before the consolidation.
    fn json_fields(&self) -> [(&'static str, JsonValue); 6] {
        let values = [
            self.decision_instants.to_json(),
            self.ranked_prefix_len_max.to_json(),
            self.stage_source_ns.to_json(),
            self.stage_events_ns.to_json(),
            self.stage_decision_ns.to_json(),
            self.stage_metrics_ns.to_json(),
        ];
        let mut iter = Self::KEYS.iter().zip(values);
        std::array::from_fn(|_| {
            let (key, value) = iter.next().expect("KEYS and values have equal length");
            (*key, value)
        })
    }

    /// Reads the flat keys back; any absent key (documents serialised before
    /// the corresponding instrumentation existed) parses as 0.
    fn from_flat_json(value: &JsonValue) -> Result<Self, JsonError> {
        let u64_or_zero = |key: &str| -> Result<u64, JsonError> {
            match value.get(key) {
                Some(v) => u64::from_json(v),
                None => Ok(0),
            }
        };
        Ok(RunTelemetry {
            decision_instants: u64_or_zero("decision_instants")?,
            ranked_prefix_len_max: match value.get("ranked_prefix_len_max") {
                Some(v) => usize::from_json(v)?,
                None => 0,
            },
            stage_source_ns: u64_or_zero("stage_source_ns")?,
            stage_events_ns: u64_or_zero("stage_events_ns")?,
            stage_decision_ns: u64_or_zero("stage_decision_ns")?,
            stage_metrics_ns: u64_or_zero("stage_metrics_ns")?,
        })
    }
}

/// Aggregate outcome of one simulation run.
///
/// Equality intentionally ignores [`SimOutcome::telemetry`] — the single
/// instrumentation carve-out; see [`RunTelemetry`] for why.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Name of the scheduler that produced this outcome.
    pub scheduler: String,
    /// Number of machines in the cluster.
    pub num_machines: usize,
    /// Per-job completion records, in job-id order.
    records: Vec<JobRecord>,
    /// Slot at which the last job completed.
    pub makespan: Slot,
    /// Total machine-slots spent running or holding copies.
    pub busy_machine_slots: u64,
    /// Total number of copies launched across all jobs.
    pub total_copies: usize,
    /// Total number of scheduler invocations.
    pub scheduler_invocations: u64,
    /// Peak number of jobs simultaneously resident in the engine (admitted
    /// from the job source but not yet completed-and-released). Purely a
    /// memory metric derived from the trajectory — identical for streaming
    /// and materialized feeds of the same workload; the difference between
    /// the two modes is what the *source* keeps resident on top of this.
    pub peak_resident_jobs: usize,
    /// High-water mark of simultaneously backed copy-arena slots. Completed
    /// jobs recycle their copy slots, so this tracks the alive window (like
    /// [`SimOutcome::peak_resident_jobs`]) rather than
    /// [`SimOutcome::total_copies`]. Purely a memory metric.
    pub peak_copy_slots: usize,
    /// Machine-slots of progress thrown away by fault-killed copies (elapsed
    /// running time of every copy killed by a [`crate::FaultPlan`] crash).
    /// Part of the trajectory — included in equality. 0 without a fault plan.
    pub wasted_work: u64,
    /// Number of copies killed because their machine crashed. Part of the
    /// trajectory — included in equality. 0 without a fault plan.
    pub copies_killed_by_fault: u64,
    /// Total machine-slots spent down across all machines (crash epochs
    /// only; brown-outs keep the machine in service). Part of the trajectory
    /// — included in equality. 0 without a fault plan.
    pub machine_downtime: u64,
    /// Decision-path work counters and stage wall-clock timings — the single
    /// instrumentation carve-out: every other field participates in
    /// equality, this one never does.
    pub telemetry: RunTelemetry,
}

impl PartialEq for SimOutcome {
    fn eq(&self, other: &Self) -> bool {
        // `telemetry` is deliberately left out — see the type-level docs.
        self.scheduler == other.scheduler
            && self.num_machines == other.num_machines
            && self.records == other.records
            && self.makespan == other.makespan
            && self.busy_machine_slots == other.busy_machine_slots
            && self.total_copies == other.total_copies
            && self.scheduler_invocations == other.scheduler_invocations
            && self.peak_resident_jobs == other.peak_resident_jobs
            && self.peak_copy_slots == other.peak_copy_slots
            && self.wasted_work == other.wasted_work
            && self.copies_killed_by_fault == other.copies_killed_by_fault
            && self.machine_downtime == other.machine_downtime
    }
}

impl SimOutcome {
    /// Builds an outcome from its parts (engine-internal, but public so that
    /// experiment code can synthesise outcomes in tests).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        scheduler: String,
        num_machines: usize,
        records: Vec<JobRecord>,
        makespan: Slot,
        busy_machine_slots: u64,
        total_copies: usize,
        scheduler_invocations: u64,
        peak_resident_jobs: usize,
        peak_copy_slots: usize,
    ) -> Self {
        SimOutcome {
            scheduler,
            num_machines,
            records,
            makespan,
            busy_machine_slots,
            total_copies,
            scheduler_invocations,
            peak_resident_jobs,
            peak_copy_slots,
            // Fault counters default to a fault-free run; the engine assigns
            // them post-construction when a fault plan was active.
            wasted_work: 0,
            copies_killed_by_fault: 0,
            machine_downtime: 0,
            // Instrumentation defaults to "not measured"; the engine fills
            // it in post-construction from its run counters and (when
            // `SimConfig::profile_stages` is set) the stage clock.
            telemetry: RunTelemetry::default(),
        }
    }

    /// Per-job completion records, in job-id order.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Replaces the record set wholesale. The engine's pipelined mode folds
    /// records on a consumer thread and splices the sorted batch in here
    /// after the join; callers must hand over job-id order.
    pub(crate) fn replace_records(&mut self, records: Vec<JobRecord>) {
        self.records = records;
    }

    /// The record of one job, if it exists.
    pub fn record(&self, job: JobId) -> Option<&JobRecord> {
        self.records.iter().find(|r| r.job == job)
    }

    /// Unweighted mean job flowtime (the metric of Figs. 1–3 and 6).
    pub fn mean_flowtime(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.flowtime() as f64)
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Weighted average flowtime `Σ w_i F_i / Σ w_i` (the paper's
    /// "weighted average of job flowtime").
    pub fn weighted_mean_flowtime(&self) -> f64 {
        let total_weight: f64 = self.records.iter().map(|r| r.weight).sum();
        if total_weight == 0.0 {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.weighted_flowtime())
            .sum::<f64>()
            / total_weight
    }

    /// The objective of the paper's optimisation problem: the weighted *sum*
    /// of job flowtimes `Σ w_i (f_i − a_i)`.
    pub fn weighted_sum_flowtime(&self) -> f64 {
        self.records.iter().map(|r| r.weighted_flowtime()).sum()
    }

    /// All flowtimes, in job-id order.
    pub fn flowtimes(&self) -> Vec<Slot> {
        self.records.iter().map(|r| r.flowtime()).collect()
    }

    /// Average cluster utilisation over the run (busy machine-slots divided
    /// by `M · makespan`), in `[0, 1]`... slightly above 1 is impossible by
    /// construction.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy_machine_slots as f64 / (self.num_machines as f64 * self.makespan as f64)
    }

    /// Mean number of copies per task across all jobs (1.0 = no cloning).
    pub fn mean_copies_per_task(&self) -> f64 {
        let tasks: usize = self.records.iter().map(|r| r.num_tasks()).sum();
        if tasks == 0 {
            return 0.0;
        }
        self.total_copies as f64 / tasks as f64
    }
}

impl ToJson for SimOutcome {
    fn to_json(&self) -> JsonValue {
        let trajectory = [
            ("scheduler", self.scheduler.to_json()),
            ("num_machines", self.num_machines.to_json()),
            ("records", self.records.to_json()),
            ("makespan", self.makespan.to_json()),
            ("busy_machine_slots", self.busy_machine_slots.to_json()),
            ("total_copies", self.total_copies.to_json()),
            (
                "scheduler_invocations",
                self.scheduler_invocations.to_json(),
            ),
            ("peak_resident_jobs", self.peak_resident_jobs.to_json()),
            ("peak_copy_slots", self.peak_copy_slots.to_json()),
            ("wasted_work", self.wasted_work.to_json()),
            (
                "copies_killed_by_fault",
                self.copies_killed_by_fault.to_json(),
            ),
            ("machine_downtime", self.machine_downtime.to_json()),
        ];
        JsonValue::object(trajectory.into_iter().chain(self.telemetry.json_fields()))
    }
}

impl FromJson for SimOutcome {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(SimOutcome {
            scheduler: String::from_json(value.field("scheduler")?)?,
            num_machines: usize::from_json(value.field("num_machines")?)?,
            records: Vec::from_json(value.field("records")?)?,
            makespan: Slot::from_json(value.field("makespan")?)?,
            busy_machine_slots: u64::from_json(value.field("busy_machine_slots")?)?,
            total_copies: usize::from_json(value.field("total_copies")?)?,
            scheduler_invocations: u64::from_json(value.field("scheduler_invocations")?)?,
            // Absent in outcomes serialised before the streaming subsystem.
            peak_resident_jobs: match value.get("peak_resident_jobs") {
                Some(v) => usize::from_json(v)?,
                None => 0,
            },
            // Absent in outcomes serialised before the copy-slot free-list.
            peak_copy_slots: match value.get("peak_copy_slots") {
                Some(v) => usize::from_json(v)?,
                None => 0,
            },
            // Absent in outcomes serialised before fault injection.
            wasted_work: match value.get("wasted_work") {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            copies_killed_by_fault: match value.get("copies_killed_by_fault") {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            machine_downtime: match value.get("machine_downtime") {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            // Flat instrumentation keys; each parses as 0 when absent.
            telemetry: RunTelemetry::from_flat_json(value)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(job: u64, weight: f64, arrival: Slot, completion: Slot) -> JobRecord {
        JobRecord {
            job: JobId::new(job),
            weight,
            arrival,
            completion,
            num_map_tasks: 2,
            num_reduce_tasks: 1,
            copies_launched: 4,
            true_workload: 30.0,
        }
    }

    fn outcome() -> SimOutcome {
        let mut o = SimOutcome::new(
            "test".to_string(),
            10,
            vec![record(0, 1.0, 0, 100), record(1, 3.0, 50, 150)],
            150,
            600,
            8,
            42,
            2,
            5,
        );
        o.telemetry.decision_instants = 42;
        o.telemetry.ranked_prefix_len_max = 7;
        o
    }

    #[test]
    fn job_record_derived_quantities() {
        let r = record(0, 2.0, 10, 60);
        assert_eq!(r.flowtime(), 50);
        assert_eq!(r.weighted_flowtime(), 100.0);
        assert_eq!(r.num_tasks(), 3);
        assert_eq!(r.extra_copies(), 1);
    }

    #[test]
    fn outcome_means() {
        let o = outcome();
        assert_eq!(o.records().len(), 2);
        // Flowtimes: 100 and 100.
        assert!((o.mean_flowtime() - 100.0).abs() < 1e-12);
        assert!((o.weighted_mean_flowtime() - 100.0).abs() < 1e-12);
        assert!((o.weighted_sum_flowtime() - 400.0).abs() < 1e-12);
        assert_eq!(o.flowtimes(), vec![100, 100]);
    }

    #[test]
    fn outcome_utilization_and_copies() {
        let o = outcome();
        assert!((o.utilization() - 600.0 / 1500.0).abs() < 1e-12);
        assert!((o.mean_copies_per_task() - 8.0 / 6.0).abs() < 1e-12);
        assert!(o.record(JobId::new(1)).is_some());
        assert!(o.record(JobId::new(9)).is_none());
    }

    #[test]
    fn empty_outcome_is_safe() {
        let o = SimOutcome::new("x".into(), 5, vec![], 0, 0, 0, 0, 0, 0);
        assert_eq!(o.mean_flowtime(), 0.0);
        assert_eq!(o.weighted_mean_flowtime(), 0.0);
        assert_eq!(o.utilization(), 0.0);
        assert_eq!(o.mean_copies_per_task(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let o = outcome();
        let json = o.to_json().to_pretty_string();
        let back = SimOutcome::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, o);
        // Instrumentation counters survive the roundtrip even though `==`
        // ignores them.
        assert_eq!(back.telemetry, o.telemetry);
    }

    #[test]
    fn equality_ignores_instrumentation_counters() {
        let a = outcome();
        let mut b = outcome();
        b.telemetry = RunTelemetry {
            decision_instants: 9_999,
            ranked_prefix_len_max: 1_234,
            stage_source_ns: 1,
            stage_events_ns: 2,
            stage_decision_ns: 3,
            stage_metrics_ns: 4,
        };
        assert_eq!(a, b, "instrumentation must not affect equality");
        b.makespan += 1;
        assert_ne!(a, b, "trajectory fields still must");
    }

    #[test]
    fn fault_counters_are_trajectory_fields() {
        let a = outcome();
        let mut b = outcome();
        b.wasted_work = 17;
        assert_ne!(a, b, "wasted_work is part of the trajectory");
        b.wasted_work = 0;
        b.copies_killed_by_fault = 1;
        assert_ne!(a, b, "copies_killed_by_fault is part of the trajectory");
        b.copies_killed_by_fault = 0;
        b.machine_downtime = 3;
        assert_ne!(a, b, "machine_downtime is part of the trajectory");

        // Roundtrip preserves the counters; legacy documents parse as 0.
        let mut o = outcome();
        o.wasted_work = 5;
        o.copies_killed_by_fault = 2;
        o.machine_downtime = 9;
        let json = o.to_json().to_compact_string();
        let back = SimOutcome::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, o);
        let mut legacy = o.to_json();
        if let JsonValue::Object(map) = &mut legacy {
            for key in ["wasted_work", "copies_killed_by_fault", "machine_downtime"] {
                map.remove(key);
            }
        }
        let back = SimOutcome::from_json(&legacy).unwrap();
        assert_eq!(back.wasted_work, 0);
        assert_eq!(back.copies_killed_by_fault, 0);
        assert_eq!(back.machine_downtime, 0);
    }

    #[test]
    fn stage_timings_roundtrip_and_default() {
        let mut o = outcome();
        o.telemetry.stage_source_ns = 11;
        o.telemetry.stage_events_ns = 22;
        o.telemetry.stage_decision_ns = 33;
        o.telemetry.stage_metrics_ns = 44;
        let json = o.to_json().to_compact_string();
        let back = SimOutcome::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back.telemetry.stage_source_ns, 11);
        assert_eq!(back.telemetry.stage_events_ns, 22);
        assert_eq!(back.telemetry.stage_decision_ns, 33);
        assert_eq!(back.telemetry.stage_metrics_ns, 44);
        // Outcomes serialised before the corresponding instrumentation
        // existed parse as 0 — the keys stay flat, so pre-consolidation
        // documents remain readable.
        let mut legacy = o.to_json();
        if let JsonValue::Object(map) = &mut legacy {
            for key in RunTelemetry::KEYS {
                map.remove(key);
            }
        }
        let back = SimOutcome::from_json(&legacy).unwrap();
        assert_eq!(back.telemetry, RunTelemetry::default());
    }
}
