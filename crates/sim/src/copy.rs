//! Task copies: the unit of execution on a machine.
//!
//! Every launch (original attempt, clone, or speculative backup) creates one
//! copy. A copy occupies exactly one machine from the slot it is launched
//! until it finishes or is cancelled. Reduce copies launched before their
//! job's Map phase has completed sit in [`CopyPhase::WaitingForMapPhase`] —
//! they hold their machine (as in the offline algorithm of Section IV) but
//! make no progress until the precedence constraint is satisfied.
//!
//! Copies are stored struct-of-arrays: the fields the per-decision scans
//! touch (phase, start, duration, sequence — everything behind
//! [`CopyRef::progress`], [`CopyRef::remaining`] and the event liveness
//! check) live in one dense [`HotCopy`] table, while the fields only read on
//! task completion or in tests ([`ColdCopy`]: owning task, launch slot, end
//! slot) live in a parallel table the hot scans never pull into cache.

use crate::state::Slot;
use mapreduce_workload::TaskId;
use std::fmt;

/// Identifier of a single task copy, unique within one simulation run.
///
/// Ids are allocated densely in launch order by the run's [`CopyArena`], so a
/// `CopyId` doubles as the copy's arena index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CopyId(pub u64);

impl fmt::Display for CopyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Lifecycle phase of a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPhase {
    /// The copy occupies a machine but cannot progress because the job's Map
    /// phase has not finished yet (only possible for reduce copies).
    WaitingForMapPhase,
    /// The copy is processing; it will finish at its recorded finish slot
    /// unless its task completes first through a sibling copy.
    Running,
    /// The copy finished and its result was used for the task.
    Finished,
    /// The copy was cancelled because a sibling copy finished first (or a
    /// scheduler action killed it).
    Cancelled,
}

/// Sentinel for "no slot recorded" in the packed hot table (`Slot` is never
/// `u64::MAX` in a run that completes — the horizon check fires long before).
const NO_SLOT: Slot = Slot::MAX;

/// The per-copy fields every hot path touches: straggler-detection scans
/// (progress / remaining / elapsed), the event liveness check (seq, phase,
/// finish slot) and cancellation. 32 bytes — two copies per cache line,
/// against 80-byte AoS records before the split.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HotCopy {
    /// Current lifecycle phase.
    phase: CopyPhase,
    /// Slot at which the copy started processing ([`NO_SLOT`] while waiting;
    /// equals the launch slot except for reduce copies that had to wait).
    started_at: Slot,
    /// Number of slots of processing this copy needs once started.
    duration: Slot,
    /// Run-unique allocation sequence number, assigned by the arena in
    /// launch order. Copy *slots* ([`CopyId`]) are recycled once their job
    /// completes, so the sequence — not the id — orders same-slot finish
    /// events and validates queued events against slot reuse.
    seq: u64,
}

/// The per-copy fields only read at task completion (busy-slot accounting),
/// by hand-written tests, or never on the scan path: kept out of the hot
/// table so detection scans don't drag them through cache.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ColdCopy {
    /// The task this copy belongs to.
    task: TaskId,
    /// Slot at which the copy was launched (machine occupied from here on).
    launched_at: Slot,
    /// Slot at which the copy left the machine (finished or cancelled).
    ended_at: Option<Slot>,
}

/// Read-only view of one copy, resolving the hot and cold halves of the
/// split storage. Holding a `CopyRef` costs two pointers; only the accessors
/// actually dereference, so hot-only queries never load the cold record.
#[derive(Debug, Clone, Copy)]
pub struct CopyRef<'a> {
    hot: &'a HotCopy,
    cold: &'a ColdCopy,
}

impl<'a> CopyRef<'a> {
    /// The task this copy belongs to.
    pub fn task(&self) -> TaskId {
        self.cold.task
    }

    /// Slot at which the copy was launched (machine occupied from here on).
    pub fn launched_at(&self) -> Slot {
        self.cold.launched_at
    }

    /// Slot at which the copy started processing (`None` while waiting for
    /// the Map phase).
    pub fn started_at(&self) -> Option<Slot> {
        match self.hot.started_at {
            NO_SLOT => None,
            s => Some(s),
        }
    }

    /// Number of slots of processing this copy needs once started.
    pub fn duration(&self) -> Slot {
        self.hot.duration
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> CopyPhase {
        self.hot.phase
    }

    /// Slot at which the copy left the machine (finished or cancelled).
    pub fn ended_at(&self) -> Option<Slot> {
        self.cold.ended_at
    }

    /// Run-unique allocation sequence number (launch order). Slots are
    /// recycled, sequences never are.
    pub fn seq(&self) -> u64 {
        self.hot.seq
    }

    /// Whether the copy currently occupies a machine.
    pub fn is_active(&self) -> bool {
        matches!(
            self.hot.phase,
            CopyPhase::WaitingForMapPhase | CopyPhase::Running
        )
    }

    /// The slot at which this copy will finish, if it is running and nothing
    /// cancels it.
    pub fn finish_slot(&self) -> Option<Slot> {
        match (self.hot.phase, self.hot.started_at) {
            (CopyPhase::Running, NO_SLOT) => None,
            (CopyPhase::Running, start) => Some(start + self.hot.duration),
            _ => None,
        }
    }

    /// Slots of processing completed by `now` (zero while waiting).
    pub fn elapsed(&self, now: Slot) -> Slot {
        match (self.hot.phase, self.hot.started_at) {
            (_, NO_SLOT) => 0,
            (CopyPhase::Running, start) => now.saturating_sub(start).min(self.hot.duration),
            (CopyPhase::Finished, _) => self.hot.duration,
            _ => 0,
        }
    }

    /// Fraction of this copy's work completed by `now`, in `[0, 1]`.
    ///
    /// This mirrors the per-task progress score a real MapReduce system
    /// reports and is what detection-based baselines (Mantri, LATE) consume.
    pub fn progress(&self, now: Slot) -> f64 {
        if self.hot.duration == 0 {
            return 1.0;
        }
        self.elapsed(now) as f64 / self.hot.duration as f64
    }

    /// Estimated remaining processing slots at `now`, assuming the copy keeps
    /// its current rate (exact in this simulator).
    pub fn remaining(&self, now: Slot) -> Slot {
        match self.hot.phase {
            CopyPhase::Finished => 0,
            CopyPhase::Cancelled => 0,
            CopyPhase::WaitingForMapPhase => self.hot.duration,
            CopyPhase::Running => self.hot.duration.saturating_sub(self.elapsed(now)),
        }
    }
}

/// A task's copy-id list with inline storage for the common cases.
///
/// Almost every task launches exactly one copy, and cloned tasks usually stay
/// at two; a heap `Vec` per task means one malloc/free per task for a single
/// 8-byte id. The list stores up to two ids inline and spills to a `Vec` only
/// from the third copy on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CopyList {
    /// Up to two ids stored inline (`len` of them are valid).
    Inline { buf: [CopyId; 2], len: u8 },
    /// Three or more ids.
    Spilled(Vec<CopyId>),
}

impl Default for CopyList {
    fn default() -> Self {
        CopyList::Inline {
            buf: [CopyId(0); 2],
            len: 0,
        }
    }
}

impl CopyList {
    /// The ids in launch order.
    pub(crate) fn as_slice(&self) -> &[CopyId] {
        match self {
            CopyList::Inline { buf, len } => &buf[..*len as usize],
            CopyList::Spilled(v) => v,
        }
    }

    /// Appends an id.
    pub(crate) fn push(&mut self, id: CopyId) {
        match self {
            CopyList::Inline { buf, len } if (*len as usize) < buf.len() => {
                buf[*len as usize] = id;
                *len += 1;
            }
            CopyList::Inline { buf, len } => {
                let mut v = Vec::with_capacity(4);
                v.extend_from_slice(&buf[..*len as usize]);
                v.push(id);
                *self = CopyList::Spilled(v);
            }
            CopyList::Spilled(v) => v.push(id),
        }
    }
}

/// Run-level storage of every *live* copy, indexed by [`CopyId`], with a
/// free-list over released slots.
///
/// Copies used to live in per-task `Vec`s, which made resolving a
/// `CopyFinish` event a linear `find` over the task's copies. The arena makes
/// it a single slice index: [`CopyArena::get`] is the copy. Tasks keep only
/// small `CopyId` slices ([`crate::state::TaskState::copies`]).
///
/// # Slot recycling
///
/// The arena used to grow monotonically — `O(total copies)` memory, the last
/// whole-workload memory term of a streaming run. The engine now
/// [frees](CopyArena::free) every copy slot of a job the moment the job
/// completes (its records are captured first), and the allocators reuse
/// freed slots LIFO, so the slot table is bounded by the **peak alive
/// window** ([`CopyArena::peak_slots`]) rather than the run length. Two
/// consequences:
///
/// * a [`CopyId`] names a *slot*, not a copy-for-all-time: once a job
///   completes, its ids may be handed to new copies. Every id reachable
///   through live task state ([`crate::state::TaskState::copies`]) is
///   current, so schedulers are unaffected;
/// * the run-unique launch order lives in [`CopyRef::seq`], which is what
///   orders same-slot finish events and validates queued events against slot
///   reuse (the trajectory is bit-identical to the non-recycling arena,
///   whose dense ids equalled the sequence numbers).
#[derive(Debug, Default, Clone)]
pub struct CopyArena {
    /// Scan-path fields, one dense record per slot.
    hot: Vec<HotCopy>,
    /// Completion-path fields, parallel to `hot`.
    cold: Vec<ColdCopy>,
    /// Released slot indices, reused LIFO.
    free: Vec<u64>,
    /// Copies ever allocated; doubles as the next allocation's sequence.
    next_seq: u64,
}

impl CopyArena {
    /// An empty arena.
    pub fn new() -> Self {
        CopyArena::default()
    }

    /// Number of slots currently backing the arena (the slot-table
    /// high-water mark — slots are reused, never returned to the allocator).
    pub fn len(&self) -> usize {
        self.hot.len()
    }

    /// Whether no copy has ever been allocated.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Total number of copies ever allocated (the run's copy count; freed
    /// slots keep contributing).
    pub fn total_allocated(&self) -> u64 {
        self.next_seq
    }

    /// Number of slots currently holding a live (not freed) copy.
    pub fn live_slots(&self) -> usize {
        self.hot.len() - self.free.len()
    }

    /// High-water mark of simultaneously backed slots: the memory footprint
    /// of the arena is `peak_slots` hot + cold records, bounded by the peak
    /// alive window of the run rather than its total copy count.
    pub fn peak_slots(&self) -> usize {
        // The slot table only grows when no freed slot is available, so its
        // length *is* the high-water mark.
        self.hot.len()
    }

    /// The id the next allocation will receive (a recycled slot if one is
    /// free, otherwise a fresh one).
    pub fn next_id(&self) -> CopyId {
        match self.free.last() {
            Some(&slot) => CopyId(slot),
            None => CopyId(self.hot.len() as u64),
        }
    }

    /// Stores one copy in a recycled or fresh slot and returns its id and
    /// freshly assigned sequence.
    fn alloc(&mut self, hot: HotCopy, cold: ColdCopy) -> (CopyId, u64) {
        let seq = hot.seq;
        self.next_seq += 1;
        match self.free.pop() {
            Some(slot) => {
                self.hot[slot as usize] = hot;
                self.cold[slot as usize] = cold;
                (CopyId(slot), seq)
            }
            None => {
                let slot = self.hot.len() as u64;
                self.hot.push(hot);
                self.cold.push(cold);
                (CopyId(slot), seq)
            }
        }
    }

    /// Allocates a copy that starts processing immediately, returning its id
    /// and run-unique sequence (the event the caller queues carries both —
    /// no separate read-back).
    pub fn alloc_running(
        &mut self,
        task: TaskId,
        launched_at: Slot,
        duration: Slot,
    ) -> (CopyId, u64) {
        self.alloc(
            HotCopy {
                phase: CopyPhase::Running,
                started_at: launched_at,
                duration,
                seq: self.next_seq,
            },
            ColdCopy {
                task,
                launched_at,
                ended_at: None,
            },
        )
    }

    /// Allocates a copy that waits for the Map phase of its job (holding its
    /// machine without progressing), returning its id and sequence.
    pub fn alloc_waiting(
        &mut self,
        task: TaskId,
        launched_at: Slot,
        duration: Slot,
    ) -> (CopyId, u64) {
        self.alloc(
            HotCopy {
                phase: CopyPhase::WaitingForMapPhase,
                started_at: NO_SLOT,
                duration,
                seq: self.next_seq,
            },
            ColdCopy {
                task,
                launched_at,
                ended_at: None,
            },
        )
    }

    /// Marks a running copy finished at `at` (its result was used).
    pub(crate) fn finish(&mut self, id: CopyId, at: Slot) {
        self.hot[id.0 as usize].phase = CopyPhase::Finished;
        self.cold[id.0 as usize].ended_at = Some(at);
    }

    /// Marks an active copy cancelled at `at`.
    pub(crate) fn cancel(&mut self, id: CopyId, at: Slot) {
        self.hot[id.0 as usize].phase = CopyPhase::Cancelled;
        self.cold[id.0 as usize].ended_at = Some(at);
    }

    /// Transitions a waiting copy to running at `at` and returns the slot it
    /// will finish in.
    ///
    /// # Panics
    /// Panics (debug builds) if the copy is not waiting.
    pub(crate) fn start_running(&mut self, id: CopyId, at: Slot) -> Slot {
        let hot = &mut self.hot[id.0 as usize];
        debug_assert_eq!(
            hot.phase,
            CopyPhase::WaitingForMapPhase,
            "only waiting copies can start running"
        );
        hot.phase = CopyPhase::Running;
        hot.started_at = at;
        at + hot.duration
    }

    /// Releases a slot for reuse. The engine calls this for every copy of a
    /// job when the job completes; the stale record stays readable until the
    /// slot is reallocated (queued events that still reference it are
    /// rejected by their sequence check).
    ///
    /// # Panics
    /// Panics (debug builds) if the copy still occupies a machine or the
    /// slot is already free.
    pub(crate) fn free(&mut self, id: CopyId) {
        debug_assert!(!self.get(id).is_active(), "freeing an active copy");
        debug_assert!(!self.free.contains(&id.0), "double free of copy slot {id}");
        self.free.push(id.0);
    }

    /// The copy currently held by the slot.
    ///
    /// # Panics
    /// Panics if the slot was never allocated by this arena.
    pub fn get(&self, id: CopyId) -> CopyRef<'_> {
        CopyRef {
            hot: &self.hot[id.0 as usize],
            cold: &self.cold[id.0 as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::{JobId, Phase};

    fn task() -> TaskId {
        TaskId::new(JobId::new(0), Phase::Map, 0)
    }

    #[test]
    fn running_copy_progress_and_finish() {
        let mut arena = CopyArena::new();
        let (id, _) = arena.alloc_running(task(), 10, 20);
        let c = arena.get(id);
        assert!(c.is_active());
        assert_eq!(c.phase(), CopyPhase::Running);
        assert_eq!(c.task(), task());
        assert_eq!(c.launched_at(), 10);
        assert_eq!(c.started_at(), Some(10));
        assert_eq!(c.duration(), 20);
        assert_eq!(c.finish_slot(), Some(30));
        assert_eq!(c.elapsed(10), 0);
        assert_eq!(c.elapsed(15), 5);
        assert_eq!(c.elapsed(100), 20);
        assert!((c.progress(20) - 0.5).abs() < 1e-12);
        assert_eq!(c.remaining(15), 15);
        assert_eq!(c.ended_at(), None);
    }

    #[test]
    fn waiting_copy_makes_no_progress_until_started() {
        let mut arena = CopyArena::new();
        let (id, _) = arena.alloc_waiting(task(), 5, 8);
        {
            let c = arena.get(id);
            assert!(c.is_active());
            assert_eq!(c.phase(), CopyPhase::WaitingForMapPhase);
            assert_eq!(c.started_at(), None);
            assert_eq!(c.finish_slot(), None);
            assert_eq!(c.elapsed(50), 0);
            assert_eq!(c.progress(50), 0.0);
            assert_eq!(c.remaining(50), 8);
        }
        // Map phase completes at 12: the copy starts and finishes at 20.
        let finish = arena.start_running(id, 12);
        assert_eq!(finish, 20);
        let c = arena.get(id);
        assert_eq!(c.phase(), CopyPhase::Running);
        assert_eq!(c.started_at(), Some(12));
        assert_eq!(c.finish_slot(), Some(20));
        assert_eq!(c.launched_at(), 5, "launch slot is unchanged by the start");
    }

    #[test]
    fn finished_copy_is_complete() {
        let mut arena = CopyArena::new();
        let (id, _) = arena.alloc_running(task(), 0, 10);
        arena.finish(id, 10);
        let c = arena.get(id);
        assert!(!c.is_active());
        assert_eq!(c.phase(), CopyPhase::Finished);
        assert_eq!(c.ended_at(), Some(10));
        assert_eq!(c.progress(10), 1.0);
        assert_eq!(c.remaining(10), 0);
        assert_eq!(
            c.finish_slot(),
            None,
            "finished copies have no pending finish"
        );
    }

    #[test]
    fn cancelled_copy_is_inactive() {
        let mut arena = CopyArena::new();
        let (id, _) = arena.alloc_running(task(), 0, 10);
        arena.cancel(id, 3);
        let c = arena.get(id);
        assert!(!c.is_active());
        assert_eq!(c.phase(), CopyPhase::Cancelled);
        assert_eq!(c.ended_at(), Some(3));
        assert_eq!(c.remaining(5), 0);
        assert_eq!(c.elapsed(5), 0, "cancelled copies report no progress");
    }

    #[test]
    fn zero_duration_copy_has_full_progress() {
        let mut arena = CopyArena::new();
        let (id, _) = arena.alloc_running(task(), 0, 0);
        assert_eq!(arena.get(id).progress(0), 1.0);
    }

    #[test]
    fn display_of_copy_id() {
        assert_eq!(CopyId(7).to_string(), "c7");
    }

    #[test]
    fn arena_allocates_dense_ids_and_sequences() {
        let mut arena = CopyArena::new();
        assert!(arena.is_empty());
        let (id0, seq0) = arena.alloc_running(task(), 0, 10);
        let (id1, seq1) = arena.alloc_waiting(task(), 3, 5);
        assert_eq!((id0, id1), (CopyId(0), CopyId(1)));
        assert_eq!((seq0, seq1), (0, 1));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.total_allocated(), 2);
        assert_eq!(arena.live_slots(), 2);
        assert_eq!(arena.get(id1).launched_at(), 3);
        assert_eq!(arena.get(id1).seq(), 1);
    }

    #[test]
    fn arena_recycles_freed_slots_with_fresh_sequences() {
        let mut arena = CopyArena::new();
        let (id0, _) = arena.alloc_running(task(), 0, 10);
        let (id1, _) = arena.alloc_running(task(), 0, 20);
        assert_eq!(arena.get(id0).seq(), 0);
        assert_eq!(arena.get(id1).seq(), 1);

        // End and free the first copy: its slot is handed back out, the
        // sequence keeps counting, and the slot table does not grow.
        arena.finish(id0, 10);
        arena.free(id0);
        assert_eq!(arena.live_slots(), 1);
        assert_eq!(arena.next_id(), id0);
        let (id2, seq2) = arena.alloc_running(task(), 12, 5);
        assert_eq!(id2, id0, "freed slot must be reused");
        assert_eq!(seq2, 2, "sequence is never reused");
        assert_eq!(arena.get(id2).seq(), 2);
        assert_eq!(arena.get(id2).launched_at(), 12);
        assert_eq!(arena.get(id2).ended_at(), None, "cold record is reset too");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.peak_slots(), 2);
        assert_eq!(arena.total_allocated(), 3);
        assert_eq!(arena.live_slots(), 2);
        assert!(!arena.is_empty());
    }
}
