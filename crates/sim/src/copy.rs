//! Task copies: the unit of execution on a machine.
//!
//! Every launch (original attempt, clone, or speculative backup) creates one
//! [`CopyInfo`]. A copy occupies exactly one machine from the slot it is
//! launched until it finishes or is cancelled. Reduce copies launched before
//! their job's Map phase has completed sit in [`CopyPhase::WaitingForMapPhase`]
//! — they hold their machine (as in the offline algorithm of Section IV) but
//! make no progress until the precedence constraint is satisfied.

use crate::state::Slot;
use mapreduce_workload::TaskId;
use std::fmt;

/// Identifier of a single task copy, unique within one simulation run.
///
/// Ids are allocated densely in launch order by the run's [`CopyArena`], so a
/// `CopyId` doubles as the copy's arena index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CopyId(pub u64);

impl fmt::Display for CopyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Lifecycle phase of a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPhase {
    /// The copy occupies a machine but cannot progress because the job's Map
    /// phase has not finished yet (only possible for reduce copies).
    WaitingForMapPhase,
    /// The copy is processing; it will finish at its recorded finish slot
    /// unless its task completes first through a sibling copy.
    Running,
    /// The copy finished and its result was used for the task.
    Finished,
    /// The copy was cancelled because a sibling copy finished first (or a
    /// scheduler action killed it).
    Cancelled,
}

/// Full description of one copy.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyInfo {
    /// Identifier of the copy.
    pub id: CopyId,
    /// The task this copy belongs to.
    pub task: TaskId,
    /// Slot at which the copy was launched (machine occupied from here on).
    pub launched_at: Slot,
    /// Slot at which the copy started processing (equals `launched_at` except
    /// for reduce copies that had to wait for the Map phase).
    pub started_at: Option<Slot>,
    /// Number of slots of processing this copy needs once started.
    pub duration: Slot,
    /// Current lifecycle phase.
    pub phase: CopyPhase,
    /// Slot at which the copy left the machine (finished or cancelled).
    pub ended_at: Option<Slot>,
    /// Run-unique allocation sequence number, assigned by
    /// [`CopyArena::alloc`] in launch order. Copy *slots* ([`CopyId`]) are
    /// recycled once their job completes, so the sequence — not the id —
    /// orders same-slot finish events and validates queued events against
    /// slot reuse.
    seq: u64,
}

impl CopyInfo {
    /// Creates a copy that starts processing immediately. The allocation
    /// sequence is assigned when the copy enters a [`CopyArena`].
    pub(crate) fn running(id: CopyId, task: TaskId, launched_at: Slot, duration: Slot) -> Self {
        CopyInfo {
            id,
            task,
            launched_at,
            started_at: Some(launched_at),
            duration,
            phase: CopyPhase::Running,
            ended_at: None,
            seq: id.0,
        }
    }

    /// Creates a copy that waits for the Map phase of its job. The allocation
    /// sequence is assigned when the copy enters a [`CopyArena`].
    pub(crate) fn waiting(id: CopyId, task: TaskId, launched_at: Slot, duration: Slot) -> Self {
        CopyInfo {
            id,
            task,
            launched_at,
            started_at: None,
            duration,
            phase: CopyPhase::WaitingForMapPhase,
            ended_at: None,
            seq: id.0,
        }
    }

    /// Run-unique allocation sequence number (launch order). Slots are
    /// recycled, sequences never are.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Whether the copy currently occupies a machine.
    pub fn is_active(&self) -> bool {
        matches!(
            self.phase,
            CopyPhase::WaitingForMapPhase | CopyPhase::Running
        )
    }

    /// The slot at which this copy will finish, if it is running and nothing
    /// cancels it.
    pub fn finish_slot(&self) -> Option<Slot> {
        match (self.phase, self.started_at) {
            (CopyPhase::Running, Some(start)) => Some(start + self.duration),
            _ => None,
        }
    }

    /// Slots of processing completed by `now` (zero while waiting).
    pub fn elapsed(&self, now: Slot) -> Slot {
        match (self.phase, self.started_at) {
            (CopyPhase::Running, Some(start)) => now.saturating_sub(start).min(self.duration),
            (CopyPhase::Finished, Some(_)) => self.duration,
            _ => 0,
        }
    }

    /// Fraction of this copy's work completed by `now`, in `[0, 1]`.
    ///
    /// This mirrors the per-task progress score a real MapReduce system
    /// reports and is what detection-based baselines (Mantri, LATE) consume.
    pub fn progress(&self, now: Slot) -> f64 {
        if self.duration == 0 {
            return 1.0;
        }
        self.elapsed(now) as f64 / self.duration as f64
    }

    /// Estimated remaining processing slots at `now`, assuming the copy keeps
    /// its current rate (exact in this simulator).
    pub fn remaining(&self, now: Slot) -> Slot {
        match self.phase {
            CopyPhase::Finished => 0,
            CopyPhase::Cancelled => 0,
            CopyPhase::WaitingForMapPhase => self.duration,
            CopyPhase::Running => self.duration.saturating_sub(self.elapsed(now)),
        }
    }
}

/// A task's copy-id list with inline storage for the common cases.
///
/// Almost every task launches exactly one copy, and cloned tasks usually stay
/// at two; a heap `Vec` per task means one malloc/free per task for a single
/// 8-byte id. The list stores up to two ids inline and spills to a `Vec` only
/// from the third copy on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CopyList {
    /// Up to two ids stored inline (`len` of them are valid).
    Inline { buf: [CopyId; 2], len: u8 },
    /// Three or more ids.
    Spilled(Vec<CopyId>),
}

impl Default for CopyList {
    fn default() -> Self {
        CopyList::Inline {
            buf: [CopyId(0); 2],
            len: 0,
        }
    }
}

impl CopyList {
    /// The ids in launch order.
    pub(crate) fn as_slice(&self) -> &[CopyId] {
        match self {
            CopyList::Inline { buf, len } => &buf[..*len as usize],
            CopyList::Spilled(v) => v,
        }
    }

    /// Appends an id.
    pub(crate) fn push(&mut self, id: CopyId) {
        match self {
            CopyList::Inline { buf, len } if (*len as usize) < buf.len() => {
                buf[*len as usize] = id;
                *len += 1;
            }
            CopyList::Inline { buf, len } => {
                let mut v = Vec::with_capacity(4);
                v.extend_from_slice(&buf[..*len as usize]);
                v.push(id);
                *self = CopyList::Spilled(v);
            }
            CopyList::Spilled(v) => v.push(id),
        }
    }
}

/// Run-level storage of every *live* [`CopyInfo`], indexed by [`CopyId`],
/// with a free-list over released slots.
///
/// Copies used to live in per-task `Vec<CopyInfo>`s, which made resolving a
/// `CopyFinish` event a linear `find` over the task's copies. The arena makes
/// it a single slice index: `arena[id]` is the copy. Tasks keep only small
/// `CopyId` slices ([`crate::state::TaskState::copies`]).
///
/// # Slot recycling
///
/// The arena used to grow monotonically — `O(total copies)` memory, the last
/// whole-workload memory term of a streaming run. The engine now
/// [frees](CopyArena::free) every copy slot of a job the moment the job
/// completes (its records are captured first), and [`CopyArena::alloc`]
/// reuses freed slots LIFO, so the slot table is bounded by the **peak alive
/// window** ([`CopyArena::peak_slots`]) rather than the run length. Two
/// consequences:
///
/// * a [`CopyId`] names a *slot*, not a copy-for-all-time: once a job
///   completes, its ids may be handed to new copies. Every id reachable
///   through live task state ([`crate::state::TaskState::copies`]) is
///   current, so schedulers are unaffected;
/// * the run-unique launch order lives in [`CopyInfo::seq`], which is what
///   orders same-slot finish events and validates queued events against slot
///   reuse (the trajectory is bit-identical to the non-recycling arena,
///   whose dense ids equalled the sequence numbers).
#[derive(Debug, Default, Clone)]
pub struct CopyArena {
    copies: Vec<CopyInfo>,
    /// Released slot indices, reused LIFO.
    free: Vec<u64>,
    /// Copies ever allocated; doubles as the next allocation's sequence.
    next_seq: u64,
}

impl CopyArena {
    /// An empty arena.
    pub fn new() -> Self {
        CopyArena::default()
    }

    /// Number of slots currently backing the arena (the slot-table
    /// high-water mark — slots are reused, never returned to the allocator).
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// Whether no copy has ever been allocated.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Total number of copies ever allocated (the run's copy count; freed
    /// slots keep contributing).
    pub fn total_allocated(&self) -> u64 {
        self.next_seq
    }

    /// Number of slots currently holding a live (not freed) copy.
    pub fn live_slots(&self) -> usize {
        self.copies.len() - self.free.len()
    }

    /// High-water mark of simultaneously backed slots: the memory footprint
    /// of the arena is `peak_slots × size_of::<CopyInfo>()`, bounded by the
    /// peak alive window of the run rather than its total copy count.
    pub fn peak_slots(&self) -> usize {
        // The slot table only grows when no freed slot is available, so its
        // length *is* the high-water mark.
        self.copies.len()
    }

    /// The id the next allocation will receive (a recycled slot if one is
    /// free, otherwise a fresh one).
    pub fn next_id(&self) -> CopyId {
        match self.free.last() {
            Some(&slot) => CopyId(slot),
            None => CopyId(self.copies.len() as u64),
        }
    }

    /// Stores a copy, assigns its allocation sequence, and returns its id.
    ///
    /// # Panics
    /// Panics (debug builds) if the copy's recorded id is not
    /// [`CopyArena::next_id`] — the engine allocates ids through it.
    pub fn alloc(&mut self, mut copy: CopyInfo) -> CopyId {
        debug_assert_eq!(copy.id, self.next_id(), "copy ids must come from next_id");
        copy.seq = self.next_seq;
        self.next_seq += 1;
        let id = copy.id;
        match self.free.pop() {
            Some(slot) => self.copies[slot as usize] = copy,
            None => self.copies.push(copy),
        }
        id
    }

    /// Releases a slot for reuse. The engine calls this for every copy of a
    /// job when the job completes; the stale record stays readable until the
    /// slot is reallocated (queued events that still reference it are
    /// rejected by their sequence check).
    ///
    /// # Panics
    /// Panics (debug builds) if the copy still occupies a machine or the
    /// slot is already free.
    pub(crate) fn free(&mut self, id: CopyId) {
        debug_assert!(
            !self.copies[id.0 as usize].is_active(),
            "freeing an active copy"
        );
        debug_assert!(!self.free.contains(&id.0), "double free of copy slot {id}");
        self.free.push(id.0);
    }

    /// The copy currently held by the slot.
    ///
    /// # Panics
    /// Panics if the slot was never allocated by this arena.
    pub fn get(&self, id: CopyId) -> &CopyInfo {
        &self.copies[id.0 as usize]
    }

    /// Mutable access to the copy currently held by the slot.
    ///
    /// # Panics
    /// Panics if the slot was never allocated by this arena.
    pub(crate) fn get_mut(&mut self, id: CopyId) -> &mut CopyInfo {
        &mut self.copies[id.0 as usize]
    }

    /// Every backed slot in slot order. Freed slots still show their stale
    /// record; live task state never references them.
    pub fn as_slice(&self) -> &[CopyInfo] {
        &self.copies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::{JobId, Phase};

    fn task() -> TaskId {
        TaskId::new(JobId::new(0), Phase::Map, 0)
    }

    #[test]
    fn running_copy_progress_and_finish() {
        let c = CopyInfo::running(CopyId(1), task(), 10, 20);
        assert!(c.is_active());
        assert_eq!(c.finish_slot(), Some(30));
        assert_eq!(c.elapsed(10), 0);
        assert_eq!(c.elapsed(15), 5);
        assert_eq!(c.elapsed(100), 20);
        assert!((c.progress(20) - 0.5).abs() < 1e-12);
        assert_eq!(c.remaining(15), 15);
    }

    #[test]
    fn waiting_copy_makes_no_progress() {
        let c = CopyInfo::waiting(CopyId(2), task(), 5, 8);
        assert!(c.is_active());
        assert_eq!(c.finish_slot(), None);
        assert_eq!(c.elapsed(50), 0);
        assert_eq!(c.progress(50), 0.0);
        assert_eq!(c.remaining(50), 8);
    }

    #[test]
    fn finished_copy_is_complete() {
        let mut c = CopyInfo::running(CopyId(3), task(), 0, 10);
        c.phase = CopyPhase::Finished;
        c.ended_at = Some(10);
        assert!(!c.is_active());
        assert_eq!(c.progress(10), 1.0);
        assert_eq!(c.remaining(10), 0);
    }

    #[test]
    fn cancelled_copy_is_inactive() {
        let mut c = CopyInfo::running(CopyId(4), task(), 0, 10);
        c.phase = CopyPhase::Cancelled;
        c.ended_at = Some(3);
        assert!(!c.is_active());
        assert_eq!(c.remaining(5), 0);
    }

    #[test]
    fn zero_duration_copy_has_full_progress() {
        let c = CopyInfo::running(CopyId(5), task(), 0, 0);
        assert_eq!(c.progress(0), 1.0);
    }

    #[test]
    fn display_of_copy_id() {
        assert_eq!(CopyId(7).to_string(), "c7");
    }

    #[test]
    fn arena_allocates_dense_ids() {
        let mut arena = CopyArena::new();
        assert!(arena.is_empty());
        let id0 = arena.alloc(CopyInfo::running(arena.next_id(), task(), 0, 10));
        let id1 = arena.alloc(CopyInfo::waiting(arena.next_id(), task(), 3, 5));
        assert_eq!((id0, id1), (CopyId(0), CopyId(1)));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.total_allocated(), 2);
        assert_eq!(arena.live_slots(), 2);
        assert_eq!(arena.get(id1).launched_at, 3);
        assert_eq!(arena.as_slice().len(), 2);
        arena.get_mut(id0).phase = CopyPhase::Finished;
        assert_eq!(arena.get(id0).phase, CopyPhase::Finished);
    }

    #[test]
    fn arena_recycles_freed_slots_with_fresh_sequences() {
        let mut arena = CopyArena::new();
        let id0 = arena.alloc(CopyInfo::running(arena.next_id(), task(), 0, 10));
        let id1 = arena.alloc(CopyInfo::running(arena.next_id(), task(), 0, 20));
        assert_eq!(arena.get(id0).seq(), 0);
        assert_eq!(arena.get(id1).seq(), 1);

        // End and free the first copy: its slot is handed back out, the
        // sequence keeps counting, and the slot table does not grow.
        arena.get_mut(id0).phase = CopyPhase::Finished;
        arena.get_mut(id0).ended_at = Some(10);
        arena.free(id0);
        assert_eq!(arena.live_slots(), 1);
        assert_eq!(arena.next_id(), id0);
        let id2 = arena.alloc(CopyInfo::running(arena.next_id(), task(), 12, 5));
        assert_eq!(id2, id0, "freed slot must be reused");
        assert_eq!(arena.get(id2).seq(), 2, "sequence is never reused");
        assert_eq!(arena.get(id2).launched_at, 12);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.peak_slots(), 2);
        assert_eq!(arena.total_allocated(), 3);
        assert_eq!(arena.live_slots(), 2);
        assert!(!arena.is_empty());
    }
}
