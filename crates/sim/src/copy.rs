//! Task copies: the unit of execution on a machine.
//!
//! Every launch (original attempt, clone, or speculative backup) creates one
//! [`CopyInfo`]. A copy occupies exactly one machine from the slot it is
//! launched until it finishes or is cancelled. Reduce copies launched before
//! their job's Map phase has completed sit in [`CopyPhase::WaitingForMapPhase`]
//! — they hold their machine (as in the offline algorithm of Section IV) but
//! make no progress until the precedence constraint is satisfied.

use crate::state::Slot;
use mapreduce_workload::TaskId;
use std::fmt;

/// Identifier of a single task copy, unique within one simulation run.
///
/// Ids are allocated densely in launch order by the run's [`CopyArena`], so a
/// `CopyId` doubles as the copy's arena index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CopyId(pub u64);

impl fmt::Display for CopyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Lifecycle phase of a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPhase {
    /// The copy occupies a machine but cannot progress because the job's Map
    /// phase has not finished yet (only possible for reduce copies).
    WaitingForMapPhase,
    /// The copy is processing; it will finish at its recorded finish slot
    /// unless its task completes first through a sibling copy.
    Running,
    /// The copy finished and its result was used for the task.
    Finished,
    /// The copy was cancelled because a sibling copy finished first (or a
    /// scheduler action killed it).
    Cancelled,
}

/// Full description of one copy.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyInfo {
    /// Identifier of the copy.
    pub id: CopyId,
    /// The task this copy belongs to.
    pub task: TaskId,
    /// Slot at which the copy was launched (machine occupied from here on).
    pub launched_at: Slot,
    /// Slot at which the copy started processing (equals `launched_at` except
    /// for reduce copies that had to wait for the Map phase).
    pub started_at: Option<Slot>,
    /// Number of slots of processing this copy needs once started.
    pub duration: Slot,
    /// Current lifecycle phase.
    pub phase: CopyPhase,
    /// Slot at which the copy left the machine (finished or cancelled).
    pub ended_at: Option<Slot>,
}

impl CopyInfo {
    /// Creates a copy that starts processing immediately.
    pub(crate) fn running(id: CopyId, task: TaskId, launched_at: Slot, duration: Slot) -> Self {
        CopyInfo {
            id,
            task,
            launched_at,
            started_at: Some(launched_at),
            duration,
            phase: CopyPhase::Running,
            ended_at: None,
        }
    }

    /// Creates a copy that waits for the Map phase of its job.
    pub(crate) fn waiting(id: CopyId, task: TaskId, launched_at: Slot, duration: Slot) -> Self {
        CopyInfo {
            id,
            task,
            launched_at,
            started_at: None,
            duration,
            phase: CopyPhase::WaitingForMapPhase,
            ended_at: None,
        }
    }

    /// Whether the copy currently occupies a machine.
    pub fn is_active(&self) -> bool {
        matches!(
            self.phase,
            CopyPhase::WaitingForMapPhase | CopyPhase::Running
        )
    }

    /// The slot at which this copy will finish, if it is running and nothing
    /// cancels it.
    pub fn finish_slot(&self) -> Option<Slot> {
        match (self.phase, self.started_at) {
            (CopyPhase::Running, Some(start)) => Some(start + self.duration),
            _ => None,
        }
    }

    /// Slots of processing completed by `now` (zero while waiting).
    pub fn elapsed(&self, now: Slot) -> Slot {
        match (self.phase, self.started_at) {
            (CopyPhase::Running, Some(start)) => now.saturating_sub(start).min(self.duration),
            (CopyPhase::Finished, Some(_)) => self.duration,
            _ => 0,
        }
    }

    /// Fraction of this copy's work completed by `now`, in `[0, 1]`.
    ///
    /// This mirrors the per-task progress score a real MapReduce system
    /// reports and is what detection-based baselines (Mantri, LATE) consume.
    pub fn progress(&self, now: Slot) -> f64 {
        if self.duration == 0 {
            return 1.0;
        }
        self.elapsed(now) as f64 / self.duration as f64
    }

    /// Estimated remaining processing slots at `now`, assuming the copy keeps
    /// its current rate (exact in this simulator).
    pub fn remaining(&self, now: Slot) -> Slot {
        match self.phase {
            CopyPhase::Finished => 0,
            CopyPhase::Cancelled => 0,
            CopyPhase::WaitingForMapPhase => self.duration,
            CopyPhase::Running => self.duration.saturating_sub(self.elapsed(now)),
        }
    }
}

/// A task's copy-id list with inline storage for the common cases.
///
/// Almost every task launches exactly one copy, and cloned tasks usually stay
/// at two; a heap `Vec` per task means one malloc/free per task for a single
/// 8-byte id. The list stores up to two ids inline and spills to a `Vec` only
/// from the third copy on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CopyList {
    /// Up to two ids stored inline (`len` of them are valid).
    Inline { buf: [CopyId; 2], len: u8 },
    /// Three or more ids.
    Spilled(Vec<CopyId>),
}

impl Default for CopyList {
    fn default() -> Self {
        CopyList::Inline {
            buf: [CopyId(0); 2],
            len: 0,
        }
    }
}

impl CopyList {
    /// The ids in launch order.
    pub(crate) fn as_slice(&self) -> &[CopyId] {
        match self {
            CopyList::Inline { buf, len } => &buf[..*len as usize],
            CopyList::Spilled(v) => v,
        }
    }

    /// Appends an id.
    pub(crate) fn push(&mut self, id: CopyId) {
        match self {
            CopyList::Inline { buf, len } if (*len as usize) < buf.len() => {
                buf[*len as usize] = id;
                *len += 1;
            }
            CopyList::Inline { buf, len } => {
                let mut v = Vec::with_capacity(4);
                v.extend_from_slice(&buf[..*len as usize]);
                v.push(id);
                *self = CopyList::Spilled(v);
            }
            CopyList::Spilled(v) => v.push(id),
        }
    }
}

/// Run-level storage of every [`CopyInfo`], indexed by [`CopyId`].
///
/// Copies used to live in per-task `Vec<CopyInfo>`s, which made resolving a
/// `CopyFinish` event a linear `find` over the task's copies. The arena makes
/// it a single slice index: ids are handed out densely in launch order, so
/// `arena[id]` is the copy. Tasks keep only small `CopyId` slices
/// ([`crate::state::TaskState::copies`]).
#[derive(Debug, Default, Clone)]
pub struct CopyArena {
    copies: Vec<CopyInfo>,
}

impl CopyArena {
    /// An empty arena.
    pub fn new() -> Self {
        CopyArena::default()
    }

    /// Number of copies ever allocated.
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// Whether no copy has been allocated.
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }

    /// The id the next allocation will receive.
    pub fn next_id(&self) -> CopyId {
        CopyId(self.copies.len() as u64)
    }

    /// Stores a copy and returns its dense id.
    ///
    /// # Panics
    /// Panics (debug builds) if the copy's recorded id is not the next dense
    /// id — the engine allocates ids through [`CopyArena::next_id`].
    pub fn alloc(&mut self, copy: CopyInfo) -> CopyId {
        debug_assert_eq!(copy.id, self.next_id(), "copy ids must be dense");
        let id = copy.id;
        self.copies.push(copy);
        id
    }

    /// The copy with the given id.
    ///
    /// # Panics
    /// Panics if the id was not allocated by this arena.
    pub fn get(&self, id: CopyId) -> &CopyInfo {
        &self.copies[id.0 as usize]
    }

    /// Mutable access to the copy with the given id.
    ///
    /// # Panics
    /// Panics if the id was not allocated by this arena.
    pub(crate) fn get_mut(&mut self, id: CopyId) -> &mut CopyInfo {
        &mut self.copies[id.0 as usize]
    }

    /// Every copy in id (launch) order.
    pub fn as_slice(&self) -> &[CopyInfo] {
        &self.copies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::{JobId, Phase};

    fn task() -> TaskId {
        TaskId::new(JobId::new(0), Phase::Map, 0)
    }

    #[test]
    fn running_copy_progress_and_finish() {
        let c = CopyInfo::running(CopyId(1), task(), 10, 20);
        assert!(c.is_active());
        assert_eq!(c.finish_slot(), Some(30));
        assert_eq!(c.elapsed(10), 0);
        assert_eq!(c.elapsed(15), 5);
        assert_eq!(c.elapsed(100), 20);
        assert!((c.progress(20) - 0.5).abs() < 1e-12);
        assert_eq!(c.remaining(15), 15);
    }

    #[test]
    fn waiting_copy_makes_no_progress() {
        let c = CopyInfo::waiting(CopyId(2), task(), 5, 8);
        assert!(c.is_active());
        assert_eq!(c.finish_slot(), None);
        assert_eq!(c.elapsed(50), 0);
        assert_eq!(c.progress(50), 0.0);
        assert_eq!(c.remaining(50), 8);
    }

    #[test]
    fn finished_copy_is_complete() {
        let mut c = CopyInfo::running(CopyId(3), task(), 0, 10);
        c.phase = CopyPhase::Finished;
        c.ended_at = Some(10);
        assert!(!c.is_active());
        assert_eq!(c.progress(10), 1.0);
        assert_eq!(c.remaining(10), 0);
    }

    #[test]
    fn cancelled_copy_is_inactive() {
        let mut c = CopyInfo::running(CopyId(4), task(), 0, 10);
        c.phase = CopyPhase::Cancelled;
        c.ended_at = Some(3);
        assert!(!c.is_active());
        assert_eq!(c.remaining(5), 0);
    }

    #[test]
    fn zero_duration_copy_has_full_progress() {
        let c = CopyInfo::running(CopyId(5), task(), 0, 0);
        assert_eq!(c.progress(0), 1.0);
    }

    #[test]
    fn display_of_copy_id() {
        assert_eq!(CopyId(7).to_string(), "c7");
    }

    #[test]
    fn arena_allocates_dense_ids() {
        let mut arena = CopyArena::new();
        assert!(arena.is_empty());
        let id0 = arena.alloc(CopyInfo::running(arena.next_id(), task(), 0, 10));
        let id1 = arena.alloc(CopyInfo::waiting(arena.next_id(), task(), 3, 5));
        assert_eq!((id0, id1), (CopyId(0), CopyId(1)));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(id1).launched_at, 3);
        assert_eq!(arena.as_slice().len(), 2);
        arena.get_mut(id0).phase = CopyPhase::Finished;
        assert_eq!(arena.get(id0).phase, CopyPhase::Finished);
    }
}
