//! Deterministic run telemetry: the [`SimObserver`] lifecycle-event seam.
//!
//! The engine reports every state transition of a run — job arrivals and
//! completions, copy launches/cancellations/finishes, fault-driven task
//! unlaunches, machine down/up epochs and per-decision-instant summaries —
//! through the [`SimObserver`] trait. The run loop is **monomorphized** over
//! the observer type: [`crate::Simulation::run`] instantiates it with
//! [`NoopObserver`], whose empty inline methods compile away entirely, so a
//! run without an observer executes the exact pre-telemetry engine (the
//! golden proptests in `tests/tests/telemetry_equivalence.rs` pin the
//! outcome bit-for-bit, and the `engine_fullscale` bench-guard entry gates
//! the timing). Attaching an observer never changes the trajectory either:
//! observers receive `&`-shaped facts after the engine has already applied
//! the transition, and nothing they do can feed back into the run.
//!
//! Events are *typed structs*, not format strings, so consumers fold them at
//! counter cost: `mapreduce-metrics` provides a shard-mergeable
//! counter/histogram registry observer (`SimTelemetry`) and a bounded
//! Chrome-trace-event exporter (`TraceRecorder`, viewable in Perfetto).
//! Observers compose through the tuple impl: `(&mut a, &mut b)` dispatches
//! every event to both.
//!
//! All quantities are deterministic simulation facts (slots, ids, counts)
//! with one deliberate exception: [`DecisionInstant::wall_ns`] carries the
//! host wall-clock cost of the decision when — and only when —
//! [`crate::SimConfig::with_profile_stages`] is enabled; it reads 0
//! otherwise, so observed runs stay reproducible by default.

use crate::copy::CopyId;
use crate::result::JobRecord;
use crate::state::Slot;
use mapreduce_workload::{JobId, TaskId};

/// Why a copy left its machine without finishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// A sibling copy of the same task finished first (first-copy-wins).
    SiblingFinished,
    /// The scheduler issued an [`crate::Action::CancelCopies`].
    Scheduler,
    /// The machine hosting the copy crashed (fault injection).
    Fault,
}

/// A copy started occupying a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyLaunched {
    /// Decision instant of the launch.
    pub at: Slot,
    /// Arena id of the copy.
    pub copy: CopyId,
    /// The task the copy executes.
    pub task: TaskId,
    /// `false` for the task's first attempt, `true` for clones/backups.
    pub clone: bool,
    /// Predicted finish slot; `None` for early-launched reduce copies still
    /// waiting on their job's Map phase.
    pub expected_finish: Option<Slot>,
}

/// A copy finished and won its task (first-copy-wins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyFinished {
    /// Completion slot.
    pub at: Slot,
    /// Arena id of the winning copy.
    pub copy: CopyId,
    /// The task that just completed.
    pub task: TaskId,
    /// Slot the winning copy was launched at (`at - launched_at` is the
    /// copy's lifetime).
    pub launched_at: Slot,
    /// Total copies ever launched for the task, the winner included — the
    /// per-task cloning factor.
    pub copies_of_task: usize,
}

/// A copy was cancelled before finishing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyCancelled {
    /// Cancellation slot.
    pub at: Slot,
    /// Arena id of the cancelled copy.
    pub copy: CopyId,
    /// The task the copy was executing.
    pub task: TaskId,
    /// Slot the copy was launched at (`at - launched_at` is the machine time
    /// reclaimed by the cancellation).
    pub launched_at: Slot,
    /// What triggered the cancellation.
    pub reason: CancelReason,
}

/// Summary of one decision instant, emitted after the scheduler's actions
/// were applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionInstant {
    /// The instant's slot.
    pub at: Slot,
    /// Number of [`crate::Action::Launch`] actions the scheduler returned.
    pub launch_actions: usize,
    /// Number of [`crate::Action::CancelCopies`] actions returned.
    pub cancel_actions: usize,
    /// Copies requested across all launch actions (before clipping to the
    /// available machines and the per-task cap).
    pub copies_requested: usize,
    /// Ranked-candidate prefix consumed by the decision
    /// ([`crate::ClusterState::ranked_prefix_consumed`]; 0 for schedulers
    /// that never read the ranked order).
    pub ranked_prefix: usize,
    /// Wall-clock cost of the decision (hooks + `schedule` + action
    /// application) in nanoseconds when
    /// [`crate::SimConfig::with_profile_stages`] is on; 0 otherwise.
    pub wall_ns: u64,
}

/// Receiver of the engine's lifecycle events.
///
/// Every method has an empty default body, so observers implement only the
/// events they fold. Implementations must be cheap and must not panic: they
/// run inline on the event loop of the simulation.
pub trait SimObserver {
    /// Whether this observer consumes events at all. The engine consults it
    /// before *assembling* summaries that cost work even when the handler
    /// bodies are empty (the per-decision action counts); [`NoopObserver`]
    /// overrides it to `false` so the disabled path does no counting either.
    const ENABLED: bool = true;

    /// A job was admitted and became alive.
    fn on_job_arrived(&mut self, _at: Slot, _job: JobId) {}

    /// A job completed; `record` is the completion record the outcome will
    /// carry (arrival, completion, copies launched, …).
    fn on_job_completed(&mut self, _record: &JobRecord) {}

    /// A copy started occupying a machine.
    fn on_copy_launched(&mut self, _event: CopyLaunched) {}

    /// A copy finished and completed its task.
    fn on_copy_finished(&mut self, _event: CopyFinished) {}

    /// A copy was cancelled (sibling win, scheduler decision, or fault).
    fn on_copy_cancelled(&mut self, _event: CopyCancelled) {}

    /// A fault killed a task's last copy; the task fell back to the
    /// unscheduled pool and will be re-executed.
    fn on_task_unlaunched(&mut self, _at: Slot, _task: TaskId) {}

    /// A machine's up epoch ended (`crash == true` takes it out of service,
    /// `false` starts a brown-out).
    fn on_machine_down(&mut self, _at: Slot, _machine: u32, _crash: bool) {}

    /// A machine's down/brown-out epoch ended.
    fn on_machine_up(&mut self, _at: Slot, _machine: u32, _crash: bool) {}

    /// A decision instant ran to completion (actions already applied). Not
    /// emitted for the run's final event batch: the batch that completes the
    /// last job never consults the scheduler, so observers see exactly the
    /// instants that produced decisions —
    /// [`crate::SimOutcome`]`::telemetry.decision_instants` counts the final
    /// batch too and therefore reads one higher on a completed run.
    fn on_decision_instant(&mut self, _event: DecisionInstant) {}
}

/// The disabled path: every method is an empty inline default, so a run
/// monomorphized over `NoopObserver` compiles to the observer-free engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    const ENABLED: bool = false;
}

/// Forwarding impl so an observer can be passed by `&mut` without moving it.
impl<O: SimObserver> SimObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn on_job_arrived(&mut self, at: Slot, job: JobId) {
        (**self).on_job_arrived(at, job);
    }
    fn on_job_completed(&mut self, record: &JobRecord) {
        (**self).on_job_completed(record);
    }
    fn on_copy_launched(&mut self, event: CopyLaunched) {
        (**self).on_copy_launched(event);
    }
    fn on_copy_finished(&mut self, event: CopyFinished) {
        (**self).on_copy_finished(event);
    }
    fn on_copy_cancelled(&mut self, event: CopyCancelled) {
        (**self).on_copy_cancelled(event);
    }
    fn on_task_unlaunched(&mut self, at: Slot, task: TaskId) {
        (**self).on_task_unlaunched(at, task);
    }
    fn on_machine_down(&mut self, at: Slot, machine: u32, crash: bool) {
        (**self).on_machine_down(at, machine, crash);
    }
    fn on_machine_up(&mut self, at: Slot, machine: u32, crash: bool) {
        (**self).on_machine_up(at, machine, crash);
    }
    fn on_decision_instant(&mut self, event: DecisionInstant) {
        (**self).on_decision_instant(event);
    }
}

/// Tee: every event goes to both observers, in order. Compose freely:
/// `((&mut registry, &mut trace), &mut custom)`.
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_job_arrived(&mut self, at: Slot, job: JobId) {
        self.0.on_job_arrived(at, job);
        self.1.on_job_arrived(at, job);
    }
    fn on_job_completed(&mut self, record: &JobRecord) {
        self.0.on_job_completed(record);
        self.1.on_job_completed(record);
    }
    fn on_copy_launched(&mut self, event: CopyLaunched) {
        self.0.on_copy_launched(event);
        self.1.on_copy_launched(event);
    }
    fn on_copy_finished(&mut self, event: CopyFinished) {
        self.0.on_copy_finished(event);
        self.1.on_copy_finished(event);
    }
    fn on_copy_cancelled(&mut self, event: CopyCancelled) {
        self.0.on_copy_cancelled(event);
        self.1.on_copy_cancelled(event);
    }
    fn on_task_unlaunched(&mut self, at: Slot, task: TaskId) {
        self.0.on_task_unlaunched(at, task);
        self.1.on_task_unlaunched(at, task);
    }
    fn on_machine_down(&mut self, at: Slot, machine: u32, crash: bool) {
        self.0.on_machine_down(at, machine, crash);
        self.1.on_machine_down(at, machine, crash);
    }
    fn on_machine_up(&mut self, at: Slot, machine: u32, crash: bool) {
        self.0.on_machine_up(at, machine, crash);
        self.1.on_machine_up(at, machine, crash);
    }
    fn on_decision_instant(&mut self, event: DecisionInstant) {
        self.0.on_decision_instant(event);
        self.1.on_decision_instant(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce_workload::Phase;

    /// Counts events per kind — the shape every folding observer takes.
    #[derive(Debug, Default, PartialEq, Eq, Clone)]
    struct CountingObserver {
        arrived: u64,
        completed: u64,
        launched: u64,
        finished: u64,
        cancelled: u64,
        unlaunched: u64,
        down: u64,
        up: u64,
        decisions: u64,
    }

    impl SimObserver for CountingObserver {
        fn on_job_arrived(&mut self, _at: Slot, _job: JobId) {
            self.arrived += 1;
        }
        fn on_job_completed(&mut self, _record: &JobRecord) {
            self.completed += 1;
        }
        fn on_copy_launched(&mut self, _event: CopyLaunched) {
            self.launched += 1;
        }
        fn on_copy_finished(&mut self, _event: CopyFinished) {
            self.finished += 1;
        }
        fn on_copy_cancelled(&mut self, _event: CopyCancelled) {
            self.cancelled += 1;
        }
        fn on_task_unlaunched(&mut self, _at: Slot, _task: TaskId) {
            self.unlaunched += 1;
        }
        fn on_machine_down(&mut self, _at: Slot, _machine: u32, _crash: bool) {
            self.down += 1;
        }
        fn on_machine_up(&mut self, _at: Slot, _machine: u32, _crash: bool) {
            self.up += 1;
        }
        fn on_decision_instant(&mut self, _event: DecisionInstant) {
            self.decisions += 1;
        }
    }

    fn fire_all(observer: &mut impl SimObserver) {
        let task = TaskId::new(JobId::new(0), Phase::Map, 0);
        observer.on_job_arrived(1, JobId::new(0));
        observer.on_copy_launched(CopyLaunched {
            at: 1,
            copy: CopyId(0),
            task,
            clone: false,
            expected_finish: Some(5),
        });
        observer.on_copy_finished(CopyFinished {
            at: 5,
            copy: CopyId(0),
            task,
            launched_at: 1,
            copies_of_task: 1,
        });
        observer.on_copy_cancelled(CopyCancelled {
            at: 5,
            copy: CopyId(1),
            task,
            launched_at: 2,
            reason: CancelReason::SiblingFinished,
        });
        observer.on_task_unlaunched(6, task);
        observer.on_machine_down(7, 3, true);
        observer.on_machine_up(9, 3, true);
        observer.on_decision_instant(DecisionInstant {
            at: 9,
            launch_actions: 1,
            cancel_actions: 0,
            copies_requested: 2,
            ranked_prefix: 4,
            wall_ns: 0,
        });
        observer.on_job_completed(&JobRecord {
            job: JobId::new(0),
            weight: 1.0,
            arrival: 1,
            completion: 5,
            num_map_tasks: 1,
            num_reduce_tasks: 0,
            copies_launched: 2,
            true_workload: 4.0,
        });
    }

    #[test]
    fn noop_observer_accepts_every_event() {
        // Compiles and runs — the point of NoopObserver is that all of this
        // is dead code in the monomorphized engine.
        fire_all(&mut NoopObserver);
    }

    #[test]
    fn tuple_tee_dispatches_to_both_sides() {
        let mut pair = (CountingObserver::default(), CountingObserver::default());
        fire_all(&mut pair);
        assert_eq!(pair.0, pair.1, "both sides see the identical stream");
        assert_eq!(pair.0.arrived, 1);
        assert_eq!(pair.0.completed, 1);
        assert_eq!(pair.0.launched, 1);
        assert_eq!(pair.0.finished, 1);
        assert_eq!(pair.0.cancelled, 1);
        assert_eq!(pair.0.unlaunched, 1);
        assert_eq!(pair.0.down, 1);
        assert_eq!(pair.0.up, 1);
        assert_eq!(pair.0.decisions, 1);
    }

    #[test]
    fn mut_ref_forwarding_reaches_the_underlying_observer() {
        let mut counter = CountingObserver::default();
        fire_all(&mut (&mut counter));
        assert_eq!(counter.decisions, 1);
        assert_eq!(counter.launched, 1);
    }
}
