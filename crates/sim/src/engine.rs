//! The discrete-event simulation engine.
//!
//! The engine advances slot-granular time, delivers job arrivals, executes
//! task copies, enforces the Map→Reduce precedence constraint, implements
//! first-copy-wins cloning semantics (sibling copies are cancelled the moment
//! one copy of a task finishes) and invokes the [`Scheduler`] whenever the
//! cluster state changes.
//!
//! Event compression: the scheduler is only woken when an arrival or a
//! completion happened, or on an explicit periodic wakeup (requested either
//! by the scheduler itself through [`Scheduler::wakeup_interval`] or globally
//! through [`SimConfig::periodic_wakeup`]). Between such instants nothing in
//! the model can change, so this is equivalent to the per-slot loop of the
//! paper while being fast enough for 12 000-machine traces.
//!
//! The arrival/finish/wakeup plumbing lives in [`crate::events`]; the engine
//! owns the job table, the machine budget and the incrementally maintained
//! [`AliveIndex`] from which each scheduler-facing [`ClusterState`] snapshot
//! is built in `O(1)`.

use crate::config::{SimConfig, StragglerModel};
use crate::copy::{CopyId, CopyInfo, CopyPhase};
use crate::error::SimError;
use crate::events::{next_decision, Event, EventQueue};
use crate::result::{JobRecord, SimOutcome};
use crate::state::{Action, AliveIndex, ClusterState, JobState, Scheduler, Slot};
use mapreduce_support::rng::{Rng, SimRng};
use mapreduce_workload::{Phase, TaskId, Trace};

/// A single simulation run: one trace, one configuration, one scheduler.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    jobs: Vec<JobState>,
}

/// Mutable per-run bookkeeping shared by the event handlers.
#[derive(Debug, Default)]
struct RunStats {
    available: usize,
    busy_machine_slots: u64,
    next_copy_id: u64,
    total_copies: usize,
    completed_jobs: usize,
    scheduler_invocations: u64,
    makespan: Slot,
    pending_arrivals: usize,
}

impl Simulation {
    /// Creates a simulation over the given trace.
    ///
    /// The trace is copied into internal per-job runtime state, so the caller
    /// keeps ownership of the original.
    pub fn new(config: SimConfig, trace: &Trace) -> Self {
        let jobs = trace.iter().cloned().map(JobState::new).collect();
        Simulation { config, jobs }
    }

    /// The configuration of this simulation.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to completion with the given scheduler.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoMachines`] if the configuration has zero machines
    ///   (normally prevented by [`SimConfig::new`]).
    /// * [`SimError::SchedulerStalled`] if jobs remain but the scheduler
    ///   refuses to launch anything and nothing is running or arriving.
    /// * [`SimError::HorizonExceeded`] if [`SimConfig::max_slots`] is reached.
    /// * [`SimError::UnknownTask`] if the scheduler references a task outside
    ///   the trace.
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> Result<SimOutcome, SimError> {
        if self.config.num_machines == 0 {
            return Err(SimError::NoMachines);
        }
        let total_machines = self.config.num_machines;
        let mut rng = SimRng::seed_from_u64(self.config.seed);

        // Seed the queue with every arrival; ties are broken by job index,
        // matching the trace's dense arrival order.
        let mut queue = EventQueue::new();
        for (idx, job) in self.jobs.iter().enumerate() {
            queue.push(Event::JobArrival {
                at: job.arrival(),
                job_index: idx,
            });
        }

        let mut alive = AliveIndex::new();
        if let Some(r) = scheduler.priority_r() {
            alive.enable_priority(r);
        }
        let mut stats = RunStats {
            available: total_machines,
            pending_arrivals: self.jobs.len(),
            ..RunStats::default()
        };
        let mut now: Slot = 0;
        // Reused across decision instants so the hot loop never allocates for
        // event delivery.
        let mut newly_arrived = Vec::new();
        let mut newly_finished = Vec::new();

        let wakeup_every = match (scheduler.wakeup_interval(), self.config.periodic_wakeup) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };

        while stats.completed_jobs < self.jobs.len() {
            // ---- determine the next decision instant ----
            let running_anything = stats.available < total_machines;
            let next_wakeup = match wakeup_every {
                Some(k) if !alive.is_empty() && running_anything => Some(now + k),
                _ => None,
            };
            let next = match next_decision(queue.peek_slot(), next_wakeup) {
                Some((slot, _)) => slot.max(now),
                None => {
                    // Nothing can ever happen again yet jobs remain: the
                    // scheduler has stalled.
                    return Err(SimError::SchedulerStalled {
                        slot: now,
                        alive_jobs: alive.len(),
                    });
                }
            };
            now = next;
            if let Some(max_slots) = self.config.max_slots {
                if now > max_slots {
                    return Err(SimError::HorizonExceeded {
                        max_slots,
                        unfinished_jobs: self.jobs.len() - stats.completed_jobs,
                    });
                }
            }

            // ---- deliver due events (arrivals sort before completions) ----
            newly_arrived.clear();
            newly_finished.clear();
            while let Some(event) = queue.pop_due(now) {
                match event {
                    Event::JobArrival { job_index, .. } => {
                        let job = &mut self.jobs[job_index];
                        job.mark_arrived();
                        alive.insert(job_index, job);
                        stats.pending_arrivals -= 1;
                        newly_arrived.push(job.id());
                    }
                    Event::CopyFinish { at, copy, task } => {
                        if let Some(finished) = self.handle_copy_finish(task, copy, at, &mut stats)
                        {
                            newly_finished.push(finished);
                            let job_idx = task.job.as_usize();
                            if task.phase == Phase::Map && self.jobs[job_idx].map_phase_complete() {
                                self.activate_waiting_reduce_copies(job_idx, at, &mut queue);
                            }
                            if self.jobs[job_idx].all_tasks_finished()
                                && !self.jobs[job_idx].is_complete()
                            {
                                self.jobs[job_idx].mark_complete(at);
                                stats.completed_jobs += 1;
                                stats.makespan = stats.makespan.max(at);
                                alive.remove(job_idx, &self.jobs[job_idx]);
                            }
                        }
                    }
                    Event::Wakeup { .. } => unreachable!("wakeups are never queued"),
                }
            }

            if stats.completed_jobs == self.jobs.len() {
                break;
            }

            // ---- invoke the scheduler ----
            stats.scheduler_invocations += 1;
            alive.flush_priority();
            let actions = {
                let state = ClusterState::from_index(
                    now,
                    total_machines,
                    stats.available,
                    &self.jobs,
                    &alive,
                );
                for job in &newly_arrived {
                    scheduler.on_job_arrival(*job, &state);
                }
                for task in &newly_finished {
                    scheduler.on_task_finished(*task, &state);
                }
                scheduler.schedule(&state)
            };

            self.apply_actions(&actions, now, &mut stats, &mut alive, &mut queue, &mut rng)?;

            // ---- stall detection ----
            // If nothing is running, nothing will arrive, and jobs remain,
            // the scheduler will never be given a different state again.
            if stats.available == total_machines && stats.pending_arrivals == 0 && !alive.is_empty()
            {
                return Err(SimError::SchedulerStalled {
                    slot: now,
                    alive_jobs: alive.len(),
                });
            }
        }

        // ---- collect records ----
        let makespan = stats.makespan;
        let records: Vec<JobRecord> = self
            .jobs
            .iter()
            .map(|j| JobRecord {
                job: j.id(),
                weight: j.weight(),
                arrival: j.arrival(),
                completion: j.completed_at().unwrap_or(makespan),
                num_map_tasks: j.spec().num_map_tasks(),
                num_reduce_tasks: j.spec().num_reduce_tasks(),
                copies_launched: j.copies_launched(),
                true_workload: j.spec().true_total_workload(),
            })
            .collect();

        Ok(SimOutcome::new(
            scheduler.name().to_string(),
            total_machines,
            records,
            makespan,
            stats.busy_machine_slots,
            stats.total_copies,
            stats.scheduler_invocations,
        ))
    }

    /// Processes the completion of one copy. Returns `Some(task_id)` if the
    /// event was live and the task finished, `None` for stale events.
    fn handle_copy_finish(
        &mut self,
        task_id: TaskId,
        copy_id: CopyId,
        slot: Slot,
        stats: &mut RunStats,
    ) -> Option<TaskId> {
        let job = self.jobs.get_mut(task_id.job.as_usize())?;
        let task = job.task_mut(task_id.phase, task_id.index)?;
        if task.is_finished() {
            return None;
        }
        // Locate the copy and confirm the event is live.
        {
            let copies = task.copies_mut();
            let copy = copies.iter_mut().find(|c| c.id == copy_id)?;
            if copy.phase != CopyPhase::Running || copy.finish_slot() != Some(slot) {
                return None;
            }
            copy.phase = CopyPhase::Finished;
            copy.ended_at = Some(slot);
        }
        // Cancel the sibling copies (first-copy-wins).
        let mut released = 0usize;
        let mut busy = 0u64;
        for copy in task.copies_mut().iter_mut() {
            match copy.phase {
                CopyPhase::Finished if copy.id == copy_id => {
                    released += 1;
                    busy += slot.saturating_sub(copy.launched_at);
                }
                CopyPhase::Running | CopyPhase::WaitingForMapPhase => {
                    copy.phase = CopyPhase::Cancelled;
                    copy.ended_at = Some(slot);
                    released += 1;
                    busy += slot.saturating_sub(copy.launched_at);
                }
                _ => {}
            }
        }
        let duration = slot.saturating_sub(task.first_launched_at().unwrap_or(slot));
        task.mark_finished(slot);
        job.note_task_finished(task_id.phase, task_id.index, duration);
        job.note_copy_released(released);
        stats.available += released;
        stats.busy_machine_slots += busy;
        Some(task_id)
    }

    /// Starts processing of reduce copies that were launched before the Map
    /// phase of their job had completed. Completions are queued in task-index
    /// order, which the event queue preserves for equal finish slots.
    fn activate_waiting_reduce_copies(
        &mut self,
        job_idx: usize,
        slot: Slot,
        queue: &mut EventQueue,
    ) {
        let job = &mut self.jobs[job_idx];
        for index in 0..job.spec().num_reduce_tasks() {
            let mut earliest_finish: Option<Slot> = None;
            if let Some(task) = job.task_mut(Phase::Reduce, index as u32) {
                let task_id = task.id();
                for copy in task.copies_mut().iter_mut() {
                    if copy.phase == CopyPhase::WaitingForMapPhase {
                        copy.phase = CopyPhase::Running;
                        copy.started_at = Some(slot);
                        let finish = slot + copy.duration;
                        queue.push(Event::CopyFinish {
                            at: finish,
                            copy: copy.id,
                            task: task_id,
                        });
                        earliest_finish =
                            Some(earliest_finish.map_or(finish, |f: Slot| f.min(finish)));
                    }
                }
            }
            if let Some(finish) = earliest_finish {
                job.note_copy_running(Phase::Reduce, index as u32, finish);
            }
        }
    }

    /// Applies the scheduler's actions, clipping launches to the available
    /// machines and the per-task copy cap.
    fn apply_actions(
        &mut self,
        actions: &[Action],
        now: Slot,
        stats: &mut RunStats,
        alive: &mut AliveIndex,
        queue: &mut EventQueue,
        rng: &mut SimRng,
    ) -> Result<(), SimError> {
        for action in actions {
            match *action {
                Action::Launch { task, copies } => {
                    self.launch_copies(task, copies, now, stats, alive, queue, rng)?;
                }
                Action::CancelCopies { task, keep } => {
                    self.cancel_copies(task, keep, now, stats)?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_copies(
        &mut self,
        task_id: TaskId,
        requested: usize,
        now: Slot,
        stats: &mut RunStats,
        alive: &mut AliveIndex,
        queue: &mut EventQueue,
        rng: &mut SimRng,
    ) -> Result<(), SimError> {
        let job_idx = task_id.job.as_usize();
        if job_idx >= self.jobs.len() {
            return Err(SimError::UnknownTask(task_id));
        }
        {
            let job = &self.jobs[job_idx];
            if job.task(task_id.phase, task_id.index).is_none() {
                return Err(SimError::UnknownTask(task_id));
            }
            // Ignore launches for jobs that have not arrived, finished jobs,
            // or finished tasks: the scheduler may be acting on a stale view.
            if !job.is_alive()
                || job
                    .task(task_id.phase, task_id.index)
                    .map(|t| t.is_finished())
                    .unwrap_or(true)
            {
                return Ok(());
            }
        }

        let max_per_task = self.config.max_copies_per_task;
        let speed = self.config.machine_speed;
        let resample = self.config.resample_clone_workloads;
        let straggler = self.config.straggler;

        let job = &mut self.jobs[job_idx];
        let map_phase_complete = job.map_phase_complete();
        let spec_workload = job
            .spec()
            .tasks(task_id.phase)
            .get(task_id.index as usize)
            .map(|t| t.workload)
            .ok_or(SimError::UnknownTask(task_id))?;
        let distribution = job.spec().distribution(task_id.phase).cloned();

        let active_now = job
            .task(task_id.phase, task_id.index)
            .map(|t| t.active_copies())
            .unwrap_or(0);
        let capacity_cap = max_per_task.saturating_sub(active_now);
        let n = requested.min(stats.available).min(capacity_cap);
        if n == 0 {
            return Ok(());
        }

        for _ in 0..n {
            let task_was_unscheduled = job
                .task(task_id.phase, task_id.index)
                .map(|t| t.is_unscheduled())
                .unwrap_or(false);

            // Workload of this copy: the original sample for the first copy,
            // an i.i.d. resample for clones (if enabled and a distribution is
            // attached to the job).
            let mut workload = if task_was_unscheduled {
                spec_workload
            } else if resample {
                match &distribution {
                    Some(dist) => dist.sample(rng),
                    None => spec_workload,
                }
            } else {
                spec_workload
            };
            if let StragglerModel::MachineSlowdown {
                probability,
                factor,
            } = straggler
            {
                if rng.gen_bool(probability.clamp(0.0, 1.0)) {
                    workload *= factor;
                }
            }
            let duration = ((workload / speed).ceil() as Slot).max(1);

            let copy_id = CopyId(stats.next_copy_id);
            stats.next_copy_id += 1;

            let (copy, running_finish) = if task_id.phase == Phase::Reduce && !map_phase_complete {
                (CopyInfo::waiting(copy_id, task_id, now, duration), None)
            } else {
                let finish = now + duration;
                let c = CopyInfo::running(copy_id, task_id, now, duration);
                queue.push(Event::CopyFinish {
                    at: finish,
                    copy: copy_id,
                    task: task_id,
                });
                (c, Some(finish))
            };

            if task_was_unscheduled {
                job.note_first_launch(task_id.phase, task_id.index);
                alive.note_first_launch(job_idx, job);
            }
            job.note_copy_launched();
            if let Some(task) = job.task_mut(task_id.phase, task_id.index) {
                task.add_copy(copy);
            }
            if let Some(finish) = running_finish {
                job.note_copy_running(task_id.phase, task_id.index, finish);
            }
            stats.available -= 1;
            stats.total_copies += 1;
        }
        Ok(())
    }

    fn cancel_copies(
        &mut self,
        task_id: TaskId,
        keep: usize,
        now: Slot,
        stats: &mut RunStats,
    ) -> Result<(), SimError> {
        let job_idx = task_id.job.as_usize();
        if job_idx >= self.jobs.len() {
            return Err(SimError::UnknownTask(task_id));
        }
        let job = &mut self.jobs[job_idx];
        let task = match job.task_mut(task_id.phase, task_id.index) {
            Some(t) => t,
            None => return Err(SimError::UnknownTask(task_id)),
        };
        if task.is_finished() {
            return Ok(());
        }
        // Order active copies by progress (descending) and cancel the excess.
        let mut active: Vec<(f64, CopyId)> = task
            .copies()
            .iter()
            .filter(|c| c.is_active())
            .map(|c| (c.progress(now), c.id))
            .collect();
        active.sort_by(|a, b| b.0.total_cmp(&a.0));
        let to_cancel: Vec<CopyId> = active.iter().skip(keep).map(|&(_, id)| id).collect();
        let mut released = 0usize;
        let mut busy = 0u64;
        for copy in task.copies_mut().iter_mut() {
            if to_cancel.contains(&copy.id) {
                copy.phase = CopyPhase::Cancelled;
                copy.ended_at = Some(now);
                released += 1;
                busy += now.saturating_sub(copy.launched_at);
            }
        }
        let new_finish = task.copies().iter().filter_map(|c| c.finish_slot()).min();
        job.refresh_running_finish(task_id.phase, task_id.index, new_finish);
        job.note_copy_released(released);
        stats.available += released;
        stats.busy_machine_slots += busy;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::{GreedyFifo, MaxCloneScheduler, NoopScheduler};
    use mapreduce_workload::{JobId, JobSpecBuilder, Trace, WorkloadBuilder};

    fn two_job_trace() -> Trace {
        let j0 = JobSpecBuilder::new(JobId::new(0))
            .arrival(0)
            .weight(1.0)
            .map_tasks_from_workloads(&[10.0, 10.0])
            .reduce_tasks_from_workloads(&[5.0])
            .build();
        let j1 = JobSpecBuilder::new(JobId::new(1))
            .arrival(3)
            .weight(2.0)
            .map_tasks_from_workloads(&[4.0])
            .build();
        Trace::new(vec![j0, j1]).unwrap()
    }

    #[test]
    fn fifo_completes_all_jobs() {
        let trace = two_job_trace();
        let outcome = Simulation::new(SimConfig::new(4), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(outcome.records().len(), 2);
        for r in outcome.records() {
            assert!(r.completion > r.arrival);
        }
        // Job 0: maps finish at 10 (both run in parallel), reduce runs 10..15.
        let r0 = outcome.record(JobId::new(0)).unwrap();
        assert_eq!(r0.completion, 15);
        assert_eq!(r0.flowtime(), 15);
        // Job 1: arrives at 3, single 4-slot map, machines are free.
        let r1 = outcome.record(JobId::new(1)).unwrap();
        assert_eq!(r1.completion, 7);
        assert_eq!(r1.flowtime(), 4);
    }

    #[test]
    fn reduce_respects_map_precedence_even_if_scheduled_early() {
        // One machine-rich cluster: a FIFO scheduler launches the reduce task
        // immediately, but it must not finish before map phase + its own
        // duration.
        let trace = two_job_trace();
        let outcome = Simulation::new(SimConfig::new(100), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let r0 = outcome.record(JobId::new(0)).unwrap();
        // Map phase ends at slot 10; reduce needs 5 more slots.
        assert_eq!(r0.completion, 15);
    }

    #[test]
    fn machines_are_a_hard_limit() {
        // 1 machine, two map tasks of 10 slots each plus a 5-slot reduce:
        // everything must serialise → completion at 25.
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[10.0, 10.0])
            .reduce_tasks_from_workloads(&[5.0])
            .build()])
        .unwrap();
        let outcome = Simulation::new(SimConfig::new(1), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(outcome.record(JobId::new(0)).unwrap().completion, 25);
        // Utilisation must be 100%: one machine busy the whole time.
        assert!((outcome.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noop_scheduler_stalls() {
        let trace = two_job_trace();
        let err = Simulation::new(SimConfig::new(4), &trace)
            .run(&mut NoopScheduler::default())
            .unwrap_err();
        assert!(matches!(err, SimError::SchedulerStalled { .. }));
    }

    #[test]
    fn horizon_is_enforced() {
        let trace = two_job_trace();
        let err = Simulation::new(SimConfig::new(1).with_max_slots(5), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap_err();
        assert!(matches!(err, SimError::HorizonExceeded { .. }));
    }

    #[test]
    fn cloning_speeds_up_completion_with_resampling() {
        // A single task with a very long sampled workload but a short-mean
        // distribution: clones resample and almost surely finish earlier.
        let dist = mapreduce_workload::DurationDistribution::Deterministic { value: 10.0 };
        let job = JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[1000.0])
            .map_distribution(dist)
            .build();
        let trace = Trace::new(vec![job]).unwrap();

        let no_clone = Simulation::new(SimConfig::new(4).with_seed(1), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(no_clone.record(JobId::new(0)).unwrap().completion, 1000);

        let cloned = Simulation::new(SimConfig::new(4).with_seed(1), &trace)
            .run(&mut MaxCloneScheduler::new(4))
            .unwrap();
        // The three clones resample a deterministic 10-slot workload, so the
        // task completes at slot 10.
        assert_eq!(cloned.record(JobId::new(0)).unwrap().completion, 10);
        assert!(cloned.total_copies > no_clone.total_copies);
    }

    #[test]
    fn clone_cap_is_respected() {
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[50.0])
            .build()])
        .unwrap();
        let outcome = Simulation::new(SimConfig::new(100).with_max_copies_per_task(3), &trace)
            .run(&mut MaxCloneScheduler::new(64))
            .unwrap();
        assert!(outcome.total_copies <= 3);
    }

    #[test]
    fn machine_speed_shortens_durations() {
        let trace = Trace::new(vec![JobSpecBuilder::new(JobId::new(0))
            .map_tasks_from_workloads(&[100.0])
            .build()])
        .unwrap();
        let unit = Simulation::new(SimConfig::new(1), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let fast = Simulation::new(SimConfig::new(1).with_machine_speed(2.0), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(unit.record(JobId::new(0)).unwrap().completion, 100);
        assert_eq!(fast.record(JobId::new(0)).unwrap().completion, 50);
    }

    #[test]
    fn straggler_injection_slows_things_down() {
        let trace = WorkloadBuilder::new()
            .num_jobs(20)
            .map_tasks_per_job(2, 4)
            .reduce_tasks_per_job(1, 1)
            .build(3);
        let base_cfg = SimConfig::new(8).with_seed(5);
        let slow_cfg =
            SimConfig::new(8)
                .with_seed(5)
                .with_straggler_model(StragglerModel::MachineSlowdown {
                    probability: 1.0,
                    factor: 3.0,
                });
        let base = Simulation::new(base_cfg, &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let slowed = Simulation::new(slow_cfg, &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert!(slowed.mean_flowtime() > base.mean_flowtime());
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let trace = WorkloadBuilder::new().num_jobs(15).build(2);
        let a = Simulation::new(SimConfig::new(6).with_seed(9), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let b = Simulation::new(SimConfig::new(6).with_seed(9), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn larger_cluster_is_not_slower() {
        let trace = WorkloadBuilder::new()
            .num_jobs(30)
            .map_tasks_per_job(4, 8)
            .build(4);
        let small = Simulation::new(SimConfig::new(4), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        let large = Simulation::new(SimConfig::new(64), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert!(large.mean_flowtime() <= small.mean_flowtime());
    }

    #[test]
    fn unknown_task_launch_is_an_error() {
        struct Bogus;
        impl Scheduler for Bogus {
            fn name(&self) -> &str {
                "bogus"
            }
            fn schedule(&mut self, _state: &ClusterState<'_>) -> Vec<Action> {
                vec![Action::Launch {
                    task: TaskId::new(JobId::new(999), Phase::Map, 0),
                    copies: 1,
                }]
            }
        }
        let trace = two_job_trace();
        let err = Simulation::new(SimConfig::new(2), &trace)
            .run(&mut Bogus)
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownTask(_)));
    }

    #[test]
    fn busy_slots_never_exceed_capacity() {
        let trace = WorkloadBuilder::new().num_jobs(25).build(6);
        let outcome = Simulation::new(SimConfig::new(5), &trace)
            .run(&mut GreedyFifo::new())
            .unwrap();
        assert!(outcome.busy_machine_slots <= 5 * outcome.makespan);
        assert!(outcome.utilization() <= 1.0 + 1e-9);
    }
}
